"""Chaos-campaign throughput: the full fault-injection sweep.

Times a complete robustness campaign -- every standard fault scenario
(rack outage, transient offline, latent sector errors, bandwidth
degradation) against C/C and D/D with invariants audited after every
event -- and emits the structured robustness report.
"""

from _harness import bench_workers, emit, once, scaled_trials

from repro.faults import ChaosCampaign

TRIALS = scaled_trials(3)
WORKERS = bench_workers()
# Module-level so the telemetry record can name the backend that ran it.
CAMPAIGN = ChaosCampaign(schemes=("C/C", "D/D"), trials=TRIALS, workers=WORKERS)


def run_campaign():
    return CAMPAIGN.run(seed=0)


def test_fault_injection_campaign(benchmark):
    report = once(
        benchmark, run_campaign,
        trials=4 * 2 * TRIALS,  # scenarios x schemes x seeds
        workers=WORKERS,
        runner=CAMPAIGN.runner,
    )
    emit("fault_injection_campaign", report.to_text())

    assert report.total_invariant_violations == 0
    assert report.total_events_checked > 1000
    # Correlated rack loss must hurt the fully clustered scheme the most.
    cc = report.cell("rack-outage", "C/C")
    dd = report.cell("rack-outage", "D/D")
    assert cc.pdl >= dd.pdl
    # Transient faults cost availability, never durability.
    assert report.cell("transient-offline", "C/C").pdl == 0.0
