"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
regenerated artifact is printed (visible with ``pytest -s``) *and* written
to ``benchmarks/results/<name>.txt`` so that a plain
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
reproduced tables on disk for EXPERIMENTS.md-style comparison.

Alongside the text artifact, every :func:`once` run emits a
machine-readable ``BENCH_<name>.json`` record -- wall-clock seconds, trial
throughput, worker count, per-phase wall times, the process's peak RSS,
the git SHA, and (when the benchmark collects one) the merged
:class:`repro.obs.MetricsRegistry` snapshot.  The record
is written twice: under ``benchmarks/results/`` (gitignored scratch, CI
uploads it as a workflow artifact) and at the repository root, which *is*
tracked -- that copy is how the perf trajectory accumulates across
commits.

Environment knobs for CI smoke runs:

* ``MLEC_BENCH_TRIALS`` -- overrides the trial count of benchmarks that
  opt in via :func:`scaled_trials` (smaller = faster smoke run).
* ``MLEC_BENCH_WORKERS`` -- worker-process count for benchmarks that fan
  trials out through :class:`repro.runtime.TrialRunner` (results are
  worker-count-independent, so this only changes the timing).
* ``MLEC_BENCH_BATCH`` -- batch-engine mode (``auto``/``on``/``off``)
  for benchmarks that fan out through a runner (results are
  batch-mode-independent; this only changes the timing).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path

try:
    import resource
except ImportError:  # pragma: no cover - non-Unix platforms
    resource = None  # type: ignore[assignment]

from repro.core.atomic import atomic_write_text
from repro.obs import MetricsRegistry
from repro.runtime import TrialRunner

RESULTS_DIR = Path(__file__).parent / "results"
#: Repository root: BENCH_*.json copies written here are git-tracked
#: (benchmarks/results/ is ignored), so the perf trajectory survives.
ROOT_DIR = Path(__file__).parent.parent


def emit(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
    print(f"\n{text}")


def scaled_trials(default: int) -> int:
    """Benchmark trial count, overridable via ``MLEC_BENCH_TRIALS``."""
    override = os.environ.get("MLEC_BENCH_TRIALS", "").strip()
    return max(1, int(override)) if override else default


def bench_workers() -> int:
    """Worker count for parallel benchmarks (``MLEC_BENCH_WORKERS``)."""
    override = os.environ.get("MLEC_BENCH_WORKERS", "").strip()
    return max(1, int(override)) if override else 1


def bench_batch() -> str:
    """Batch-engine mode for runner benchmarks (``MLEC_BENCH_BATCH``)."""
    override = os.environ.get("MLEC_BENCH_BATCH", "").strip()
    if override and override not in ("auto", "on", "off"):
        raise ValueError(
            f"MLEC_BENCH_BATCH must be auto/on/off, got {override!r}"
        )
    return override or "auto"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    A benchmark that got faster by doubling its working set is not an
    unqualified win; recording the high-water mark alongside the timing
    lets the perf trajectory catch memory-for-speed trades.
    """
    if resource is None:  # pragma: no cover - non-Unix platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # getrusage(2) divergence: Linux reports KiB, macOS reports bytes.
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


class PhaseTimer:
    """Named wall-clock phases of one benchmark run.

    ``once`` always records the ``run`` (measured callable) and
    ``report`` (runner-telemetry collection) phases; a
    benchmark with interesting internal structure can pass its own
    timer and wrap setup/compute/render sections in :meth:`phase` --
    repeated phase names accumulate.
    """

    def __init__(self) -> None:
        self._phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._phases[name] = self._phases.get(name, 0.0) + elapsed

    def snapshot(self) -> dict[str, float]:
        """Phase name -> accumulated seconds, insertion-ordered."""
        return dict(self._phases)


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


#: Recovery counters recorded next to ``workers`` in every BENCH record.
#: Always present (zeroed) so trajectory tooling can diff them without
#: per-record existence checks.
_RECOVERY_COUNTERS = ("chunk_retries", "pool_rebuilds", "steals")


def runner_telemetry(
    runner: TrialRunner,
) -> tuple[str, dict[str, int], dict[str, object]]:
    """``(backend, recovery, batch)`` facts of a benchmark's runner.

    ``backend`` is the executor backend's telemetry name (``"local"``,
    ``"tcp"``); ``recovery`` holds the resilience counters
    (:data:`_RECOVERY_COUNTERS`) from the runner's ops metrics; ``batch``
    records the batch-engine mode plus how many trials ran vectorized vs.
    demoted to the scalar loop (``sim.batch_*`` ops counters).
    """
    recovery = dict.fromkeys(_RECOVERY_COUNTERS, 0)
    batch: dict[str, object] = {
        "mode": getattr(runner, "batch", "off"),
        "batched": 0,
        "demoted": 0,
    }
    ops = getattr(runner, "ops_metrics", None)
    if ops is not None:
        counters = ops.snapshot()["counters"]
        for key in _RECOVERY_COUNTERS:
            value = counters.get(f"runtime.{key}", 0)
            recovery[key] = int(value) if isinstance(value, (int, float)) else 0
        for key, counter in (
            ("batched", "sim.batch_trials"),
            ("demoted", "sim.batch_demotions"),
        ):
            value = counters.get(counter, 0)
            batch[key] = int(value) if isinstance(value, (int, float)) else 0
    return runner.backend_name, recovery, batch


def emit_bench(
    name: str,
    *,
    seconds: float,
    trials: int | None = None,
    workers: int = 1,
    backend: str = "local",
    recovery: dict[str, int] | None = None,
    batch: dict[str, object] | None = None,
    phases: dict[str, float] | None = None,
    metrics: MetricsRegistry | None = None,
) -> None:
    """Persist one machine-readable benchmark telemetry record.

    The record lands both in ``benchmarks/results/`` and at the repo root
    (the tracked copy); ``metrics``, if given, is folded in as its
    deterministic snapshot.  ``backend``/``recovery`` record which
    executor backend ran the trials and what recovery work (retries,
    pool rebuilds, steals) it needed -- a benchmark that quietly
    recovered from worker crashes times very different code than a clean
    run, and the trajectory should say so.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "name": name,
        "wall_clock_seconds": seconds,
        "trials": trials,
        "trials_per_second": (
            trials / seconds if trials is not None and seconds > 0 else None
        ),
        "workers": workers,
        "backend": backend,
        "recovery": dict.fromkeys(_RECOVERY_COUNTERS, 0) | (recovery or {}),
        "batch": {"mode": "off", "batched": 0, "demoted": 0} | (batch or {}),
        "phases": {k: float(v) for k, v in (phases or {}).items()},
        "rss_peak_bytes": peak_rss_bytes(),
        "git_sha": _git_sha(),
        "unix_time": time.time(),
    }
    if metrics is not None and metrics:
        record["metrics"] = metrics.snapshot()
    payload = json.dumps(record, indent=2) + "\n"
    for directory in (RESULTS_DIR, ROOT_DIR):
        # Atomic so a benchmark killed mid-write never leaves a truncated
        # telemetry record for the CI perf trajectory to trip over.
        atomic_write_text(directory / f"BENCH_{name}.json", payload)


def once(
    benchmark,
    fn,
    *,
    trials: int | None = None,
    workers: int = 1,
    runner: TrialRunner | None = None,
    metrics: MetricsRegistry | None = None,
    phases: PhaseTimer | None = None,
):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the regenerated figure,
    not a statistically tight timing distribution; one round keeps the
    whole harness fast while still recording wall-clock cost.  The timing
    (plus ``trials``/``workers``/``metrics`` metadata when the caller
    supplies them) lands in ``BENCH_<name>.json`` for the CI perf
    trajectory.  Pass the ``runner`` the experiment fanned out through
    and its backend name and recovery counters are recorded too --
    captured *after* ``fn`` ran, so they reflect this run's facts.
    """
    timer = phases if phases is not None else PhaseTimer()
    start = time.perf_counter()
    with timer.phase("run"):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    name = getattr(benchmark, "name", None) or getattr(fn, "__name__", "bench")
    name = name.removeprefix("test_")
    with timer.phase("report"):
        backend, recovery, batch = (
            runner_telemetry(runner)
            if runner is not None
            else ("local", None, None)
        )
    emit_bench(
        name,
        seconds=elapsed,
        trials=trials,
        workers=workers,
        backend=backend,
        recovery=recovery,
        batch=batch,
        phases=timer.snapshot(),
        metrics=metrics,
    )
    return result
