"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
regenerated artifact is printed (visible with ``pytest -s``) *and* written
to ``benchmarks/results/<name>.txt`` so that a plain
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
reproduced tables on disk for EXPERIMENTS.md-style comparison.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the regenerated figure,
    not a statistically tight timing distribution; one round keeps the
    whole harness fast while still recording wall-clock cost.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
