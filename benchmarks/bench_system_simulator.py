"""Full-system simulator throughput: one simulated quarter at paper scale.

Times the event-driven simulation of the whole 57,600-disk deployment
(the paper's headline artifact) and validates its aggregate statistics.
"""

import numpy as np
from _harness import emit
from _harness import once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.core.config import YEAR
from repro.obs import MetricsRegistry
from repro.reporting import format_table
from repro.sim.simulator import MLECSystemSimulator

METRICS = MetricsRegistry()


def run_quarter():
    scheme = mlec_scheme_from_name("C/D", PAPER_MLEC)
    sim = MLECSystemSimulator(scheme, RepairMethod.R_MIN)
    return sim.run(mission_time=YEAR / 4, seed=99, metrics=METRICS)


def test_system_simulator_quarter(benchmark):
    result = once(benchmark, run_quarter, trials=1, metrics=METRICS)
    text = format_table(
        ["metric", "value"],
        [
            ["simulated days", result.mission_time / 86400],
            ["disk failures", result.n_disk_failures],
            ["catastrophic pools", result.n_catastrophic_events],
            ["data loss events", len(result.data_loss_events)],
            ["local repair PB", result.local_repair_bytes / 1e15],
            ["cross-rack repair TB", result.cross_rack_repair_bytes / 1e12],
        ],
        title="System simulator: one quarter, 57,600 disks, C/D + R_MIN",
    )
    emit("system_simulator_quarter", text)

    expected = 57_600 * -np.log1p(-0.01) / 4
    assert abs(result.n_disk_failures - expected) < 5 * np.sqrt(expected)
    assert result.n_catastrophic_events == 0  # nominal rates are quiet
    assert result.local_repair_bytes == result.n_disk_failures * 20e12
