"""Figure 8: cross-rack network traffic of the four repair methods.

Regenerates the 4 methods x 4 schemes traffic matrix for a catastrophic
local pool (p_l+1 simultaneous disk failures) and pins the paper's numbers:
4,400 / 26,400 / 880 / 3.1 TB and the >= 4x R_MIN reduction.
"""

import pytest
from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.repair import CatastrophicRepairModel
from repro.reporting import format_table

SCHEMES = ("C/C", "C/D", "D/C", "D/D")
TB = 1e12


def build_figure():
    traffic = {}
    rows = []
    for name in SCHEMES:
        model = CatastrophicRepairModel(mlec_scheme_from_name(name, PAPER_MLEC))
        per_method = {
            method: model.cross_rack_traffic_bytes(method) / TB
            for method in RepairMethod
        }
        traffic[name] = per_method
        rows.append([name] + [per_method[m] for m in RepairMethod])
    text = format_table(
        ["scheme"] + [str(m) for m in RepairMethod],
        rows,
        title="Figure 8: cross-rack repair traffic (TB) for a catastrophic pool",
    )
    return traffic, text


def test_fig08_repair_traffic(benchmark):
    traffic, text = once(benchmark, build_figure)
    emit("fig08_repair_traffic", text)

    # F#1: R_ALL is the worst -- 4,400 TB on */c, 26,400 TB on */d.
    assert traffic["C/C"][RepairMethod.R_ALL] == pytest.approx(4400)
    assert traffic["C/D"][RepairMethod.R_ALL] == pytest.approx(26_400)
    # F#2: R_FCO drops to the 880 TB of failed chunks everywhere.
    for name in SCHEMES:
        assert traffic[name][RepairMethod.R_FCO] == pytest.approx(880)
    # F#3: R_HYB reaches ~3.1 TB on declustered locals, no gain on */c.
    assert traffic["C/D"][RepairMethod.R_HYB] == pytest.approx(3.1, rel=0.02)
    assert traffic["C/C"][RepairMethod.R_HYB] == pytest.approx(880)
    # F#4: R_MIN cuts >= 4x below R_HYB for every scheme.
    for name in SCHEMES:
        ratio = traffic[name][RepairMethod.R_HYB] / traffic[name][RepairMethod.R_MIN]
        assert ratio >= 4.0 - 1e-9
