"""Figure 5: PDL of the four MLEC schemes under correlated failure bursts.

Regenerates the four heatmaps (y failed disks x racks affected) with the
Monte-Carlo burst engine, plus the exact DP values at the diagnostic cells,
and asserts the paper's Findings 1-7.
"""

import numpy as np
from _harness import bench_batch, bench_workers, emit, once, scaled_trials

from repro import PAPER_MLEC, mlec_scheme_from_name
from repro.analysis.burst_dp import mlec_burst_pdl
from repro.reporting import format_heatmap, format_table
from repro.runtime import TrialRunner
from repro.sim.burst import MLECBurstEvaluator, burst_pdl_grid

SCHEMES = ("C/C", "C/D", "D/C", "D/D")
FAILURES = np.array([12, 24, 36, 48, 60])
RACKS = np.array([1, 2, 3, 6, 12, 30, 60])
TRIALS = scaled_trials(25)
WORKERS = bench_workers()
# Monte-Carlo volume: every feasible (y >= x) heatmap cell of every scheme.
N_CELLS = int(sum((FAILURES >= x).sum() for x in RACKS))
# Module-level so the telemetry record can name the backend that ran it.
RUNNER = TrialRunner(workers=WORKERS, batch=bench_batch())


def build_figure():
    runner = RUNNER
    sections = []
    grids = {}
    for name in SCHEMES:
        ev = MLECBurstEvaluator(mlec_scheme_from_name(name, PAPER_MLEC))
        grid = burst_pdl_grid(ev, FAILURES, RACKS, trials=TRIALS, seed=5,
                              runner=runner)
        grids[name] = grid
        sections.append(format_heatmap(
            grid, FAILURES.tolist(), RACKS.tolist(),
            title=f"Figure 5{chr(ord('a') + SCHEMES.index(name))}: {name}",
        ))
    dp_rows = [
        [name,
         mlec_burst_pdl(mlec_scheme_from_name(name, PAPER_MLEC), 60, 3),
         mlec_burst_pdl(mlec_scheme_from_name(name, PAPER_MLEC), 60, 12),
         mlec_burst_pdl(mlec_scheme_from_name(name, PAPER_MLEC), 11, 3)]
        for name in SCHEMES
    ]
    sections.append(format_table(
        ["scheme", "DP PDL(60,3)", "DP PDL(60,12)", "DP PDL(11,3)"],
        dp_rows, title="Exact dynamic-programming spot checks:",
    ))
    return grids, dp_rows, "\n\n".join(sections)


def test_fig05_mlec_burst_pdl(benchmark):
    grids, dp_rows, text = once(
        benchmark, build_figure,
        trials=len(SCHEMES) * N_CELLS * TRIALS, workers=WORKERS,
        runner=RUNNER,
    )
    emit("fig05_mlec_burst_pdl", text)

    dp = {row[0]: row[1] for row in dp_rows}
    # Finding 4/7: worst at exactly p_n+1 racks, D/D the worst scheme.
    assert dp["D/D"] > dp["C/D"] > dp["D/C"] > dp["C/C"]
    # Finding 3: y <= x+8 is exactly safe.
    assert all(row[3] <= 1e-12 for row in dp_rows)
    # Finding 2: scattering helps (60 failures over 12 racks vs 3 racks).
    assert all(row[2] <= row[1] + 1e-12 for row in dp_rows)
    # MC grids: x <= p_n racks never lose data.
    for grid in grids.values():
        assert np.nansum(grid[:, :2]) == 0.0
