"""Figure 12: MLEC vs SLEC durability/throughput trade-off at ~30% parity.

Regenerates both panels -- (a) C/C vs clustered SLECs, (b) C/D vs
declustered SLECs -- as Pareto-front tables and pins §5.1.2 Findings 1-2.
"""

from _harness import emit, once

from repro.analysis.tradeoff import mlec_tradeoff, pareto_front, slec_tradeoff
from repro.core.types import Level, Placement
from repro.reporting import format_table


def build_figure():
    panels = {
        "12a C/C": mlec_tradeoff("C/C"),
        "12a Loc-Cp-S": slec_tradeoff(Level.LOCAL, Placement.CLUSTERED),
        "12a Net-Cp-S": slec_tradeoff(Level.NETWORK, Placement.CLUSTERED),
        "12b C/D": mlec_tradeoff("C/D"),
        "12b Loc-Dp-S": slec_tradeoff(Level.LOCAL, Placement.DECLUSTERED),
        "12b Net-Dp-S": slec_tradeoff(Level.NETWORK, Placement.DECLUSTERED),
    }
    sections = []
    for label, points in panels.items():
        rows = [
            [p.config, round(p.durability_nines, 1), round(p.throughput_gb_per_s, 2)]
            for p in pareto_front(points)
        ]
        sections.append(format_table(
            ["config", "nines/yr", "GB/s"], rows,
            title=f"Figure {label}: Pareto front ({len(points)} configs)",
        ))
    return panels, "\n\n".join(sections)


def test_fig12_mlec_vs_slec(benchmark):
    panels, text = once(benchmark, build_figure)
    emit("fig12_mlec_vs_slec", text)

    # F#1: within every family, max-durability config is not max-throughput.
    for points in panels.values():
        if len(points) < 3:
            continue
        most_durable = max(points, key=lambda p: p.durability_nines)
        fastest = max(points, key=lambda p: p.throughput_bytes_per_s)
        assert most_durable.config != fastest.config

    # F#2: at high durability MLEC keeps much higher throughput than SLEC.
    def best_throughput_above(points, nines):
        qualified = [p for p in points if p.durability_nines >= nines]
        return max((p.throughput_gb_per_s for p in qualified), default=0.0)

    assert best_throughput_above(panels["12a C/C"], 25) > 2.0
    assert best_throughput_above(panels["12a C/C"], 25) > 1.5 * best_throughput_above(
        panels["12a Loc-Cp-S"], 25
    )
    assert best_throughput_above(panels["12b C/D"], 30) > 2 * best_throughput_above(
        panels["12b Loc-Dp-S"], 30
    )
