"""Simulation leg of §5.1.4/§5.2.4: event-driven traffic vs closed forms.

Runs the SLEC/LRC full-system simulators for a simulated year and
reconciles their measured cross-rack repair traffic with the analytic
rates in :mod:`repro.repair.traffic_comparison` -- the "multiple
methodologies verify each other" discipline applied to the baselines.
"""

import pytest
from _harness import emit, once

from repro.core.config import LRCParams, SLECParams, YEAR
from repro.core.scheme import LRCScheme, SLECScheme
from repro.core.types import Level, Placement
from repro.repair.traffic_comparison import (
    lrc_annual_cross_rack_traffic,
    slec_annual_cross_rack_traffic,
)
from repro.reporting import format_table
from repro.sim.slec_sim import SLECSystemSimulator


def build_figure():
    cases = [
        ("Net-Dp-S (7+3)",
         SLECScheme(SLECParams(7, 3), Level.NETWORK, Placement.DECLUSTERED)),
        ("Net-Dp-S (14+6)",
         SLECScheme(SLECParams(14, 6), Level.NETWORK, Placement.DECLUSTERED)),
        ("LRC-Dp (14,2,4)", LRCScheme(LRCParams(14, 2, 4))),
        ("Loc-Cp-S (7+3)",
         SLECScheme(SLECParams(7, 3), Level.LOCAL, Placement.CLUSTERED)),
    ]
    rows = []
    pairs = {}
    for label, scheme in cases:
        result = SLECSystemSimulator(scheme).run(mission_time=YEAR, seed=14)
        if isinstance(scheme, LRCScheme):
            analytic = lrc_annual_cross_rack_traffic(scheme).tb_per_day
        else:
            analytic = slec_annual_cross_rack_traffic(scheme).tb_per_day
        simulated = result.cross_rack_tb_per_day
        pairs[label] = (simulated, analytic)
        rows.append([label, result.n_disk_failures, simulated, analytic])
    text = format_table(
        ["scheme", "failures/yr", "simulated TB/day", "analytic TB/day"],
        rows,
        title="Cross-rack repair traffic: event-driven simulation vs model",
    )
    return pairs, text


def test_simulated_traffic_crosscheck(benchmark):
    pairs, text = once(benchmark, build_figure)
    emit("simulated_traffic_crosscheck", text)

    for label, (simulated, analytic) in pairs.items():
        if analytic == 0.0:
            assert simulated == 0.0, label  # local SLEC: no cross-rack bytes
        else:
            assert simulated == pytest.approx(analytic, rel=0.15), label
    # The §5 ordering at the simulation level.
    assert pairs["LRC-Dp (14,2,4)"][0] < pairs["Net-Dp-S (14+6)"][0]
