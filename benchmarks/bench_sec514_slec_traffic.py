"""Section 5.1.4 (text-only in the paper): repair network traffic vs SLEC.

The paper reports no figure: "a (7+3) network SLEC requires hundreds of TB
repair network traffic every day ... MLEC only requires a few TB every
thousand of years".  This benchmark regenerates that comparison as a table.
"""

from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.analysis.markov import local_pool_catastrophic_rate
from repro.core.config import SLECParams
from repro.core.scheme import SLECScheme
from repro.core.types import Level, Placement
from repro.repair.traffic_comparison import (
    mlec_annual_cross_rack_traffic,
    slec_annual_cross_rack_traffic,
    years_per_terabyte,
)
from repro.reporting import format_table


def build_figure():
    rows = []
    values = {}
    for k, p in [(7, 3), (14, 6), (28, 12)]:
        scheme = SLECScheme(SLECParams(k, p), Level.NETWORK, Placement.DECLUSTERED)
        rate = slec_annual_cross_rack_traffic(scheme)
        values[f"Net-S ({k}+{p})"] = rate
        rows.append([f"Net-Dp-S ({k}+{p})", rate.tb_per_day, rate.tb_per_year])
    for name in ("C/C", "C/D"):
        scheme = mlec_scheme_from_name(name, PAPER_MLEC)
        pool_rate = local_pool_catastrophic_rate(scheme) * scheme.total_local_pools
        for method in (RepairMethod.R_ALL, RepairMethod.R_MIN):
            rate = mlec_annual_cross_rack_traffic(scheme, method, pool_rate)
            values[f"MLEC {name} {method}"] = rate
            rows.append([f"MLEC {name} {method}", rate.tb_per_day, rate.tb_per_year])
    text = format_table(
        ["scheme", "TB/day", "TB/year"],
        rows,
        title="Section 5.1.4: expected cross-rack repair traffic",
    )
    return values, text


def test_sec514_slec_traffic(benchmark):
    values, text = once(benchmark, build_figure)
    emit("sec514_slec_traffic", text)

    # "Hundreds of TB every day" for (7+3) network SLEC.
    assert 100 < values["Net-S (7+3)"].tb_per_day < 1000
    # "A few TB every thousand of years" for optimized MLEC.
    assert years_per_terabyte(values["MLEC C/D RMIN"]) > 1e3
    # Even R_ALL MLEC is orders of magnitude below network SLEC.
    assert (
        values["Net-S (7+3)"].bytes_per_year
        > 1e4 * values["MLEC C/D RALL"].bytes_per_year
    )
