"""Figure 9: network vs local repair time of the four repair methods.

Regenerates the stacked network(-N)/local(-L) bars for a catastrophic pool
under every method/scheme combination and pins Findings 1-3 of §4.2.2.
"""

import pytest
from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.repair import CatastrophicRepairModel
from repro.reporting import format_table

SCHEMES = ("C/C", "C/D", "D/C", "D/D")
HOUR = 3600.0


def build_figure():
    times = {}
    rows = []
    for name in SCHEMES:
        model = CatastrophicRepairModel(mlec_scheme_from_name(name, PAPER_MLEC))
        for method in RepairMethod:
            st = model.stage_times(method)
            times[(name, method)] = st
            rows.append([
                name, str(method),
                st.network_time / HOUR, st.local_time / HOUR, st.total / HOUR,
            ])
    text = format_table(
        ["scheme", "method", "network h (-N)", "local h (-L)", "total h"],
        rows,
        title="Figure 9: repair time split by stage",
    )
    return times, text


def test_fig09_repair_time_methods(benchmark):
    times, text = once(benchmark, build_figure)
    emit("fig09_repair_time_methods", text)

    for name in SCHEMES:
        rall = times[(name, RepairMethod.R_ALL)]
        rfco = times[(name, RepairMethod.R_FCO)]
        # F#1: R_ALL imposes the longest *network* stage (the contended
        # resource); R_FCO cuts it 5-30x.  (R_MIN's slow local stage can
        # exceed R_ALL's total on D/C -- the paper's own F#3 caveat.)
        assert rall.network_time == max(
            times[(name, m)].network_time for m in RepairMethod
        )
        assert 4.5 <= rall.network_time / rfco.network_time <= 35

    # F#2: R_HYB trades network time for local time on */d; totals similar
    # to R_FCO on C/D.
    rhyb_cd = times[("C/D", RepairMethod.R_HYB)]
    rfco_cd = times[("C/D", RepairMethod.R_FCO)]
    assert rhyb_cd.network_time < 0.05 * rfco_cd.network_time
    assert rhyb_cd.local_time > 0
    assert rhyb_cd.total == pytest.approx(rfco_cd.total, rel=0.15)

    # F#3: R_MIN has the minimum network time everywhere, but can take
    # longer in total than R_FCO (local stage).
    for name in SCHEMES:
        net = {m: times[(name, m)].network_time for m in RepairMethod}
        assert net[RepairMethod.R_MIN] == min(net.values())
    assert (
        times[("C/C", RepairMethod.R_MIN)].total
        > times[("C/C", RepairMethod.R_FCO)].total
    )
