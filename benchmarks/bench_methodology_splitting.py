"""Methodology cross-check: splitting vs Markov ("our multiple
methodologies verify each other", paper §6.2).

Runs the two-stage splitting pipeline (accelerated pool simulation ->
power-law extrapolation -> boosted network-level injection) for C/C and
compares the resulting durability against the analytic Markov result.
"""

from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.analysis.durability import mlec_durability_nines
from repro.analysis.markov import local_pool_reliability_chain
from repro.analysis.splitting import stage1_pool_rate, stage2_network_pdl
from repro.reporting import format_table


def build_figure():
    scheme = mlec_scheme_from_name("C/C", PAPER_MLEC)
    chain = local_pool_reliability_chain(scheme)

    stage1 = stage1_pool_rate(scheme, pool_years_each=1200, seed=21)
    rows1 = [[p.afr, p.pool_years, p.events, p.rate] for p in stage1.points]
    text = format_table(
        ["accelerated AFR", "pool-years", "events", "rate/pool-yr"],
        rows1,
        title="Splitting stage 1: accelerated local-pool simulation (C/C)",
    )
    text += (
        f"\nfitted exponent: {stage1.exponent:.2f} (theory: p_l+1 = 4)"
        f"\nextrapolated rate @1% AFR: {stage1.rate_at_target:.3e}/pool-yr"
        f"\nMarkov rate              : {chain.catastrophic_rate_per_year():.3e}/pool-yr"
    )

    rows2 = []
    comparisons = {}
    for method in (RepairMethod.R_ALL, RepairMethod.R_MIN):
        stage2 = stage2_network_pdl(
            scheme, method,
            pool_rate_per_year=chain.catastrophic_rate_per_year(),
            lost_fraction=chain.lost_stripe_fraction(),
            seed=22,
        )
        markov = mlec_durability_nines(scheme, method)
        comparisons[method] = (stage2.nines, markov)
        rows2.append([str(method), stage2.expected_losses_boosted,
                      stage2.nines, markov])
    text += "\n\n" + format_table(
        ["method", "boosted losses", "splitting nines", "Markov nines"],
        rows2,
        title="Splitting stage 2 vs Markov durability (C/C):",
    )
    return stage1, comparisons, text


def test_methodology_splitting(benchmark):
    stage1, comparisons, text = once(benchmark, build_figure)
    emit("methodology_splitting", text)

    # The simulated power law matches the chain structure (p_l + 1).
    assert 3.0 < stage1.exponent < 5.5
    # Stage 2 verifies the Markov durability within ~1.5 nines.
    for splitting_nines, markov_nines in comparisons.values():
        assert abs(splitting_nines - markov_nines) < 1.5
