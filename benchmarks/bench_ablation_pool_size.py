"""Ablation: local-Dp pool size (paper §4.1.2 Finding 4's speculation).

The paper notes that with "a smaller local-Dp pool size ... D/D could be
faster than C/C in repairing a catastrophic local pool".  This ablation
sweeps the enclosure (= local-Dp pool) size and regenerates the repair-time
and catastrophic-probability consequences.
"""

import pytest
from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod
from repro.analysis.markov import system_catastrophic_probability
from repro.core.config import DatacenterConfig
from repro.core.scheme import mlec_scheme_from_name
from repro.repair import CatastrophicRepairModel
from repro.reporting import format_table

POOL_SIZES = (40, 60, 120, 240)
HOUR = 3600.0


def build_figure():
    rows = []
    results = {}
    for disks in POOL_SIZES:
        dc = DatacenterConfig(
            disks_per_enclosure=disks,
            enclosures_per_rack=960 // disks,  # keep 960 disks per rack
        )
        scheme = mlec_scheme_from_name("D/D", PAPER_MLEC, dc)
        cat = CatastrophicRepairModel(scheme)
        repair_h = cat.total_repair_time(RepairMethod.R_ALL) / HOUR
        prob = system_catastrophic_probability(scheme)
        results[disks] = (repair_h, prob)
        rows.append([disks, scheme.local_pool_capacity_bytes / 1e12,
                     repair_h, prob])
    # Reference: C/C catastrophic repair time at the paper's geometry.
    cc = CatastrophicRepairModel(mlec_scheme_from_name("C/C", PAPER_MLEC))
    cc_h = cc.total_repair_time(RepairMethod.R_ALL) / HOUR
    text = format_table(
        ["Dp pool disks", "pool TB", "R_ALL repair h", "P[cat]/yr"],
        rows,
        title=(
            "Ablation: D/D local pool size "
            f"(C/C reference repair: {cc_h:.0f} h)"
        ),
    )
    return results, cc_h, text


def test_ablation_pool_size(benchmark):
    results, cc_hours, text = once(benchmark, build_figure)
    emit("ablation_pool_size", text)

    repair_hours = [results[d][0] for d in POOL_SIZES]
    # Repair time scales with the pool size (more data to reconstruct).
    assert repair_hours == sorted(repair_hours)
    assert repair_hours[-1] / repair_hours[0] == pytest.approx(
        POOL_SIZES[-1] / POOL_SIZES[0], rel=0.01
    )
    # The paper's speculation: small-enough Dp pools beat C/C's 444 h.
    assert repair_hours[0] < cc_hours
    assert results[240][0] > cc_hours
    # Durability trade-off: smaller pools mean more pools and slower
    # declustered repair, so the catastrophic probability rises.
    probs = [results[d][1] for d in POOL_SIZES]
    assert probs == sorted(probs, reverse=True)
