"""Figure 10: one-year durability (nines) per scheme and repair method.

Regenerates the 4x4 durability matrix with the iterated Markov model and
pins the paper's §4.2.3 Findings 1-4 (including the per-method gain bands).
"""

from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.analysis.durability import mlec_durability_nines
from repro.reporting import format_table

SCHEMES = ("C/C", "C/D", "D/C", "D/D")
METHODS = (RepairMethod.R_ALL, RepairMethod.R_FCO,
           RepairMethod.R_HYB, RepairMethod.R_MIN)


def build_figure():
    nines = {}
    rows = []
    for name in SCHEMES:
        scheme = mlec_scheme_from_name(name, PAPER_MLEC)
        values = [mlec_durability_nines(scheme, m) for m in METHODS]
        nines[name] = dict(zip(METHODS, values))
        rows.append([name] + [round(v, 1) for v in values])
    text = format_table(
        ["scheme"] + [str(m) for m in METHODS],
        rows,
        title="Figure 10: durability in nines, by scheme and repair method",
    )
    return nines, text


def test_fig10_durability(benchmark):
    nines, text = once(benchmark, build_figure)
    emit("fig10_durability", text)

    for name in SCHEMES:
        vals = [nines[name][m] for m in METHODS]
        assert vals == sorted(vals), name  # each method improves on the last

    # F#1: R_FCO gains 0.9-6.6 nines (model slack: 0.5-9), most on D/D.
    gains = {
        name: nines[name][RepairMethod.R_FCO] - nines[name][RepairMethod.R_ALL]
        for name in SCHEMES
    }
    assert all(0.5 < g < 9.0 for g in gains.values())
    assert max(gains, key=gains.get) == "D/D"
    # F#3: R_MIN's extra gain is small on */d (detection-bound).
    assert nines["C/D"][RepairMethod.R_MIN] - nines["C/D"][RepairMethod.R_HYB] < 0.5
    # F#4: optimized C/D and D/D lead; D/C trails.
    best = {name: nines[name][RepairMethod.R_MIN] for name in SCHEMES}
    order = sorted(best, key=best.get)
    assert order[0] == "D/C"
    assert set(order[-2:]) == {"C/D", "D/D"}
