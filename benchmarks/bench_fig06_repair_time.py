"""Figure 6 + Table 2: repair time and available repair bandwidth (R_ALL).

Regenerates both panels -- (a) single-disk repair, (b) catastrophic local
pool repair -- together with Table 2's pool sizes and bandwidths, and pins
the paper's §4.1.2 Findings 1-4.
"""

import pytest
from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.core.config import FailureConfig
from repro.repair import BandwidthModel, CatastrophicRepairModel
from repro.reporting import format_table

SCHEMES = ("C/C", "C/D", "D/C", "D/D")
HOUR = 3600.0


def build_figure():
    detection = FailureConfig().detection_time
    rows = []
    data = {}
    for name in SCHEMES:
        scheme = mlec_scheme_from_name(name, PAPER_MLEC)
        bw = BandwidthModel(scheme)
        single_bw = bw.single_disk_repair_rate().rate
        single_t = bw.single_disk_repair_time(detection) / HOUR
        cat = CatastrophicRepairModel(scheme)
        cat_bw = bw.network_repair_rate().rate
        cat_t = cat.total_repair_time(RepairMethod.R_ALL, detection) / HOUR
        rows.append([
            name,
            scheme.dc.disk_capacity_bytes / 1e12,
            single_bw / 1e6,
            single_t,
            scheme.local_pool_capacity_bytes / 1e12,
            cat_bw / 1e6,
            cat_t,
        ])
        data[name] = dict(single_bw=single_bw, single_t=single_t,
                          cat_bw=cat_bw, cat_t=cat_t)
    text = format_table(
        ["scheme", "disk TB", "avail BW MB/s", "disk repair h",
         "pool TB", "avail BW MB/s", "pool repair h"],
        rows,
        title="Figure 6 / Table 2: repair size, bandwidth and time (R_ALL)",
    )
    return data, text


def test_fig06_repair_time(benchmark):
    data, text = once(benchmark, build_figure)
    emit("fig06_table2_repair_time", text)

    # Table 2 bandwidth anchors.
    assert data["C/C"]["single_bw"] == pytest.approx(40e6)
    assert data["C/D"]["single_bw"] == pytest.approx(264e6, rel=0.01)
    assert data["C/C"]["cat_bw"] == pytest.approx(250e6)
    assert data["D/C"]["cat_bw"] == pytest.approx(1363e6, rel=0.01)
    # F#1: local declustering makes single-disk repair ~6x faster.
    assert data["C/C"]["single_t"] / data["C/D"]["single_t"] == pytest.approx(6.3, rel=0.1)
    # F#2: C/D is the slowest catastrophic repair; F#3: D/C the fastest.
    cat_times = {k: v["cat_t"] for k, v in data.items()}
    assert max(cat_times, key=cat_times.get) == "C/D"
    assert min(cat_times, key=cat_times.get) == "D/C"
    # F#4: D/D ~5x faster than C/D, ~6x slower than D/C, a bit over C/C.
    assert cat_times["C/D"] / cat_times["D/D"] == pytest.approx(5.45, rel=0.1)
    assert cat_times["D/D"] / cat_times["D/C"] == pytest.approx(6.0, rel=0.1)
    assert cat_times["D/D"] > cat_times["C/C"]
