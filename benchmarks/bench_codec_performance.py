"""Codec micro-benchmarks: the library's own encode/decode performance.

These are true pytest-benchmark timings (multiple rounds) of the GF(2^8)
codecs on paper-sized stripes -- the NumPy stand-ins for the paper's ISA-L
encoder measurements.
"""

import numpy as np
import pytest

from repro.codes import AzureLRC, MLECCodec, ReedSolomon

CHUNK = 1 << 16  # 64 KiB chunks keep a round under a few ms


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_rs_encode_17_3(benchmark, rng):
    rs = ReedSolomon(17, 3)
    data = rng.integers(0, 256, size=(17, CHUNK), dtype=np.uint8)
    benchmark(rs.parity, data)


def test_rs_decode_17_3_three_erasures(benchmark, rng):
    rs = ReedSolomon(17, 3)
    stripe = rs.encode(rng.integers(0, 256, size=(17, CHUNK), dtype=np.uint8))
    benchmark(rs.decode, stripe, [0, 8, 19])


def test_lrc_encode_14_2_4(benchmark, rng):
    lrc = AzureLRC(14, 2, 4)
    data = rng.integers(0, 256, size=(14, CHUNK), dtype=np.uint8)
    benchmark(lrc.encode, data)


def test_lrc_local_repair(benchmark, rng):
    lrc = AzureLRC(14, 2, 4)
    stripe = lrc.encode(rng.integers(0, 256, size=(14, CHUNK), dtype=np.uint8))
    benchmark(lrc.decode, stripe, [3])


def test_mlec_encode_paper_code(benchmark, rng):
    codec = MLECCodec(10, 2, 17, 3)
    data = rng.integers(
        0, 256, size=(codec.data_chunks, 1 << 12), dtype=np.uint8
    )
    benchmark(codec.encode, data)


def test_mlec_iterative_decode(benchmark, rng):
    codec = MLECCodec(10, 2, 17, 3)
    data = rng.integers(
        0, 256, size=(codec.data_chunks, 1 << 12), dtype=np.uint8
    )
    grid = codec.encode(data)
    erasures = [(3, 0), (3, 5), (3, 11), (3, 19), (7, 2)]
    corrupted = grid.copy()
    for cell in erasures:
        corrupted[cell] = 0
    benchmark(codec.decode, corrupted, erasures)
