"""Figure 11: single-core encoding throughput across (k+p) configurations.

Regenerates the heatmap with the calibrated analytic model (the ISA-L
substitute) and takes live measurements of this library's NumPy RS encoder
at a few corners to verify the functional shape on real hardware.
"""

import numpy as np
from _harness import emit, once

from repro.codes.throughput import IsalThroughputModel, measure_encoding_throughput
from repro.core.config import GB, SLECParams
from repro.reporting import format_table


def build_figure():
    model = IsalThroughputModel()
    k_values = np.arange(2, 51, 4)
    p_values = np.arange(1, 11)
    grid = model.heatmap(k_values, p_values)

    rows = [
        [int(p)] + [round(grid[i, j] / GB, 2) for j in range(len(k_values))]
        for i, p in enumerate(p_values)
    ]
    text = format_table(
        ["p \\ k"] + [str(int(k)) for k in k_values],
        rows,
        title="Figure 11: modelled encoding throughput (GB/s), ISA-L-calibrated",
    )

    # Live corners with the library's own encoder.
    corners = [(4, 1), (4, 8), (48, 1), (48, 8)]
    measured = {
        (k, p): measure_encoding_throughput(k, p, chunk_bytes=1 << 19, repeats=2)
        for (k, p) in corners
    }
    meas_rows = [
        [f"({k}+{p})", measured[(k, p)] / 1e6,
         IsalThroughputModel().slec_throughput(SLECParams(k, p)) / GB]
        for (k, p) in corners
    ]
    text += "\n\n" + format_table(
        ["config", "measured NumPy MB/s", "modelled ISA-L GB/s"],
        meas_rows,
        title="Live measurement corners (shape check; absolute scale differs):",
    )
    return grid, measured, text


def test_fig11_encoding_throughput(benchmark):
    grid, measured, text = once(benchmark, build_figure)
    emit("fig11_encoding_throughput", text)

    # Shape: throughput decreases along both axes.
    assert np.all(np.diff(grid, axis=0) <= 1e-9)  # more parities
    assert np.all(np.diff(grid, axis=1) <= 1e-9)  # wider stripes
    # Scale matches the paper's colorbar: ~12 GB/s down to < 1 GB/s.
    assert grid.max() <= 12 * GB + 1
    assert grid.min() < 1 * GB
    # The live encoder shows the same p-direction shape.
    assert measured[(4, 1)] > measured[(4, 8)]
    assert measured[(48, 1)] > measured[(48, 8)]
