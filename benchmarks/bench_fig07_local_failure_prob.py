"""Figure 7: probability of a catastrophic local pool failure per year.

Regenerates the per-scheme system-wide probability via the Markov model
(the fast leg) and cross-checks the clustered-pool value against the
accelerated local-pool simulator (the simulation leg of the methodology).
"""

import numpy as np
import pytest
from _harness import emit, once

from repro import PAPER_MLEC, mlec_scheme_from_name
from repro.analysis.markov import (
    PoolReliabilityChain,
    local_pool_reliability_chain,
    system_catastrophic_probability,
)
from repro.core.config import YEAR
from repro.reporting import format_table
from repro.sim.failures import ExponentialFailures
from repro.sim.local_pool import LocalPoolSimulator

SCHEMES = ("C/C", "C/D", "D/C", "D/D")


def build_figure():
    rows = []
    probs = {}
    for name in SCHEMES:
        scheme = mlec_scheme_from_name(name, PAPER_MLEC)
        chain = local_pool_reliability_chain(scheme)
        p_sys = system_catastrophic_probability(scheme)
        probs[name] = p_sys
        rows.append([
            name,
            scheme.total_local_pools,
            chain.catastrophic_rate_per_year(),
            p_sys,
        ])
    text = format_table(
        ["scheme", "pools", "rate/pool-year", "P[catastrophic]/year"],
        rows,
        title="Figure 7: probability of catastrophic local failure",
    )

    # Simulation cross-check at accelerated AFR (clustered pool).
    afr = 0.4
    sim = LocalPoolSimulator(
        pool_disks=20, stripe_width=20, parities=3, clustered=True,
        disk_capacity_bytes=20e12, chunk_size_bytes=128 * 1024,
        repair_rate=40e6, detection_time=1800,
        failure_model=ExponentialFailures(afr),
    )
    events = sum(sim.run(mission_time=YEAR, seed=s).n_catastrophic
                 for s in range(400))
    chain = PoolReliabilityChain(
        pool_disks=20, stripe_width=20, parities=3, clustered=True,
        disk_capacity_bytes=20e12, chunk_size_bytes=128 * 1024,
        failure_rate=-np.log1p(-afr) / YEAR, detection_time=1800,
        repair_rate=40e6,
    )
    check = (
        f"cross-check at AFR {afr:.0%} (clustered pool): simulator "
        f"{events / 400:.3g}/pool-yr vs Markov "
        f"{chain.catastrophic_rate_per_year():.3g}/pool-yr"
    )
    return probs, events / 400, chain.catastrophic_rate_per_year(), text + "\n" + check


def test_fig07_local_failure_prob(benchmark):
    probs, sim_rate, markov_rate, text = once(benchmark, build_figure)
    emit("fig07_local_failure_prob", text)

    # Paper: */c 'lower than 0.001%' = 1e-5; */d 'almost 0.00001%' = 1e-7.
    assert 1e-6 < probs["C/C"] < 1e-4
    assert 1e-6 < probs["D/C"] < 1e-4
    assert 1e-8 < probs["C/D"] < 1e-6
    assert 1e-8 < probs["D/D"] < 1e-6
    # Placement at the network level is irrelevant to local pool failures.
    assert probs["C/C"] == pytest.approx(probs["D/C"])
    assert probs["C/D"] == pytest.approx(probs["D/D"])
    # The simulation leg agrees with the Markov leg within its documented
    # deterministic-vs-exponential-service factor.
    assert 0.05 < sim_rate / markov_rate < 2.0
