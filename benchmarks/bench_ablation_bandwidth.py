"""Ablation: repair-bandwidth cap sensitivity.

The paper caps repair traffic at 20% of raw bandwidth to protect
foreground I/O (§3).  This ablation sweeps the cap and quantifies the
trade the policy encodes: more repair bandwidth, faster catastrophic-state
exits, more nines -- with diminishing returns once detection time
dominates (mirroring §4.2.3 Finding 3's bottleneck argument).
"""

import pytest
from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.analysis.durability import mlec_durability_nines
from repro.core.config import BandwidthConfig
from repro.repair import BandwidthModel, CatastrophicRepairModel
from repro.reporting import format_table

FRACTIONS = (0.05, 0.1, 0.2, 0.5, 1.0)
HOUR = 3600.0


def build_figure():
    rows = []
    results = {}
    for frac in FRACTIONS:
        bw = BandwidthConfig(repair_fraction=frac)
        per_scheme = {}
        for name in ("C/C", "C/D"):
            scheme = mlec_scheme_from_name(name, PAPER_MLEC)
            single_h = BandwidthModel(scheme, bw).single_disk_repair_time() / HOUR
            cat_h = CatastrophicRepairModel(scheme, bw).total_repair_time(
                RepairMethod.R_ALL
            ) / HOUR
            nines = mlec_durability_nines(scheme, RepairMethod.R_MIN, bw=bw)
            per_scheme[name] = (single_h, cat_h, nines)
        results[frac] = per_scheme
        rows.append([
            f"{frac:.0%}",
            per_scheme["C/C"][0], per_scheme["C/C"][1],
            round(per_scheme["C/C"][2], 1),
            per_scheme["C/D"][0], round(per_scheme["C/D"][2], 1),
        ])
    text = format_table(
        ["repair cap", "C/C disk h", "C/C pool h", "C/C nines",
         "C/D disk h", "C/D nines"],
        rows,
        title="Ablation: repair-bandwidth cap (paper uses 20%)",
    )
    return results, text


def test_ablation_bandwidth(benchmark):
    results, text = once(benchmark, build_figure)
    emit("ablation_bandwidth", text)

    # Repair times scale exactly inversely with the cap.
    t_low = results[0.1]["C/C"][0]
    t_high = results[0.2]["C/C"][0]
    assert t_low / t_high == pytest.approx(2.0, rel=0.01)

    # More repair bandwidth never hurts durability.
    for name in ("C/C", "C/D"):
        nines = [results[f][name][2] for f in FRACTIONS]
        assert all(b >= a - 1e-9 for a, b in zip(nines, nines[1:]))

    # Diminishing returns: C/D (detection-bound after R_MIN) gains less
    # from 20% -> 100% than C/C (repair-bound) does.
    gain_cc = results[1.0]["C/C"][2] - results[0.2]["C/C"][2]
    gain_cd = results[1.0]["C/D"][2] - results[0.2]["C/D"][2]
    assert gain_cc > gain_cd
