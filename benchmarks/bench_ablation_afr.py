"""Ablation: annual failure rate sensitivity.

The paper fixes AFR at 1%; real fleets span roughly 0.5-4% (Backblaze drive
stats).  This ablation sweeps the AFR and verifies the structural
prediction of the Markov models: MLEC durability falls ~ (p_l+1) + p_n
decades per decade of failure rate near the paper's operating point, so
even a 4x-worse fleet keeps tens of nines.
"""

import math

from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.analysis.durability import mlec_durability_nines
from repro.core.config import FailureConfig
from repro.reporting import format_table

AFRS = (0.005, 0.01, 0.02, 0.04)


def build_figure():
    results = {}
    rows = []
    for name in ("C/C", "C/D"):
        scheme = mlec_scheme_from_name(name, PAPER_MLEC)
        nines = [
            mlec_durability_nines(
                scheme, RepairMethod.R_MIN,
                failures=FailureConfig(annual_failure_rate=afr),
            )
            for afr in AFRS
        ]
        results[name] = nines
        rows.append([f"{name} R_MIN"] + [round(v, 1) for v in nines])
    text = format_table(
        ["scheme"] + [f"AFR {afr:.1%}" for afr in AFRS],
        rows,
        title="Ablation: one-year durability (nines) vs annual failure rate",
    )
    return results, text


def test_ablation_afr(benchmark):
    results, text = once(benchmark, build_figure)
    emit("ablation_afr", text)

    for nines in results.values():
        # Monotone: worse fleets, fewer nines.
        assert all(a >= b for a, b in zip(nines, nines[1:]))
        # Even a 4% AFR fleet keeps >= 15 nines with R_MIN.
        assert nines[-1] > 15

    # Local-exponent check: PDL ~ lambda^((p_l+1)*(p_n+1) - p_n...) -- in
    # practice the chain gives a slope between the local exponent (4) and
    # the full stack (11); just pin that doubling AFR costs 3-5 nines.
    for nines in results.values():
        drop = nines[1] - nines[2]  # 1% -> 2%
        assert 2.0 < drop < 5.0, drop

    # C/D keeps its lead over C/C across the whole sweep.
    assert all(cd > cc for cd, cc in zip(results["C/D"], results["C/C"]))


def test_afr_slope_matches_chain_structure(benchmark):
    """The 0.5% -> 4% slope in log-log space stays near the theoretical
    compound exponent of the two-level chain."""
    def slopes():
        scheme = mlec_scheme_from_name("C/C", PAPER_MLEC)
        out = []
        for a, b in zip(AFRS, AFRS[1:]):
            na = mlec_durability_nines(
                scheme, RepairMethod.R_MIN,
                failures=FailureConfig(annual_failure_rate=a))
            nb = mlec_durability_nines(
                scheme, RepairMethod.R_MIN,
                failures=FailureConfig(annual_failure_rate=b))
            out.append((na - nb) / math.log10(b / a))
        return out

    values = once(benchmark, slopes)
    # Each doubling's slope: between the local-pool exponent (~4 per
    # decade) and the full two-level exponent; and roughly constant.
    for s in values:
        assert 8.0 < s < 14.0, values
    # Slope roughly constant across the sweep (pure power-law regime).
    assert max(values) - min(values) < 2.0
