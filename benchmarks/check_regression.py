"""CI performance-regression gate over the tracked BENCH_*.json records.

Compares freshly generated benchmark telemetry (``benchmarks/results/``)
against the committed baselines at the repository root and fails when
``trials_per_second`` dropped by more than the tolerated fraction.  The
committed baselines are regenerated on any PR that intentionally changes
performance, so the gate only trips on *unintended* slowdowns.

Usage::

    python benchmarks/check_regression.py [NAME ...]

With no arguments the default gate set (:data:`GATED`) is checked.  Each
NAME is the benchmark record stem, e.g. ``fig05_mlec_burst_pdl``.

Environment knobs:

* ``MLEC_BENCH_TOLERANCE`` -- maximum tolerated fractional drop in
  ``trials_per_second`` (default ``0.30``; CI uses a looser value
  because shared runners time noisily).
* ``GITHUB_STEP_SUMMARY`` -- when set (by GitHub Actions), the
  before/after table is appended there as Markdown too.

Exit status: 0 when every gated benchmark is within tolerance, 1 on any
regression or missing/unreadable record, 2 when ``MLEC_BENCH_TOLERANCE``
is unparsable or out of range.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

ROOT_DIR = Path(__file__).parent.parent
RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmarks gated by default: the Monte-Carlo hot path (exercises the
#: batch-trial engine) and the event-driven system simulator (exercises
#: the scalar core the batch engine demotes to).
GATED = ("fig05_mlec_burst_pdl", "system_simulator_quarter")

DEFAULT_TOLERANCE = 0.30


def tolerance() -> float:
    """Tolerated fractional throughput drop (``MLEC_BENCH_TOLERANCE``)."""
    override = os.environ.get("MLEC_BENCH_TOLERANCE", "").strip()
    if override:
        try:
            value = float(override)
        except ValueError:
            print(
                f"check_regression: MLEC_BENCH_TOLERANCE={override!r} is not "
                "a number; expected a fraction in [0, 1), e.g. 0.30",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    else:
        value = DEFAULT_TOLERANCE
    if not 0.0 <= value < 1.0:
        print(
            f"check_regression: MLEC_BENCH_TOLERANCE must be in [0, 1), "
            f"got {value!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return value


def _load(path: Path) -> dict | None:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


def check(names: tuple[str, ...], allowed_drop: float) -> list[dict]:
    """Return one row per gated benchmark; ``row["ok"]`` is the verdict."""
    rows = []
    for name in names:
        baseline = _load(ROOT_DIR / f"BENCH_{name}.json")
        fresh = _load(RESULTS_DIR / f"BENCH_{name}.json")
        row = {
            "name": name,
            "baseline": (baseline or {}).get("trials_per_second"),
            "fresh": (fresh or {}).get("trials_per_second"),
            "ok": False,
            "note": "",
        }
        if row["baseline"] is None:
            row["note"] = "missing committed baseline"
        elif row["fresh"] is None:
            row["note"] = "missing fresh record (did the benchmark run?)"
        else:
            floor = row["baseline"] * (1.0 - allowed_drop)
            row["ok"] = row["fresh"] >= floor
            ratio = row["fresh"] / row["baseline"] if row["baseline"] else 0.0
            row["note"] = f"{ratio:.2f}x baseline (floor {floor:.2f}/s)"
        rows.append(row)
    return rows


def _fmt(value: float | None) -> str:
    return f"{value:.2f}" if isinstance(value, (int, float)) else "-"


def render(rows: list[dict], allowed_drop: float) -> str:
    """Markdown before/after table (also readable as plain text)."""
    lines = [
        f"### Benchmark regression gate (tolerance: -{allowed_drop:.0%})",
        "",
        "| benchmark | baseline trials/s | fresh trials/s | verdict |",
        "| --- | ---: | ---: | --- |",
    ]
    for row in rows:
        verdict = "PASS" if row["ok"] else "**FAIL**"
        lines.append(
            f"| {row['name']} | {_fmt(row['baseline'])} "
            f"| {_fmt(row['fresh'])} | {verdict} -- {row['note']} |"
        )
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    names = tuple(argv) or GATED
    allowed_drop = tolerance()
    rows = check(names, allowed_drop)
    table = render(rows, allowed_drop)
    print(table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY", "").strip()
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(table + "\n")
    return 0 if all(row["ok"] for row in rows) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
