"""Ablation: failure-detection time (paper §5.2.2 discussion).

The paper attributes part of the durability ceiling to the 30-minute
detection delay and speculates about 1-minute detection.  This ablation
sweeps the delay and shows which schemes are detection-bound.
"""

from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.analysis.durability import lrc_durability_nines, mlec_durability_nines
from repro.core.config import FailureConfig, LRCParams
from repro.core.scheme import LRCScheme
from repro.reporting import format_table

DELAYS = (60.0, 600.0, 1800.0, 7200.0)  # 1 min .. 2 h


def build_figure():
    rows = []
    results = {}
    for name in ("C/C", "C/D", "D/D"):
        scheme = mlec_scheme_from_name(name, PAPER_MLEC)
        nines = [
            mlec_durability_nines(
                scheme, RepairMethod.R_MIN,
                failures=FailureConfig(detection_time=d),
            )
            for d in DELAYS
        ]
        results[name] = nines
        rows.append([f"MLEC {name} R_MIN"] + [round(v, 1) for v in nines])
    lrc = LRCScheme(LRCParams(14, 2, 4))
    lrc_nines = [
        lrc_durability_nines(lrc, failures=FailureConfig(detection_time=d))
        for d in DELAYS
    ]
    results["LRC"] = lrc_nines
    rows.append(["LRC-Dp (14,2,4)"] + [round(v, 1) for v in lrc_nines])
    text = format_table(
        ["scheme"] + [f"detect {int(d)}s" for d in DELAYS],
        rows,
        title="Ablation: one-year durability (nines) vs detection delay",
    )
    return results, text


def test_ablation_detection_time(benchmark):
    results, text = once(benchmark, build_figure)
    emit("ablation_detection_time", text)

    # Durability never improves with slower detection.
    for nines in results.values():
        assert all(a >= b - 1e-9 for a, b in zip(nines, nines[1:]))
    # Dp-local schemes are detection-bound: 1-minute detection buys them
    # far more than it buys C/C (whose repair, not detection, dominates).
    gain_cd = results["C/D"][0] - results["C/D"][2]
    gain_cc = results["C/C"][0] - results["C/C"][2]
    assert gain_cd > gain_cc + 1.0
    # LRC also benefits from fast detection (paper's 1-minute speculation).
    assert results["LRC"][0] > results["LRC"][2] + 1.0
