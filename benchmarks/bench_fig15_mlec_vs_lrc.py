"""Figure 15: MLEC C/D vs LRC-Dp durability/throughput trade-off.

Regenerates the two scatter families at ~30% parity overhead and pins
§5.2.2 Findings 1-2.
"""

from _harness import emit, once

from repro.analysis.tradeoff import lrc_tradeoff, mlec_tradeoff, pareto_front
from repro.reporting import format_table


def build_figure():
    cd = mlec_tradeoff("C/D")
    lrc = lrc_tradeoff()
    sections = []
    for label, points in (("C/D", cd), ("LRC-Dp", lrc)):
        rows = [
            [p.config, round(p.durability_nines, 1), round(p.throughput_gb_per_s, 2)]
            for p in pareto_front(points)
        ]
        sections.append(format_table(
            ["config", "nines/yr", "GB/s"], rows,
            title=f"Figure 15 ({label}): Pareto front of {len(points)} configs",
        ))
    return cd, lrc, "\n\n".join(sections)


def test_fig15_mlec_vs_lrc(benchmark):
    cd, lrc, text = once(benchmark, build_figure)
    emit("fig15_mlec_vs_lrc", text)

    def best_throughput_above(points, nines):
        return max(
            (p.throughput_gb_per_s for p in points if p.durability_nines >= nines),
            default=0.0,
        )

    # F#1: MLEC reaches high durability at higher encoding throughput.
    assert best_throughput_above(cd, 30) > 2 * best_throughput_above(lrc, 30)
    # The throughput-matched comparison of §5.2.3: the paper's (14,2,4)
    # LRC sits in the enumeration and below C/D's frontier.
    lrc_1424 = [p for p in lrc if p.config == "(14,2,4)"]
    assert lrc_1424, "(14,2,4) must be enumerated"
    point = lrc_1424[0]
    dominating = [
        p for p in cd
        if p.durability_nines > point.durability_nines
        and p.throughput_bytes_per_s > point.throughput_bytes_per_s
    ]
    assert dominating, "some C/D config must dominate (14,2,4) LRC-Dp"
