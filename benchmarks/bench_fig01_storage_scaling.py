"""Figure 1: storage scaling over the years.

Regenerates both panels -- disks per system (Backblaze / US DOE) and
capacity per disk (max available / average sold) -- from the transcribed
dataset and checks the motivating growth trends.
"""

from _harness import emit, once

from repro.datasets.scaling import storage_scaling_table
from repro.reporting import format_table


def build_figure():
    table = storage_scaling_table()
    years = table["Backblaze"].years
    rows = []
    for i, year in enumerate(years):
        rows.append([
            int(year),
            round(float(table["Backblaze"].values[i]), 1),
            round(float(table["US DOE"].values[i]), 1),
            round(float(table["Max Available"].values[i]), 1),
            round(float(table["Average Sold"].values[i]), 1),
        ])
    text = format_table(
        ["year", "Backblaze (k disks)", "US DOE (k disks)",
         "max avail (TB)", "avg sold (TB)"],
        rows,
        title="Figure 1: storage scaling over the years",
    )
    return table, text


def test_fig01_storage_scaling(benchmark):
    table, text = once(benchmark, build_figure)
    emit("fig01_storage_scaling", text)
    # Paper's motivation: both fleet sizes and disk capacities keep growing.
    assert table["Backblaze"].at(2022) > 200  # ~202k disks
    assert table["US DOE"].at(2022) > 50
    assert table["Max Available"].at(2022) >= 20
    for series in table.values():
        assert series.growth_factor() > 5
