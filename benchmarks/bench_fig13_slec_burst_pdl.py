"""Figure 13: PDL of (7+3) SLEC under correlated failure bursts.

Regenerates the four SLEC placement heatmaps with the Monte-Carlo burst
engine plus exact DP spot values, and pins the §5.1.3 claims: local SLEC
fears localized bursts, network SLEC fears scattered ones, and declustering
amplifies each weakness.
"""

import numpy as np
from _harness import emit, once

from repro.analysis.burst_dp import slec_burst_pdl
from repro.core.config import SLECParams
from repro.core.scheme import SLECScheme
from repro.core.types import Level, Placement
from repro.reporting import format_heatmap, format_table
from repro.sim.burst import SLECBurstEvaluator, burst_pdl_grid

PLACEMENTS = [
    ("Loc-Cp", Level.LOCAL, Placement.CLUSTERED),
    ("Loc-Dp", Level.LOCAL, Placement.DECLUSTERED),
    ("Net-Cp", Level.NETWORK, Placement.CLUSTERED),
    ("Net-Dp", Level.NETWORK, Placement.DECLUSTERED),
]
FAILURES = np.array([12, 24, 36, 48, 60])
RACKS = np.array([1, 2, 4, 10, 30, 60])


def scheme(level, placement):
    return SLECScheme(SLECParams(7, 3), level, placement)


def build_figure():
    sections = []
    grids = {}
    for label, level, placement in PLACEMENTS:
        ev = SLECBurstEvaluator(scheme(level, placement))
        grid = burst_pdl_grid(ev, FAILURES, RACKS, trials=25, seed=13)
        grids[label] = grid
        sections.append(format_heatmap(
            grid, FAILURES.tolist(), RACKS.tolist(),
            title=f"Figure 13 ({label}-S):",
        ))
    dp_rows = [
        [label,
         slec_burst_pdl(scheme(level, placement), 60, 1),
         slec_burst_pdl(scheme(level, placement), 60, 60)]
        for label, level, placement in PLACEMENTS
    ]
    sections.append(format_table(
        ["placement", "DP PDL(60,1)", "DP PDL(60,60)"], dp_rows,
        title="Exact/worst-case DP spot values:",
    ))
    return grids, {r[0]: (r[1], r[2]) for r in dp_rows}, "\n\n".join(sections)


def test_fig13_slec_burst_pdl(benchmark):
    grids, dp, text = once(benchmark, build_figure)
    emit("fig13_slec_burst_pdl", text)

    # Local SLEC: susceptible to localized bursts, safe when scattered.
    assert dp["Loc-Cp"][0] > 1e-3 and dp["Loc-Cp"][1] <= 1e-12
    # Local-Dp amplifies the localized weakness.
    assert dp["Loc-Dp"][0] > dp["Loc-Cp"][0]
    # Network SLEC: safe when localized, loses when scattered.
    assert dp["Net-Cp"][0] <= 1e-12
    assert dp["Net-Dp"][0] <= 1e-12 and dp["Net-Dp"][1] == 1.0
    # Net-Cp's PDL is 0 whenever <= p racks are affected (MC grid columns).
    net_cp = grids["Net-Cp"]
    assert np.nansum(net_cp[:, :2]) == 0.0  # 1 and 2 affected racks
