"""Section 5.2.4 (text-only in the paper): repair network traffic vs LRC.

"LRC-Dp's repair network traffic is less than network SLEC ... However,
every repair still needs to read and write over the network ... MLEC
requires much less network traffic."
"""

from _harness import emit, once

from repro import PAPER_MLEC, RepairMethod, mlec_scheme_from_name
from repro.analysis.markov import local_pool_catastrophic_rate
from repro.core.config import LRCParams, SLECParams
from repro.core.scheme import LRCScheme, SLECScheme
from repro.core.types import Level, Placement
from repro.repair.traffic_comparison import (
    lrc_annual_cross_rack_traffic,
    mlec_annual_cross_rack_traffic,
    slec_annual_cross_rack_traffic,
)
from repro.reporting import format_table


def build_figure():
    rows = []
    lrc = LRCScheme(LRCParams(14, 2, 4))
    lrc_rate = lrc_annual_cross_rack_traffic(lrc)
    rows.append(["LRC-Dp (14,2,4)", lrc_rate.tb_per_day])

    # A durability-comparable wide network SLEC (same 30% overhead band).
    slec = SLECScheme(SLECParams(14, 6), Level.NETWORK, Placement.DECLUSTERED)
    slec_rate = slec_annual_cross_rack_traffic(slec)
    rows.append(["Net-Dp-S (14+6)", slec_rate.tb_per_day])

    mlec = mlec_scheme_from_name("C/D", PAPER_MLEC)
    pool_rate = local_pool_catastrophic_rate(mlec) * mlec.total_local_pools
    mlec_rate = mlec_annual_cross_rack_traffic(mlec, RepairMethod.R_MIN, pool_rate)
    rows.append(["MLEC C/D R_MIN", mlec_rate.tb_per_day])

    text = format_table(
        ["scheme", "cross-rack TB/day"],
        rows,
        title="Section 5.2.4: LRC vs SLEC vs MLEC repair traffic",
    )
    return lrc_rate, slec_rate, mlec_rate, text


def test_sec524_lrc_traffic(benchmark):
    lrc_rate, slec_rate, mlec_rate, text = once(benchmark, build_figure)
    emit("sec524_lrc_traffic", text)

    # LRC < network SLEC (locality shrinks per-failure reads)...
    assert lrc_rate.bytes_per_year < slec_rate.bytes_per_year
    # ...but still substantial (every repair crosses racks)...
    assert lrc_rate.tb_per_day > 10
    # ...while MLEC is orders of magnitude lower.
    assert lrc_rate.bytes_per_year > 1e6 * max(mlec_rate.bytes_per_year, 1e-30)
