"""Figure 16: PDL of (14,2,4) LRC-Dp under correlated failure bursts.

Regenerates the heatmap and pins the §5.2.3 pattern: like network-Dp SLEC,
LRC-Dp is vulnerable to highly *scattered* bursts and safe against
localized ones (where MLEC is weakest) -- up to its guaranteed r+1-failure
floor.
"""

import numpy as np
from _harness import emit, once

from repro.core.config import LRCParams
from repro.core.scheme import LRCScheme
from repro.reporting import format_heatmap
from repro.sim.burst import LRCBurstEvaluator, burst_pdl_grid

FAILURES = np.array([12, 24, 36, 48, 60])
RACKS = np.array([1, 3, 5, 6, 10, 30, 60])


def build_figure():
    evaluator = LRCBurstEvaluator(LRCScheme(LRCParams(14, 2, 4)))
    grid = burst_pdl_grid(evaluator, FAILURES, RACKS, trials=25, seed=16)
    text = format_heatmap(
        grid, FAILURES.tolist(), RACKS.tolist(),
        title="Figure 16: PDL of (14,2,4) LRC-Dp under failure bursts",
    )
    return evaluator, grid, text


def test_fig16_lrc_burst_pdl(benchmark):
    evaluator, grid, text = once(benchmark, build_figure)
    emit("fig16_lrc_burst_pdl", text)

    # Guaranteed floor: any r+1 = 5 failures are recoverable, so columns
    # with <= 5 affected racks are exactly zero.
    assert np.nansum(grid[:, RACKS <= 5]) == 0.0
    # Scattered bursts are the weakness: PDL grows with the rack count at
    # fixed failure count (row y=60).
    row = grid[-1]
    valid = ~np.isnan(row)
    assert row[valid][-1] >= row[valid][0]
    assert row[valid][-1] > 0.0
    # The unrecoverable-pattern fraction drives it: zero through r+1, then
    # monotonically rising with pattern size.
    u = evaluator._unrecoverable_fraction_by_size()
    assert np.all(u[:6] == 0.0)
    assert u[-1] == 1.0
