"""Figure 14: the (4,2,2) LRC layout, exercised end to end.

The paper uses Figure 14 to contrast LRC's structure with MLEC's.  This
benchmark regenerates the layout description from the codec itself and
validates the structural contrasts of §5.2.1 (a)-(c) computationally.
"""

import numpy as np
import pytest
from _harness import emit, once

from repro.codes import AzureLRC, MLECCodec
from repro.reporting import format_table


def build_figure():
    lrc = AzureLRC(4, 2, 2)
    rows = []
    for idx in range(lrc.n):
        kind = (
            "data" if idx < lrc.k
            else "local parity" if idx < lrc.k + lrc.l
            else "global parity"
        )
        group = lrc.group_of(idx)
        rows.append([f"chunk {idx}", kind,
                     "-" if group is None else f"group {group}",
                     f"rack R{idx + 1}"])
    text = format_table(
        ["chunk", "role", "locality", "placement"],
        rows,
        title="Figure 14: a (4,2,2) LRC, one chunk per rack (declustered)",
    )
    return lrc, text


def test_fig14_lrc_layout(benchmark):
    lrc, text = once(benchmark, build_figure)
    emit("fig14_lrc_layout", text)

    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(4, 64), dtype=np.uint8)
    stripe = lrc.encode(data)

    # (a) LRC global parities depend on *all* data chunks; MLEC network
    # parities depend only on their column's chunks.
    tweaked = data.copy()
    tweaked[0] ^= 0xFF
    restriped = lrc.encode(tweaked)
    assert not np.array_equal(stripe[6], restriped[6])  # global parity moved
    assert np.array_equal(stripe[5], restriped[5])  # other group's local parity

    mlec = MLECCodec(2, 1, 2, 1)
    mdata = rng.integers(0, 256, size=(4, 64), dtype=np.uint8)
    grid = mlec.encode(mdata)
    mtweaked = mdata.copy()
    mtweaked[0] ^= 0xFF  # network chunk 0, local position 0
    grid2 = mlec.encode(mtweaked)
    assert not np.array_equal(grid[2, 0], grid2[2, 0])  # same column parity
    assert np.array_equal(grid[2, 1], grid2[2, 1])  # other column untouched

    # (b) LRC has a single parity per local group; MLEC can have several.
    assert lrc.l == 2 and all(
        len(lrc.group_members(g)) == lrc.group_size + 1 for g in range(lrc.l)
    )

    # (c) MLEC's corner parity is the parity of parities (both orders).
    with pytest.raises(ValueError):
        lrc.decode(stripe, list(range(6)))  # 6 erasures: beyond any LRC(4,2,2)
