"""Rare-event splitting: the paper's multi-stage simulation strategy (§3).

Estimating 30+-nine durabilities by naive Monte Carlo is hopeless ("it will
take years even with a 200-core simulation"), so the paper splits the
problem:

* **Stage 1** -- simulate a *single local pool* and collect catastrophic-
  failure samples.  Even one pool's catastrophe is itself rare at AFR 1%,
  so stage 1 runs at *accelerated* failure rates and extrapolates back
  down the known power law: the catastrophic rate scales as
  ``lambda^(p_l+1)`` with ``p_l`` repair-limited attenuation factors, so a
  log-log fit over accelerated AFRs recovers both the exponent (a strong
  model check -- it should be close to ``p_l+1``) and the target-AFR rate.

* **Stage 2** -- inject catastrophic pool events at the network level at a
  *boosted* rate, count ``p_n+1``-way concurrencies among co-striped pools
  (weighted by the probability they actually share a lost network stripe),
  and scale the resulting PDL back by ``boost^(p_n+1)`` -- again the
  leading-order power law of independent-window overlap.

The Markov models (:mod:`repro.analysis.markov`,
:mod:`repro.analysis.durability`) provide the same quantities analytically;
the splitting estimators exist to *verify* them, mirroring the paper's
"our multiple methodologies verify each other".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.config import BandwidthConfig, FailureConfig, YEAR
from ..core.scheme import MLECScheme
from ..core.types import Placement, RepairMethod
from ..repair.bandwidth import BandwidthModel
from ..runtime import TrialContext, TrialRunner
from ..sim.failures import ExponentialFailures
from ..sim.local_pool import LocalPoolSimulator
from .durability import _network_exposure_time, _stripe_share_probability
from .markov import local_pool_reliability_chain
from .nines import pdl_to_nines

__all__ = [
    "AcceleratedRatePoint",
    "Stage1Result",
    "stage1_pool_rate",
    "Stage2Result",
    "stage2_network_pdl",
    "splitting_durability_nines",
]


@dataclasses.dataclass(frozen=True)
class AcceleratedRatePoint:
    """One accelerated-AFR measurement of the pool catastrophic rate."""

    afr: float
    pool_years: float
    events: int

    @property
    def rate(self) -> float:
        return self.events / self.pool_years


@dataclasses.dataclass(frozen=True)
class Stage1Result:
    """Stage-1 output: extrapolated rate and the fitted power law."""

    points: list[AcceleratedRatePoint]
    exponent: float
    rate_at_target: float
    target_afr: float
    mean_lost_fraction: float


def _pool_simulator(
    scheme: MLECScheme,
    afr: float,
    bw: BandwidthConfig,
    failures: FailureConfig,
) -> LocalPoolSimulator:
    model = BandwidthModel(scheme, bw)
    return LocalPoolSimulator(
        pool_disks=scheme.local_pool_disks,
        stripe_width=scheme.params.n_l,
        parities=scheme.params.p_l,
        clustered=scheme.local_placement is Placement.CLUSTERED,
        disk_capacity_bytes=scheme.dc.disk_capacity_bytes,
        chunk_size_bytes=scheme.dc.chunk_size_bytes,
        repair_rate=model.single_disk_repair_rate().rate,
        detection_time=failures.detection_time,
        failure_model=ExponentialFailures(afr),
    )


def _stage1_pool_year(
    ctx: TrialContext,
    scheme: MLECScheme,
    afr: float,
    bw: BandwidthConfig,
    failures: FailureConfig,
    base_seed: int,
) -> tuple[int, tuple[float, ...]]:
    """One accelerated pool-year: catastrophic count + lost fractions.

    Seeds stay on the historical ``base_seed + year`` grid (rather than the
    spawned stream) so parallel sweeps reproduce the serial results bit for
    bit.
    """
    sim = _pool_simulator(scheme, afr, bw, failures)
    result = sim.run(mission_time=YEAR, seed=base_seed + ctx.index)
    return (
        result.n_catastrophic,
        tuple(s.lost_fraction for s in result.catastrophic_samples),
    )


def stage1_pool_rate(
    scheme: MLECScheme,
    accelerated_afrs: tuple[float, ...] = (0.4, 0.5, 0.65),
    pool_years_each: int = 2000,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
    seed: int = 0,
    runner: TrialRunner | None = None,
) -> Stage1Result:
    """Stage 1: accelerated pool simulation + power-law extrapolation.

    The ``pool_years_each`` independent pool-years per accelerated AFR are
    Monte Carlo trials; ``runner`` fans them out over worker processes with
    results identical to the serial sweep for any worker count.  A
    :class:`~repro.runtime.ResilientRunner` checkpoints each accelerated
    AFR as its own sweep ordinal, so a resumed stage-1 campaign skips
    every already-journaled pool-year chunk.
    """
    bw = bw if bw is not None else BandwidthConfig()
    failures = failures if failures is not None else FailureConfig()
    runner = runner if runner is not None else TrialRunner()
    points: list[AcceleratedRatePoint] = []
    lost_fractions: list[float] = []
    for i, afr in enumerate(accelerated_afrs):
        outcomes = runner.map(
            _stage1_pool_year,
            pool_years_each,
            seed=seed + i,
            args=(scheme, afr, bw, failures, seed + i * 100_000),
        )
        events = 0
        for n_catastrophic, fractions in outcomes:
            events += n_catastrophic
            lost_fractions.extend(fractions)
        points.append(
            AcceleratedRatePoint(afr=afr, pool_years=pool_years_each, events=events)
        )

    observed = [p for p in points if p.events > 0]
    if len(observed) < 2:
        raise RuntimeError(
            "not enough catastrophic events observed; raise the accelerated "
            "AFRs or the pool-year budget"
        )
    # Fit against the exponential *hazard rate*, not the AFR: the rate is
    # -ln(1-AFR)/year, noticeably super-linear in AFR at the accelerated
    # levels, and the power law lives in rate space.
    log_lam = np.log([-np.log1p(-p.afr) for p in observed])
    log_rate = np.log([p.rate for p in observed])
    exponent, intercept = np.polyfit(log_lam, log_rate, 1)
    target = failures.annual_failure_rate
    target_lam = -np.log1p(-target)
    rate_at_target = float(np.exp(intercept + exponent * np.log(target_lam)))
    return Stage1Result(
        points=points,
        exponent=float(exponent),
        rate_at_target=rate_at_target,
        target_afr=target,
        mean_lost_fraction=float(np.mean(lost_fractions)) if lost_fractions else 0.0,
    )


@dataclasses.dataclass(frozen=True)
class Stage2Result:
    """Stage-2 output: boosted-injection PDL scaled back to the true rate."""

    boosted_rate_per_pool_year: float
    boost: float
    simulated_years: float
    expected_losses_boosted: float
    pdl_per_year: float

    @property
    def nines(self) -> float:
        return pdl_to_nines(min(1.0, self.pdl_per_year))


def stage2_network_pdl(
    scheme: MLECScheme,
    method: RepairMethod,
    pool_rate_per_year: float,
    lost_fraction: float,
    boost: float | None = None,
    years: float | None = None,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
    seed: int = 0,
) -> Stage2Result:
    """Stage 2: inject catastrophic pool events at ``boost`` x the rate.

    Samples Poisson arrivals of catastrophic pool events across the
    system, opens an exposure window per event (the repair method's
    network-stage time), and accumulates the stripe-sharing probability
    every time an arrival makes ``p_n+1`` co-striped pools concurrently
    catastrophic.  The boosted PDL scales back by ``boost^(p_n+1)``.

    ``boost``/``years`` default to an auto-tuned operating point: per
    co-stripe domain, about 5% window occupancy (keeping the leading-order
    rescaling honest) and ~2e5 total events (enough overlaps to count).
    """
    bw = bw if bw is not None else BandwidthConfig()
    failures = failures if failures is not None else FailureConfig()
    rng = np.random.default_rng(seed)
    s = scheme

    chain = local_pool_reliability_chain(s, bw, failures)
    tau = _network_exposure_time(s, method, chain, bw, failures)
    q = _stripe_share_probability(s, method, lost_fraction)
    threshold = s.params.p_n + 1

    if s.network_placement is Placement.CLUSTERED:
        n_domains = s.total_local_pools // s.params.n_n
    else:
        n_domains = 1
    if boost is None:
        # Target ~5% of each domain's timeline covered by open windows.
        domain_rate = pool_rate_per_year * s.total_local_pools / n_domains
        occupancy = domain_rate * tau / YEAR
        boost = max(1.0, 0.05 / occupancy) if occupancy > 0 else 1.0
    if years is None:
        events_per_year = pool_rate_per_year * boost * s.total_local_pools
        years = min(50_000.0, max(100.0, 2e5 / max(events_per_year, 1e-12)))

    boosted = pool_rate_per_year * boost
    total_rate = boosted * s.total_local_pools / YEAR  # events per second
    horizon = years * YEAR
    expected_events = total_rate * horizon
    if expected_events > 5e6:
        raise ValueError(
            f"boosted injection would generate ~{expected_events:.2e} events; "
            "lower `boost` or `years` (the estimate scales back analytically)"
        )
    n_events = rng.poisson(expected_events)
    times = np.sort(rng.uniform(0.0, horizon, size=n_events))
    pools = rng.integers(s.total_local_pools, size=n_events)

    if s.network_placement is Placement.CLUSTERED:
        # Pools are co-striped iff they share (rack group, pool position).
        ppr = s.local_pools_per_rack
        racks = pools // ppr
        keys = (racks // s.network_group_racks) * ppr + pools % ppr
    else:
        keys = np.zeros(n_events, dtype=np.int64)  # one big co-stripe domain
    pool_racks = pools // s.local_pools_per_rack

    expected_losses = 0.0
    open_until: dict[int, list[tuple[float, int, int]]] = {}
    for t, pool, key, rack in zip(times, pools, keys, pool_racks):
        window = open_until.setdefault(int(key), [])
        window[:] = [w for w in window if w[0] > t]
        distinct_racks = {w[2] for w in window if w[1] != pool}
        if len(distinct_racks.union({int(rack)})) >= threshold:
            expected_losses += q
        window.append((t + tau, int(pool), int(rack)))

    pdl_boosted = expected_losses / years
    pdl = pdl_boosted / boost**threshold
    return Stage2Result(
        boosted_rate_per_pool_year=boosted,
        boost=boost,
        simulated_years=years,
        expected_losses_boosted=expected_losses,
        pdl_per_year=min(1.0, pdl),
    )


def splitting_durability_nines(
    scheme: MLECScheme,
    method: RepairMethod,
    stage1: Stage1Result | None = None,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
    seed: int = 0,
    runner: TrialRunner | None = None,
) -> float:
    """End-to-end splitting estimate of one-year durability in nines."""
    if stage1 is None:
        stage1 = stage1_pool_rate(
            scheme, bw=bw, failures=failures, seed=seed, runner=runner
        )
    stage2 = stage2_network_pdl(
        scheme,
        method,
        pool_rate_per_year=stage1.rate_at_target,
        lost_fraction=stage1.mean_lost_fraction,
        bw=bw,
        failures=failures,
        seed=seed + 1,
    )
    return stage2.nines
