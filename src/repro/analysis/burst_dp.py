"""Exact PDL under correlated failure bursts by dynamic programming (§3).

The paper's third methodology: "count the number of all the possible disk
failure layouts under a certain correlated failure burst scenario, and then
count how many such failure layouts could cause a data loss".  This module
does exactly that -- no sampling -- for all four MLEC schemes and the SLEC
placements, under the burst model "y simultaneous failures across x racks,
at least one per affected rack, all layouts equally likely".

Two layers of counting:

1. *Within a rack*: failures land uniformly among the rack's disks; the
   distribution of the number of catastrophic pool positions (pools with
   more than ``p_l`` failures) follows from exchangeable-cell counting
   (:func:`repro.analysis.combinatorics.exactly_j_cells_over_threshold_pmf`).

2. *Across racks*: a generic cell-collision DP
   (:class:`CellCollisionDP`) tracks how many shared positions have
   accumulated 1, 2, ... catastrophic pools, rack by rack, and kills states
   where any position reaches the loss threshold.  An outer DP allocates
   the ``y`` failures (and, for network-clustered schemes, the ``x`` racks)
   across rack groups.

Declustered caveat: wherever a declustered placement is involved the DP
uses the worst-case declustering assumption (a pool with more than ``p_l``
failures *has* lost stripes; any ``p_n+1`` co-striped catastrophic pools
*do* lose a network stripe).  For clustered-everything (C/C, Loc-Cp,
Net-Cp) the numbers are exact; for D-flavoured schemes they are tight upper
bounds, and the Monte-Carlo burst engine (:mod:`repro.sim.burst`) provides
the placement-averaged refinement.  The test suite checks DP >= MC.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from ..core.arrays import AnyArray
from ..core.scheme import MLECScheme, SLECScheme
from ..core.types import Level, Placement
from .combinatorics import exactly_j_cells_over_threshold_pmf

__all__ = [
    "CellCollisionDP",
    "mlec_burst_pdl",
    "slec_burst_pdl",
]


class CellCollisionDP:
    """Survival DP for racks throwing marks into shared exchangeable cells.

    ``n_cells`` positions are shared across racks.  Racks are processed one
    at a time; rack ``i`` contributes ``j`` marks (with a caller-supplied
    distribution over ``j``), thrown into ``j`` *distinct* cells uniformly.
    A cell that accumulates ``threshold`` marks is a data loss; the DP
    tracks the joint distribution of how many cells sit at each occupancy
    level ``1..threshold-1`` and accumulates only surviving states.

    States are dicts ``{(n_1, ..., n_{threshold-1}): weight}``.  With the
    paper's parameters the state space stays in the low thousands.
    """

    def __init__(self, n_cells: int, threshold: int) -> None:
        if n_cells <= 0 or threshold < 1:
            raise ValueError("n_cells and threshold must be positive")
        self.n_cells = n_cells
        self.threshold = threshold
        self.levels = threshold - 1  # tracked occupancy levels 1..threshold-1
        empty = (0,) * self.levels
        self.states: dict[tuple[int, ...], float] = {empty: 1.0}

    def survive_probability(self) -> float:
        """Total surviving weight (callers keep it normalized)."""
        return float(sum(self.states.values()))

    def add_rack(self, j_pmf: AnyArray) -> None:
        """Fold in one rack with ``P[j marks] = j_pmf[j]``.

        Marks hitting a level-``i`` cell promote it to level ``i+1``; a hit
        on a level-``threshold-1`` cell is a loss and the state's weight is
        dropped.  The hit split across levels is multivariate
        hypergeometric over the cell counts.
        """
        j_pmf = np.asarray(j_pmf, dtype=float)
        new: dict[tuple[int, ...], float] = {}
        for state, weight in self.states.items():
            n_free = self.n_cells - sum(state)
            for j, pj in enumerate(j_pmf):
                if pj <= 0.0:
                    continue
                if j == 0:
                    key = state
                    new[key] = new.get(key, 0.0) + weight * pj
                    continue
                if j > self.n_cells:
                    continue  # impossible; weight is lost (treated as loss)
                denom = math.comb(self.n_cells, j)
                for split, ways in self._splits(state, n_free, j):
                    w = weight * pj * ways / denom
                    new[split] = new.get(split, 0.0) + w
        self.states = new

    def _splits(
        self, state: tuple[int, ...], n_free: int, j: int
    ) -> list[tuple[tuple[int, ...], float]]:
        """Yield (new_state, ways) for surviving allocations of j marks."""
        if self.levels == 0:
            # threshold == 1: any mark is a loss; only j == 0 survives
            # (handled by caller), so nothing to yield here.
            return []
        out: list[tuple[tuple[int, ...], float]] = []
        # a[i] = marks hitting level-(i+1) cells, i = 0..levels-1; the top
        # level cannot take any mark (that would reach the threshold).
        top = self.levels - 1

        def rec(i: int, remaining: int, counts: list[int], ways: float) -> None:
            if i == top:
                # marks on the top level would cause loss -> must be 0
                a_free = remaining
                if a_free > n_free:
                    return
                w = ways * math.comb(n_free, a_free)
                new_state = list(state)
                for lvl in range(self.levels):
                    new_state[lvl] += counts[lvl]
                # free-cell hits create level-1 cells
                new_state[0] += a_free
                out.append((tuple(new_state), w))
                return
            for a in range(min(state[i], remaining) + 1):
                counts[i] -= a  # a cells leave level i+1... see note below
                counts[i + 1] += a
                rec(i + 1, remaining - a, counts, ways * math.comb(state[i], a))
                counts[i] += a
                counts[i + 1] -= a

        # counts: net change per level; start at zero.
        rec(0, j, [0] * self.levels, 1.0)
        return out


def _prune_states(
    states: dict[tuple[int, ...], AnyArray], rel_tol: float = 1e-16
) -> dict[tuple[int, ...], AnyArray]:
    """Drop DP states whose weight is negligible *at every failure count*.

    The weight vectors are indexed by total failures ``r`` and span many
    orders of magnitude across ``r`` (layout counts grow combinatorially),
    so pruning must compare each entry against the aggregate at the same
    ``r`` -- a state is dropped only if it is below float precision of the
    final ratio everywhere.
    """
    if not states:
        return states
    agg = np.zeros_like(next(iter(states.values())))
    for v in states.values():
        agg += v
    cutoff = agg * rel_tol
    return {s: v for s, v in states.items() if bool(np.any(v > cutoff))}


def _rack_failure_ways(disks_per_rack: int, max_f: int) -> AnyArray:
    """log C(disks_per_rack, f) for f = 0..max_f (layout-count weights)."""
    f = np.arange(max_f + 1)
    return np.array(
        [math.lgamma(disks_per_rack + 1) - math.lgamma(k + 1)
         - math.lgamma(disks_per_rack - k + 1) for k in f]
    )


def _scaled_rack_weights(disks_per_rack: int, max_f: int) -> AnyArray:
    """Layout-count weights C(disks, f) scaled to stay in float range.

    Each weight is divided by ``exp(f * c)`` with a per-failure constant
    ``c``; any product of weights over racks whose failure counts sum to a
    fixed total is then scaled by the same ``exp(-total * c)``, which
    cancels in every survive/total ratio.
    """
    log_ways = _rack_failure_ways(disks_per_rack, max_f)
    c = log_ways[max_f] / max_f if max_f > 0 else 0.0
    f = np.arange(max_f + 1)
    return np.exp(log_ways - f * c)


@lru_cache(maxsize=None)
def _cat_position_pmf(
    cells: int, cell_size: int, failures: int, p_l: int
) -> tuple[float, ...]:
    """Cached P[exactly j catastrophic positions | f failures in rack]."""
    return tuple(
        exactly_j_cells_over_threshold_pmf(cells, cell_size, failures, p_l)
    )


def _per_rack_j_distributions(
    cells: int, cell_size: int, max_f: int, p_l: int
) -> list[AnyArray]:
    """j-pmf of catastrophic positions for every per-rack failure count."""
    return [
        np.asarray(_cat_position_pmf(cells, cell_size, f, p_l))
        for f in range(max_f + 1)
    ]


# ----------------------------------------------------------------------
# Network-declustered schemes: racks are exchangeable, loss happens when
# enough racks contain a catastrophic pool.
# ----------------------------------------------------------------------
def _netdp_pdl(
    disks_per_rack: int,
    cells: int,
    cell_size: int,
    p_l: int,
    loss_racks: int,
    failures: int,
    racks: int,
) -> float:
    """P[>= loss_racks racks hold a catastrophic pool] under the burst.

    DP over the ``x`` affected racks, allocating failures (>= 1 each,
    weighted by layout counts C(disks_per_rack, f)) and tracking the capped
    count of catastrophic racks.  Exact counting; weights are renormalized
    every step to stay in float range.
    """
    max_f = min(failures, disks_per_rack)
    j_dists = _per_rack_j_distributions(cells, cell_size, max_f, p_l)
    q_cat = np.array([1.0 - d[0] for d in j_dists])  # P[rack catastrophic | f]
    w = _scaled_rack_weights(disks_per_rack, max_f)

    cap = loss_racks
    # dp[u, c] = weight of using u failures so far with c catastrophic racks
    dp = np.zeros((failures + 1, cap + 1))
    dp[0, 0] = 1.0
    for _ in range(racks):
        new = np.zeros_like(dp)
        for f in range(1, max_f + 1):
            wf = w[f]
            src = dp[: failures + 1 - f]
            cat = q_cat[f]
            new[f:, : cap] += src[:, :cap] * (wf * (1 - cat))
            new[f:, 1 : cap + 1] += src[:, :cap] * (wf * cat)
            new[f:, cap] += src[:, cap] * wf
        total = new.sum()
        if total <= 0.0:
            return float("nan")
        dp = new / total  # rescale; relative shares are what matters
    final = dp[failures]
    denom = final.sum()
    if denom <= 0.0:
        return float("nan")
    return float(final[cap] / denom)


# ----------------------------------------------------------------------
# Network-clustered schemes: racks live in groups of n_n; loss requires
# >= p_n+1 catastrophic pools at the same pool position within one group.
# ----------------------------------------------------------------------
def _netcp_group_tables(
    disks_per_rack: int,
    cells: int,
    cell_size: int,
    p_l: int,
    loss_threshold: int,
    group_size: int,
    max_m: int,
    max_r: int,
) -> tuple[AnyArray, AnyArray]:
    """Per-group survival and total tables.

    Returns ``(survive, total)`` with shape ``(max_m+1, max_r+1)``:
    ``total[m, r]`` is the (scaled) number of layouts of ``r`` failures in
    ``m`` affected racks of the group (each >= 1), and ``survive[m, r]`` the
    portion in which no pool position collects ``loss_threshold``
    catastrophic pools.
    """
    max_f = min(max_r, disks_per_rack)
    w = _scaled_rack_weights(disks_per_rack, max_f)
    j_dists = _per_rack_j_distributions(cells, cell_size, max_f, p_l)

    survive = np.zeros((max_m + 1, max_r + 1))
    total = np.zeros((max_m + 1, max_r + 1))
    survive[0, 0] = total[0, 0] = 1.0

    # total[m] is a plain convolution over failure counts.
    conv = np.zeros(max_r + 1)
    conv[0] = 1.0
    for m in range(1, max_m + 1):
        new = np.zeros_like(conv)
        for f in range(1, max_f + 1):
            new[f:] += conv[: max_r + 1 - f] * w[f]
        conv = new
        total[m] = conv

    # survive[m] needs the collision DP; run it incrementally per failure
    # allocation.  State: {(occupancy-levels): weights indexed by r}.
    # Implemented as dict state -> AnyArray over r.
    states: dict[tuple[int, ...], AnyArray] = {}
    empty = (0,) * (loss_threshold - 1)
    init = np.zeros(max_r + 1)
    init[0] = 1.0
    states[empty] = init
    dp_proto = CellCollisionDP(cells, loss_threshold)
    for m in range(1, max_m + 1):
        new_states: dict[tuple[int, ...], AnyArray] = {}
        for state, vec in states.items():
            n_free = cells - sum(state)
            for f in range(1, max_f + 1):
                j_pmf = j_dists[f]
                shifted_src = vec[: max_r + 1 - f]
                if not shifted_src.any():
                    continue
                for j, pj in enumerate(j_pmf):
                    if pj <= 1e-300:
                        continue
                    if j == 0:
                        arr = new_states.setdefault(state, np.zeros(max_r + 1))
                        arr[f:] += shifted_src * (w[f] * pj)
                        continue
                    if j > cells:
                        continue
                    denom = math.comb(cells, j)
                    dp_proto.states = {state: 1.0}
                    for split, ways in dp_proto._splits(state, n_free, j):
                        arr = new_states.setdefault(split, np.zeros(max_r + 1))
                        arr[f:] += shifted_src * (w[f] * pj * ways / denom)
        states = _prune_states(new_states)
        agg = np.zeros(max_r + 1)
        for vec in states.values():
            agg += vec
        survive[m] = agg
    return survive, total


def _netcp_pdl(
    disks_per_rack: int,
    cells: int,
    cell_size: int,
    p_l: int,
    loss_threshold: int,
    group_size: int,
    n_groups: int,
    failures: int,
    racks: int,
) -> float:
    """PDL for network-clustered schemes: exact count over group layouts."""
    max_m = min(group_size, racks)
    survive, total = _netcp_group_tables(
        disks_per_rack, cells, cell_size, p_l, loss_threshold,
        group_size, max_m, failures,
    )
    # Outer DP over groups: allocate affected racks m_g (weight C(group,m))
    # and failures r_g; numerator uses survive, denominator total.
    choose = np.array([math.comb(group_size, m) for m in range(max_m + 1)])
    num = _fold_groups(survive, choose, n_groups, racks, failures, max_m)
    den = _fold_groups(total, choose, n_groups, racks, failures, max_m)
    return _ratio_to_pdl(num, den)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def mlec_burst_pdl(scheme: MLECScheme, failures: int, racks: int) -> float:
    """Exact (worst-case-declustering) PDL of an MLEC scheme under a burst.

    Parameters
    ----------
    scheme:
        Any of the four MLEC schemes.
    failures, racks:
        The burst: ``failures`` simultaneous disk failures spread over
        ``racks`` racks (each affected rack has at least one).
    """
    if racks < 1 or racks > scheme.dc.racks:
        raise ValueError("racks out of range")
    if failures < racks:
        raise ValueError("need at least one failure per affected rack")
    s = scheme
    if s.local_placement is Placement.CLUSTERED:
        cells = s.local_pools_per_rack
        cell_size = s.params.n_l
    else:
        cells = s.dc.enclosures_per_rack
        cell_size = s.dc.disks_per_enclosure
    loss = s.params.p_n + 1
    if s.network_placement is Placement.DECLUSTERED:
        return _netdp_pdl(
            s.dc.disks_per_rack, cells, cell_size, s.params.p_l,
            loss, failures, racks,
        )
    return _netcp_pdl(
        s.dc.disks_per_rack, cells, cell_size, s.params.p_l,
        loss, s.network_group_racks, s.network_groups, failures, racks,
    )


def slec_burst_pdl(scheme: SLECScheme, failures: int, racks: int) -> float:
    """Exact (worst-case-declustering) PDL of a SLEC placement under a burst.

    * Local SLEC: loss iff any local pool exceeds ``p`` failures -- the
      network-Dp machinery with a loss threshold of one catastrophic rack.
    * Network-Dp: worst case, loss iff at least ``p+1`` racks are affected
      (every affected rack has a failed disk and any ``p+1`` disks in
      distinct racks co-host a stripe).
    * Network-Cp: collision DP over in-rack disk positions within each rack
      group, threshold ``p+1``.
    """
    if racks < 1 or racks > scheme.dc.racks:
        raise ValueError("racks out of range")
    if failures < racks:
        raise ValueError("need at least one failure per affected rack")
    s = scheme
    p = s.params.p
    if s.level is Level.LOCAL:
        if s.placement is Placement.CLUSTERED:
            cells = s.dc.disks_per_rack // s.params.n
            cell_size = s.params.n
        else:
            cells = s.dc.enclosures_per_rack
            cell_size = s.dc.disks_per_enclosure
        # Loss as soon as one rack has a catastrophic pool.
        return _netdp_pdl(
            s.dc.disks_per_rack, cells, cell_size, p, 1, failures, racks
        )
    if s.placement is Placement.DECLUSTERED:
        return 1.0 if racks >= p + 1 else 0.0
    # Network-Cp: each failed disk marks its in-rack position; loss iff a
    # position inside one rack group collects p+1 marks.  This is the
    # group-collision DP with "cells = disk positions" and each rack
    # contributing exactly f marks (all failures are marks).
    return _netcp_pdl_positions(
        s.dc.disks_per_rack, p + 1, s.params.n,
        s.dc.racks // s.params.n, failures, racks,
    )


def _netcp_pdl_positions(
    disks_per_rack: int,
    loss_threshold: int,
    group_size: int,
    n_groups: int,
    failures: int,
    racks: int,
) -> float:
    """Network-Cp SLEC: marks are the failed disks' in-rack positions."""
    max_m = min(group_size, racks)
    max_f = min(failures, disks_per_rack)
    w = _scaled_rack_weights(disks_per_rack, max_f)

    # Inner per-group tables, rack by rack; each rack with f failures
    # throws exactly f marks into distinct position cells.
    cells = disks_per_rack
    dp_proto = CellCollisionDP(cells, loss_threshold)
    empty = (0,) * (loss_threshold - 1)
    states: dict[tuple[int, ...], AnyArray] = {}
    init = np.zeros(failures + 1)
    init[0] = 1.0
    states[empty] = init
    survive = np.zeros((max_m + 1, failures + 1))
    total = np.zeros((max_m + 1, failures + 1))
    survive[0, 0] = total[0, 0] = 1.0
    conv = init.copy()
    for m in range(1, max_m + 1):
        new_conv = np.zeros_like(conv)
        for f in range(1, max_f + 1):
            new_conv[f:] += conv[: failures + 1 - f] * w[f]
        conv = new_conv
        total[m] = conv

        new_states: dict[tuple[int, ...], AnyArray] = {}
        for state, vec in states.items():
            n_free = cells - sum(state)
            for f in range(1, max_f + 1):
                src = vec[: failures + 1 - f]
                if not src.any():
                    continue
                denom = math.comb(cells, f)
                for split, ways in dp_proto._splits(state, n_free, f):
                    arr = new_states.setdefault(split, np.zeros(failures + 1))
                    arr[f:] += src * (w[f] * ways / denom)
        states = _prune_states(new_states)
        agg = np.zeros(failures + 1)
        for vec in states.values():
            agg += vec
        survive[m] = agg

    choose = np.array([math.comb(group_size, m) for m in range(max_m + 1)])
    num = _fold_groups(survive, choose, n_groups, racks, failures, max_m)
    den = _fold_groups(total, choose, n_groups, racks, failures, max_m)
    return _ratio_to_pdl(num, den)


def _fold_groups(
    tables: AnyArray,
    choose: AnyArray,
    n_groups: int,
    racks: int,
    failures: int,
    max_m: int,
) -> tuple[float, float]:
    """Convolve per-group (racks, failures) tables across all groups.

    Returns ``(value, log_scale)``: the DP cell for exactly (racks,
    failures), along with the accumulated log of the rescaling applied to
    keep floats in range -- the true value is ``value * exp(log_scale)``.
    """
    dp = np.zeros((racks + 1, failures + 1))
    dp[0, 0] = 1.0
    log_scale = 0.0
    for _ in range(n_groups):
        new = np.zeros_like(dp)
        for m in range(0, max_m + 1):
            t = tables[m] * choose[m]
            nz = np.nonzero(t)[0]
            if nz.size == 0:
                continue
            for r in nz:
                new[m:, r:] += dp[: racks + 1 - m, : failures + 1 - r] * t[r]
        dp = new
        scale = dp.max()
        if scale > 0:
            dp /= scale
            log_scale += math.log(scale)
    return float(dp[racks, failures]), log_scale


def _ratio_to_pdl(
    num: tuple[float, float], den: tuple[float, float]
) -> float:
    """PDL = 1 - survive/total from two scaled fold results."""
    num_val, num_log = num
    den_val, den_log = den
    if den_val <= 0.0:
        return float("nan")
    if num_val <= 0.0:
        return 1.0
    ratio = num_val / den_val * math.exp(num_log - den_log)
    return float(min(1.0, max(0.0, 1.0 - ratio)))
