"""Analytic machinery: combinatorics, DP, Markov chains, splitting, trade-offs."""

from .burst_dp import mlec_burst_pdl, slec_burst_pdl
from .combinatorics import (
    any_of_many,
    exactly_j_cells_over_threshold_pmf,
    hypergeom_tail,
    poisson_binomial_pmf,
    poisson_binomial_tail,
    rack_selection_hits_pmf,
)
from .durability import (
    lrc_durability_nines,
    mlec_durability_nines,
    slec_durability_nines,
)
from .markov import (
    PoolReliabilityChain,
    birth_death_mttdl,
    local_pool_catastrophic_rate,
    system_catastrophic_probability,
)
from .nines import (
    mttdl_to_pdl,
    nines_to_pdl,
    pdl_to_mttdl,
    pdl_to_nines,
    per_pool_to_system_pdl,
)
from .splitting import (
    splitting_durability_nines,
    stage1_pool_rate,
    stage2_network_pdl,
)
from .tradeoff import (
    TradeoffPoint,
    lrc_tradeoff,
    mlec_tradeoff,
    pareto_front,
    slec_tradeoff,
)

__all__ = [
    "mlec_burst_pdl",
    "slec_burst_pdl",
    "any_of_many",
    "exactly_j_cells_over_threshold_pmf",
    "hypergeom_tail",
    "poisson_binomial_pmf",
    "poisson_binomial_tail",
    "rack_selection_hits_pmf",
    "lrc_durability_nines",
    "mlec_durability_nines",
    "slec_durability_nines",
    "PoolReliabilityChain",
    "birth_death_mttdl",
    "local_pool_catastrophic_rate",
    "system_catastrophic_probability",
    "mttdl_to_pdl",
    "nines_to_pdl",
    "pdl_to_mttdl",
    "pdl_to_nines",
    "per_pool_to_system_pdl",
    "splitting_durability_nines",
    "stage1_pool_rate",
    "stage2_network_pdl",
    "TradeoffPoint",
    "lrc_tradeoff",
    "mlec_tradeoff",
    "pareto_front",
    "slec_tradeoff",
]
