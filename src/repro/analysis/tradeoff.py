"""Durability-vs-throughput trade-off sweeps (paper §5.1.2 and §5.2.2).

Figures 12 and 15 scatter one point per EC configuration: x = one-year
durability in nines, y = single-core encoding throughput.  "For fairness,
all the dots have a configuration with around 30% parity space overhead"
-- i.e. parity bytes are ~30% of raw capacity.

This module enumerates the admissible configurations for each scheme family
(the code must also physically fit the datacenter: clustered pool sizes must
divide the enclosure, network groups must divide the rack count) and
computes both coordinates from the analytic models.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from ..codes.throughput import IsalThroughputModel
from ..core.config import (
    BandwidthConfig,
    DatacenterConfig,
    FailureConfig,
    LRCParams,
    MLECParams,
    SLECParams,
)
from ..core.scheme import LRCScheme, MLECScheme, SLECScheme, mlec_scheme_from_name
from ..core.types import Level, Placement, RepairMethod
from .durability import (
    lrc_durability_nines,
    mlec_durability_nines,
    slec_durability_nines,
)

__all__ = [
    "TradeoffPoint",
    "enumerate_mlec_configs",
    "enumerate_slec_configs",
    "enumerate_lrc_configs",
    "mlec_tradeoff",
    "slec_tradeoff",
    "lrc_tradeoff",
]

#: The paper's parity-space band: "around 30%".
DEFAULT_BAND = (0.27, 0.33)


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One scatter point of Figure 12/15."""

    label: str
    config: str
    durability_nines: float
    throughput_bytes_per_s: float

    @property
    def throughput_gb_per_s(self) -> float:
        return self.throughput_bytes_per_s / 1e9


def _in_band(fraction: float, band: tuple[float, float]) -> bool:
    return band[0] <= fraction <= band[1]


def enumerate_mlec_configs(
    scheme_name: str,
    dc: DatacenterConfig | None = None,
    band: tuple[float, float] = DEFAULT_BAND,
    max_k: int = 24,
    max_p: int = 4,
) -> Iterator[MLECScheme]:
    """All MLEC schemes of one placement family inside the parity band.

    Skips parameter sets that do not physically fit the datacenter (e.g. a
    local-Cp pool size that does not divide the enclosure).
    """
    dc = dc if dc is not None else DatacenterConfig()
    for p_n in range(1, max_p + 1):
        for k_n in range(2, max_k + 1):
            for p_l in range(1, max_p + 1):
                for k_l in range(2, max_k + 1):
                    params = MLECParams(k_n, p_n, k_l, p_l)
                    if not _in_band(params.parity_fraction, band):
                        continue
                    try:
                        yield mlec_scheme_from_name(scheme_name, params, dc)
                    except ValueError:
                        continue  # does not fit the topology


def enumerate_slec_configs(
    level: Level,
    placement: Placement,
    dc: DatacenterConfig | None = None,
    band: tuple[float, float] = DEFAULT_BAND,
    max_k: int = 50,
    max_p: int = 15,
) -> Iterator[SLECScheme]:
    """All SLEC schemes of one placement inside the parity band."""
    dc = dc if dc is not None else DatacenterConfig()
    for p in range(1, max_p + 1):
        for k in range(2, max_k + 1):
            params = SLECParams(k, p)
            if not _in_band(params.parity_fraction, band):
                continue
            try:
                yield SLECScheme(params, level, placement, dc)
            except ValueError:
                continue


def enumerate_lrc_configs(
    dc: DatacenterConfig | None = None,
    band: tuple[float, float] = DEFAULT_BAND,
    max_k: int = 40,
    max_l: int = 4,
    max_r: int = 12,
) -> Iterator[LRCScheme]:
    """All declustered LRC configurations inside the parity band."""
    dc = dc if dc is not None else DatacenterConfig()
    for l in range(1, max_l + 1):
        for r in range(1, max_r + 1):
            for k in range(l, max_k + 1):
                if k % l:
                    continue
                params = LRCParams(k, l, r)
                if not _in_band(params.parity_fraction, band):
                    continue
                try:
                    yield LRCScheme(params, dc)
                except ValueError:
                    continue


# ----------------------------------------------------------------------
# Point computation
# ----------------------------------------------------------------------
def mlec_tradeoff(
    scheme_name: str,
    method: RepairMethod = RepairMethod.R_MIN,
    dc: DatacenterConfig | None = None,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
    band: tuple[float, float] = DEFAULT_BAND,
    model: IsalThroughputModel | None = None,
) -> list[TradeoffPoint]:
    """Figure 12's MLEC dots for one scheme family (paper uses R_MIN)."""
    model = model if model is not None else IsalThroughputModel()
    points = []
    for scheme in enumerate_mlec_configs(scheme_name, dc, band):
        points.append(
            TradeoffPoint(
                label=scheme_name,
                config=str(scheme.params),
                durability_nines=mlec_durability_nines(scheme, method, bw, failures),
                throughput_bytes_per_s=model.mlec_throughput(scheme.params),
            )
        )
    return points


def slec_tradeoff(
    level: Level,
    placement: Placement,
    dc: DatacenterConfig | None = None,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
    band: tuple[float, float] = DEFAULT_BAND,
    model: IsalThroughputModel | None = None,
) -> list[TradeoffPoint]:
    """Figure 12's SLEC dots for one placement."""
    model = model if model is not None else IsalThroughputModel()
    loc = "Loc" if level is Level.LOCAL else "Net"
    label = f"{loc}-{placement}p-S"
    points = []
    for scheme in enumerate_slec_configs(level, placement, dc, band):
        points.append(
            TradeoffPoint(
                label=label,
                config=str(scheme.params),
                durability_nines=slec_durability_nines(scheme, bw, failures),
                throughput_bytes_per_s=model.slec_throughput(scheme.params),
            )
        )
    return points


def lrc_tradeoff(
    dc: DatacenterConfig | None = None,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
    band: tuple[float, float] = DEFAULT_BAND,
    model: IsalThroughputModel | None = None,
) -> list[TradeoffPoint]:
    """Figure 15's LRC-Dp dots."""
    model = model if model is not None else IsalThroughputModel()
    points = []
    for scheme in enumerate_lrc_configs(dc, band):
        points.append(
            TradeoffPoint(
                label="LRC-Dp",
                config=str(scheme.params),
                durability_nines=lrc_durability_nines(scheme, bw, failures),
                throughput_bytes_per_s=model.lrc_throughput(scheme.params),
            )
        )
    return points


def pareto_front(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """Points not dominated in (durability, throughput), sorted by nines.

    Useful for summarizing a dense scatter: a point is on the front when no
    other point has both more nines and more throughput.
    """
    front = []
    for p in points:
        dominated = any(
            q.durability_nines > p.durability_nines
            and q.throughput_bytes_per_s > p.throughput_bytes_per_s
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.durability_nines)
