"""Combinatorial primitives shared by the burst analyses.

Three small tools power every probability-of-data-loss computation:

* :func:`hypergeom_tail` -- P[a stripe has more than ``p`` chunks on failed
  devices] for declustered pools;
* :func:`rack_selection_hits_pmf` -- the distribution of "hits" when a
  stripe picks ``width`` distinct racks out of ``R`` and each picked rack
  independently contributes a hit with its own probability (the workhorse of
  every network-declustered analysis);
* :func:`any_of_many` -- numerically stable ``1 - (1-q)^S`` for tiny ``q``
  and astronomically large stripe counts ``S``.
"""

from __future__ import annotations

import numpy as np

from ..core.arrays import AnyArray
from scipy import special, stats

__all__ = [
    "hypergeom_tail",
    "rack_selection_hits_pmf",
    "any_of_many",
    "exactly_j_cells_over_threshold_pmf",
    "poisson_binomial_pmf",
    "poisson_binomial_tail",
]


def hypergeom_tail(pool: int, failed: int, width: int, p: int) -> float:
    """P[more than ``p`` of a ``width``-chunk stripe land on failed devices].

    The stripe occupies ``width`` distinct devices drawn uniformly from a
    ``pool`` containing ``failed`` failed devices -- the declustered-pool
    stripe-damage model.
    """
    if not 0 <= failed <= pool:
        raise ValueError("failed must be in [0, pool]")
    if width > pool:
        raise ValueError("stripe wider than pool")
    if p >= min(width, failed):
        return 0.0
    # sf(p) = P[X > p] for the hypergeometric X.
    return float(stats.hypergeom.sf(p, pool, failed, width))


def rack_selection_hits_pmf(
    hit_probs: AnyArray, width: int, max_hits: int
) -> AnyArray:
    """Hit-count pmf when a stripe picks ``width`` racks w/o replacement.

    A stripe selects ``width`` distinct racks uniformly from the ``R`` racks
    described by ``hit_probs``; a selected rack ``r`` then scores a hit
    independently with probability ``hit_probs[r]`` (e.g. "the stripe's row
    in this rack landed on a catastrophic pool and was lost").

    Returns ``pmf`` of length ``max_hits + 1`` where the last entry
    aggregates ``>= max_hits`` hits, so ``pmf[-1]`` is the tail probability
    that usually means "data loss".

    Implementation: an O(R * width * max_hits) dynamic program over racks,
    tracking (racks chosen so far, hits so far), normalized by C(R, width).
    """
    h = np.asarray(hit_probs, dtype=float)
    if h.ndim != 1:
        raise ValueError("hit_probs must be 1-D (one entry per rack)")
    n_racks = len(h)
    if not 0 < width <= n_racks:
        raise ValueError(f"width must be in [1, {n_racks}]")
    if max_hits < 1:
        raise ValueError("max_hits must be >= 1")
    if np.any((h < 0) | (h > 1)):
        raise ValueError("hit probabilities must be in [0, 1]")

    # dp[c, t]: weighted count of ways to have chosen c racks with t hits
    # (t capped at max_hits).  Skipping zero-probability racks keeps the
    # common sparse case (few damaged racks) cheap.
    dp = np.zeros((width + 1, max_hits + 1))
    dp[0, 0] = 1.0
    nonzero = h > 0
    n_zero = int((~nonzero).sum())
    for prob in h[nonzero]:
        new = dp.copy()  # rack not chosen
        chosen = dp[:-1]  # shift in the "chosen" dimension
        new[1:] += chosen * (1 - prob)  # chosen, no hit
        new[1:, 1:] += chosen[:, :-1] * prob  # chosen, hit
        new[1:, -1] += chosen[:, -1] * prob  # hit while already capped
        dp = new
    # Racks with zero hit probability contribute C(n_zero, j) ways of
    # filling the remaining j slots, hit-free.
    pmf = np.zeros(max_hits + 1)
    for j in range(0, min(n_zero, width) + 1):
        pmf += dp[width - j] * special.comb(n_zero, j, exact=True)
    pmf /= special.comb(n_racks, width, exact=True)
    return pmf


def any_of_many(q: float, count: float) -> float:
    """``1 - (1 - q)^count`` computed stably for tiny ``q``, huge ``count``.

    This converts a per-stripe loss probability into a system PDL over
    ``count`` (up to ~1e10) stripes.
    """
    if q <= 0:
        return 0.0
    if q >= 1:
        return 1.0
    return float(-np.expm1(count * np.log1p(-q)))


def poisson_binomial_pmf(probs: AnyArray) -> AnyArray:
    """Pmf of a sum of independent, non-identical Bernoulli variables.

    Used for "how many of a network stripe's rows in catastrophic pools are
    actually lost" when each catastrophic declustered pool has its own
    lost-stripe probability.  O(n^2) convolution; n is a stripe width here.
    """
    probs = np.asarray(probs, dtype=float)
    if probs.ndim != 1:
        raise ValueError("probs must be 1-D")
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError("probabilities must be in [0, 1]")
    pmf = np.array([1.0])
    for p in probs:
        pmf = np.convolve(pmf, [1.0 - p, p])
    return pmf


def poisson_binomial_tail(probs: AnyArray, threshold: int) -> float:
    """P[sum of independent Bernoullis >= threshold]."""
    pmf = poisson_binomial_pmf(probs)
    if threshold >= len(pmf):
        return 0.0
    return float(pmf[threshold:].sum())


def exactly_j_cells_over_threshold_pmf(
    cells: int, cell_size: int, failures: int, threshold: int
) -> AnyArray:
    """P[exactly j cells exceed a failure threshold], j = 0..cells.

    ``failures`` devices fail uniformly at random among ``cells`` equal
    cells of ``cell_size`` devices; a cell "exceeds" when it holds more than
    ``threshold`` failures.  This is the per-rack distribution of the number
    of catastrophic pool *positions* used by the exact burst DP.

    Computed by a convolution DP over cells counting weighted layouts:
    ``ways[c][f][j]`` = layouts of ``f`` failures in the first ``c`` cells
    with ``j`` cells over threshold, divided by C(cells*cell_size, failures).
    """
    total = cells * cell_size
    if not 0 <= failures <= total:
        raise ValueError("failures out of range")
    # dp[f, j] over processed cells; use float (counts overflow ints fast,
    # and we only need 1e-12 relative precision).
    max_f = failures
    dp = np.zeros((max_f + 1, cells + 1))
    dp[0, 0] = 1.0
    binom = np.array(
        [special.comb(cell_size, i, exact=True) for i in range(min(cell_size, max_f) + 1)],
        dtype=float,
    )
    for _ in range(cells):
        new = np.zeros_like(dp)
        for i in range(len(binom)):
            w = binom[i]
            over = i > threshold
            src = dp[: max_f + 1 - i]
            if over:
                new[i:, 1:] += src[:, :-1] * w
            else:
                new[i:, :] += src * w
        dp = new
    pmf = dp[failures]
    pmf /= special.comb(total, failures, exact=True)
    return pmf
