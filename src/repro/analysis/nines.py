"""Durability unit conversions: PDL, nines, MTTDL.

The paper measures "data durability in one year ... in the number of nines,
defined as -log10(PDL)" (§4.2.3).  These helpers convert between the three
common representations, guarding the edge cases (PDL of exactly 0 or 1).
"""

from __future__ import annotations

import math

from ..core.config import YEAR

__all__ = [
    "pdl_to_nines",
    "nines_to_pdl",
    "mttdl_to_pdl",
    "pdl_to_mttdl",
    "per_pool_to_system_pdl",
]

#: Nines reported when PDL underflows to zero (effectively "never").
MAX_NINES = 300.0


def pdl_to_nines(pdl: float) -> float:
    """Number of nines of durability for a probability of data loss."""
    if not 0.0 <= pdl <= 1.0:
        raise ValueError(f"PDL must be in [0, 1], got {pdl}")
    if pdl <= 0.0:
        return MAX_NINES
    return -math.log10(pdl)


def nines_to_pdl(nines: float) -> float:
    """Probability of data loss for a number of nines."""
    if nines < 0:
        raise ValueError("nines must be non-negative")
    return 10.0 ** (-nines)


def mttdl_to_pdl(mttdl_seconds: float, horizon_seconds: float = YEAR) -> float:
    """PDL over a horizon for an exponential time-to-data-loss model."""
    if mttdl_seconds <= 0:
        return 1.0
    return float(-math.expm1(-horizon_seconds / mttdl_seconds))


def pdl_to_mttdl(pdl: float, horizon_seconds: float = YEAR) -> float:
    """Inverse of :func:`mttdl_to_pdl`."""
    if not 0.0 < pdl < 1.0:
        raise ValueError("PDL must be strictly inside (0, 1)")
    return -horizon_seconds / math.log1p(-pdl)


def per_pool_to_system_pdl(pool_pdl: float, n_pools: int) -> float:
    """System PDL when any of ``n_pools`` independent pools losing data
    loses data for the system: ``1 - (1 - pdl)^n`` computed stably."""
    if not 0.0 <= pool_pdl <= 1.0:
        raise ValueError("pool_pdl must be in [0, 1]")
    if pool_pdl <= 0.0:
        return 0.0
    if pool_pdl >= 1.0:
        return 1.0
    return float(-math.expm1(n_pools * math.log1p(-pool_pdl)))
