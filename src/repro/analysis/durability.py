"""System durability models: MLEC x repair methods, SLEC, and LRC.

This module produces the paper's durability numbers-in-nines:

* Figure 10 -- MLEC durability under R_ALL/R_FCO/R_HYB/R_MIN, by iterating
  the Markov model: a local pool becomes a super-disk whose "failure" is a
  catastrophic pool event (rate from
  :class:`repro.analysis.markov.PoolReliabilityChain`) and whose "repair"
  is the chosen method's network-stage time.  Data loss needs ``p_n+1``
  concurrently-catastrophic pools that actually share a network stripe --
  the sharing probability is where chunk-aware repair methods (anything but
  R_ALL) and declustered placements pick up their extra nines.

* Figures 12/15 -- SLEC and LRC one-year durability from the same
  damage-class chain applied to their single-level pools.

All results are 1-year durabilities expressed in nines.
"""

from __future__ import annotations

import numpy as np

from ..core.config import BandwidthConfig, FailureConfig
from ..core.scheme import LRCScheme, MLECScheme, SLECScheme
from ..core.types import Level, Placement, RepairMethod
from ..repair.bandwidth import BandwidthModel
from .combinatorics import any_of_many
from .markov import PoolReliabilityChain, birth_death_mttdl, local_pool_reliability_chain
from .nines import mttdl_to_pdl, pdl_to_nines, per_pool_to_system_pdl

__all__ = [
    "mlec_durability_nines",
    "slec_durability_nines",
    "lrc_durability_nines",
]


# ----------------------------------------------------------------------
# MLEC (Figure 10)
# ----------------------------------------------------------------------
def _network_exposure_time(
    scheme: MLECScheme,
    method: RepairMethod,
    chain: PoolReliabilityChain,
    bw: BandwidthConfig,
    failures: FailureConfig,
) -> float:
    """Seconds a catastrophic pool stays catastrophic under a method.

    R_ALL/R_FCO must push whole disks' worth of data through the network
    before the pool exits the catastrophic state; R_HYB/R_MIN only need the
    lost local stripes (a tiny set for declustered pools), after which the
    pool is locally recoverable again.
    """
    net_rate = BandwidthModel(scheme, bw).network_repair_rate().rate
    p_l = scheme.params.p_l
    if method is RepairMethod.R_ALL:
        rebuild = scheme.local_pool_capacity_bytes
    elif method is RepairMethod.R_FCO:
        rebuild = (p_l + 1) * scheme.dc.disk_capacity_bytes
    else:
        lost_stripes = chain.lost_stripe_fraction() * chain.stripes_in_pool
        per_stripe = (p_l + 1) if method is RepairMethod.R_HYB else 1
        rebuild = lost_stripes * per_stripe * scheme.dc.chunk_size_bytes
    return failures.detection_time + rebuild / net_rate


def _stripe_share_probability(
    scheme: MLECScheme, method: RepairMethod, rho: float
) -> float:
    """P[>= 1 network stripe actually lost | p_n+1 catastrophic pools].

    R_ALL treats every local stripe of a catastrophic pool as lost
    (``rho = 1`` effectively); chunk-aware methods know only a ``rho``
    fraction is lost.  Network-Dp additionally needs the pools to be
    co-striped at all (the alignment factor), which is what makes D/D
    competitive after repair optimization (§4.2.3 Finding 1).
    """
    s = scheme
    threshold = s.params.p_n + 1
    eff_rho = 1.0 if method is RepairMethod.R_ALL else rho
    joint = eff_rho**threshold

    if s.network_placement is Placement.CLUSTERED:
        # All stripes of a network pool span all its member pools.
        stripes = s.local_stripes_per_pool()
        return any_of_many(joint, stripes)

    # Declustered: alignment probability that one network stripe's rows use
    # p_n+1 specific pools (in distinct racks).
    r, n_n = s.dc.racks, s.params.n_n
    align = 1.0
    for j in range(threshold):
        align *= (n_n - j) / (r - j)
    align /= s.local_pools_per_rack**threshold
    return any_of_many(align * joint, s.network_stripes_total())


def mlec_durability_nines(
    scheme: MLECScheme,
    method: RepairMethod,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
) -> float:
    """One-year durability (nines) of an MLEC scheme under a repair method.

    The network-level birth-death chain counts concurrently-catastrophic
    local pools among the pools that can share network stripes: the
    ``k_n+p_n`` members of one network pool for C/x placements, every local
    pool in the system for D/x placements.
    """
    bw = bw if bw is not None else BandwidthConfig()
    failures = failures if failures is not None else FailureConfig()
    s = scheme

    chain = local_pool_reliability_chain(s, bw, failures)
    pool_rate = 1.0 / chain.mttf()  # catastrophic events / pool-second
    tau = _network_exposure_time(s, method, chain, bw, failures)
    q = _stripe_share_probability(s, method, chain.lost_stripe_fraction())

    threshold = s.params.p_n + 1
    if s.network_placement is Placement.CLUSTERED:
        members = s.params.n_n
        n_chains = s.total_local_pools // members
    else:
        members = s.total_local_pools
        n_chains = 1

    up = np.array([(members - i) * pool_rate for i in range(threshold)])
    down = np.array([i / tau for i in range(threshold)])
    if q <= 0.0:
        return pdl_to_nines(0.0)
    mttdl = birth_death_mttdl(up, down, absorb_fraction=q)
    pdl = per_pool_to_system_pdl(mttdl_to_pdl(mttdl), n_chains)
    return pdl_to_nines(pdl)


# ----------------------------------------------------------------------
# SLEC (Figure 12)
# ----------------------------------------------------------------------
def slec_durability_nines(
    scheme: SLECScheme,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
) -> float:
    """One-year durability (nines) of a SLEC placement.

    Pool geometry and repair rates per placement:

    * Loc-Cp: ``k+p``-disk pools, spare-disk write-bound repair;
    * Loc-Dp: enclosure pools with declustered priority repair;
    * Net-Cp: ``k+p`` disks across a rack group, spare-disk write-bound;
    * Net-Dp: one system-wide declustered pool, network-wide repair.
    """
    bw = bw if bw is not None else BandwidthConfig()
    failures = failures if failures is not None else FailureConfig()
    s = scheme
    k, p, n = s.params.k, s.params.p, s.params.n
    dc = s.dc
    d_bw = bw.disk_repair_bandwidth

    if s.level is Level.LOCAL:
        if s.placement is Placement.CLUSTERED:
            pool_disks, clustered = n, True
            repair_rate = min((n - 1) * d_bw / k, d_bw)
            n_pools = dc.total_disks // n
        else:
            pool_disks, clustered = dc.disks_per_enclosure, False
            repair_rate = (pool_disks - 1) * d_bw / (k + 1)
            n_pools = dc.racks * dc.enclosures_per_rack
    else:
        r_bw = bw.rack_repair_bandwidth
        if s.placement is Placement.CLUSTERED:
            pool_disks, clustered = n, True
            # Reads flow from the group's other racks; the rebuilt stream
            # lands on one spare disk.
            repair_rate = min((n - 1) * r_bw / k, d_bw)
            n_pools = dc.total_disks // n
        else:
            pool_disks, clustered = dc.total_disks, False
            repair_rate = dc.racks * r_bw / (k + 1)
            n_pools = 1

    chain = PoolReliabilityChain(
        pool_disks=pool_disks,
        stripe_width=n,
        parities=p,
        clustered=clustered,
        disk_capacity_bytes=dc.disk_capacity_bytes,
        chunk_size_bytes=dc.chunk_size_bytes,
        failure_rate=failures.failure_rate_per_second,
        detection_time=failures.detection_time,
        repair_rate=repair_rate,
    )
    pdl = per_pool_to_system_pdl(mttdl_to_pdl(chain.mttf()), n_pools)
    return pdl_to_nines(pdl)


# ----------------------------------------------------------------------
# LRC (Figure 15)
# ----------------------------------------------------------------------
def lrc_durability_nines(
    scheme: LRCScheme,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
) -> float:
    """One-year durability (nines) of a declustered LRC.

    Modelled as one system-wide declustered pool: the damage-class chain
    runs to ``r+2`` concurrent failures per stripe (every pattern of size
    ``<= r+1`` is recoverable for a maximally recoverable LRC), and the
    absorbing transition is scaled by the fraction of ``r+2``-size patterns
    that are actually unrecoverable (peeling criterion) -- most are not,
    because the failures must crowd into one local group.
    """
    bw = bw if bw is not None else BandwidthConfig()
    failures = failures if failures is not None else FailureConfig()
    s = scheme
    params = s.params
    dc = s.dc

    # Fraction of (r+2)-subsets of stripe positions that are unrecoverable.
    from ..sim.burst import LRCBurstEvaluator

    u = LRCBurstEvaluator(s)._unrecoverable_fraction_by_size()
    threshold = params.r + 2
    if threshold >= len(u):
        threshold = len(u) - 1
    absorb = float(u[threshold])
    if absorb <= 0.0:
        return pdl_to_nines(0.0)

    # Single-failure repairs read the local group; deeper damage classes
    # fall back to global decode (k reads per rebuilt chunk).
    r_bw = bw.rack_repair_bandwidth
    rate_local = dc.racks * r_bw / (params.group_size + 1)
    rate_global = dc.racks * r_bw / (params.k + 1)

    chain = PoolReliabilityChain(
        pool_disks=dc.total_disks,
        stripe_width=params.n,
        parities=threshold - 1,
        clustered=False,
        disk_capacity_bytes=dc.disk_capacity_bytes,
        chunk_size_bytes=dc.chunk_size_bytes,
        failure_rate=failures.failure_rate_per_second,
        detection_time=failures.detection_time,
        repair_rate=rate_global,
    )
    up, down = chain.rates()
    # Demoting the single-failure class uses cheap local-group repair.
    light = PoolReliabilityChain(
        **{**chain.__dict__, "repair_rate": rate_local}
    )
    down[1] = 1.0 / light.demote_time(1)
    q = chain.absorb_probability() * absorb
    if q <= 0.0:
        return pdl_to_nines(0.0)
    mttdl = birth_death_mttdl(up, down, absorb_fraction=q)
    return pdl_to_nines(mttdl_to_pdl(mttdl))
