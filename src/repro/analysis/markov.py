"""Markov-chain reliability models (paper §3 "Mathematical model", §4.1.3).

Two building blocks:

* :func:`birth_death_mttdl` -- mean time to absorption of a birth-death
  chain, the classical storage-reliability tool (references [37-40] of the
  paper).

* :class:`PoolReliabilityChain` -- a damage-class chain for one pool that
  captures *priority reconstruction*: in a declustered pool with ``i``
  concurrently failed disks, only the (few) stripes with ``i`` failed
  chunks are critical; they are repaired first, so the pool leaves the
  critical state after rebuilding one chunk of each such stripe, not after
  a full disk rebuild.  For clustered pools every stripe spans every disk,
  the "class" is the whole pool, and the chain reduces to the textbook
  RAID model.  This asymmetry is exactly why the paper's Figure 7 finds
  local-Dp pools ~100x less likely to go catastrophic than local-Cp pools
  despite having more disks.

The MLEC network level then iterates the model, treating a local pool as a
super-disk (the paper's §3: "iteratively apply the model ... by treating a
local pool like a disk") -- see :mod:`repro.analysis.durability`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.arrays import AnyArray
from ..core.config import BandwidthConfig, FailureConfig, YEAR
from ..core.scheme import MLECScheme
from ..core.types import Placement, Seconds
from ..repair.bandwidth import BandwidthModel

__all__ = [
    "birth_death_mttdl",
    "PoolReliabilityChain",
    "local_pool_catastrophic_rate",
    "system_catastrophic_probability",
]


def birth_death_mttdl(
    up_rates: AnyArray,
    down_rates: AnyArray,
    absorb_fraction: float = 1.0,
) -> float:
    """Mean time to absorption of a birth-death chain started at state 0.

    States ``0..T-1`` are transient; the up-transition from state ``T-1``
    absorbs (data loss).  ``up_rates[i]`` / ``down_rates[i]`` are the rates
    out of state ``i`` (``down_rates[0]`` is ignored).

    ``absorb_fraction`` scales the final up-transition: with probability
    ``1 - absorb_fraction`` the event that would absorb is harmless (e.g.
    ``p_n+1`` concurrent catastrophic pools that do not actually share a
    network stripe, §4.2.3 Finding 1) and the chain remains in the top
    state instead.

    Returns seconds.
    """
    up = np.asarray(up_rates, dtype=float)
    down = np.asarray(down_rates, dtype=float)
    if up.shape != down.shape or up.ndim != 1 or len(up) == 0:
        raise ValueError("up_rates and down_rates must be equal-length 1-D")
    if np.any(up < 0) or np.any(down < 0):
        raise ValueError("rates must be non-negative")
    if not 0 < absorb_fraction <= 1:
        raise ValueError("absorb_fraction must be in (0, 1]")
    t = len(up)
    up = up.copy()
    # The (1 - absorb_fraction) share of the top transition is harmless (a
    # self-loop back to the top state), so only the absorbing share counts.
    up[-1] *= absorb_fraction
    if np.any(up <= 0):
        raise ValueError("up rates must be positive for absorption")

    # Closed-form first-passage recursion, numerically stable across the
    # ~1e20 rate ratios of storage chains (a naive linear solve is not):
    # h_i (expected time from state i to i+1) satisfies
    #   h_0 = 1/up_0,   h_i = 1/up_i + (down_i/up_i) * h_{i-1},
    # and MTTDL = sum_i h_i.  Every term is positive.
    h = 1.0 / up[0]
    total_time = h
    for i in range(1, t):
        h = 1.0 / up[i] + (down[i] / up[i]) * h
        total_time += h
    return float(total_time)


@dataclasses.dataclass(frozen=True)
class PoolReliabilityChain:
    """Damage-class reliability chain for one (local) pool.

    Parameters
    ----------
    pool_disks:
        Devices in the pool.
    stripe_width:
        Chunks per stripe (``k+p``).
    parities:
        ``p``: the pool is catastrophic when a stripe reaches ``p+1``
        failed chunks.
    clustered:
        Clustered pools have every stripe spanning every device.
    disk_capacity_bytes / chunk_size_bytes:
        Geometry for class sizes and repair workloads.
    failure_rate:
        Per-device failure rate, per second.
    detection_time:
        Seconds from failure to repair start (each repair stage pays it).
    repair_rate:
        Rebuild bytes/second available within the pool (from
        :class:`repro.repair.bandwidth.BandwidthModel`).
    """

    pool_disks: int
    stripe_width: int
    parities: int
    clustered: bool
    disk_capacity_bytes: float
    chunk_size_bytes: float
    failure_rate: float
    detection_time: Seconds
    repair_rate: float

    @property
    def stripes_in_pool(self) -> float:
        chunks = self.pool_disks * self.disk_capacity_bytes / self.chunk_size_bytes
        return chunks / self.stripe_width

    def class_size(self, damage: int) -> float:
        """Expected stripes with ``damage`` failed chunks on ``damage``
        specific failed devices (the priority-repair workload)."""
        if damage <= 0:
            return self.stripes_in_pool
        if self.clustered:
            return self.stripes_in_pool
        frac = 1.0
        for j in range(damage):
            frac *= (self.stripe_width - j) / (self.pool_disks - j)
        return self.stripes_in_pool * frac

    def demote_time(self, damage: int) -> float:
        """Seconds to repair one chunk of every damage-``damage`` stripe,
        dropping the pool's critical class to ``damage - 1``."""
        chunks = self.class_size(damage)
        return self.detection_time + chunks * self.chunk_size_bytes / self.repair_rate

    def rates(self) -> tuple[AnyArray, AnyArray]:
        """(up, down) rates for states 0..p (absorption at p+1)."""
        t = self.parities + 1
        up = np.array(
            [(self.pool_disks - i) * self.failure_rate for i in range(t)]
        )
        down = np.zeros(t)
        for i in range(1, t):
            down[i] = 1.0 / self.demote_time(i)
        return up, down

    def absorb_probability(self) -> float:
        """P[the ``p+1``-th concurrent failure actually loses a stripe].

        The failure is only fatal if the new device intersects a
        still-unrepaired damage-``p`` stripe.  Clustered pools: certain
        (every stripe spans every device).  Declustered pools: the expected
        number of critical stripes hit is ``remnant * (width-p)/(disks-p)``
        -- enormous for enclosure-size pools (so effectively 1) but far
        below 1 for system-wide pools, where it becomes the
        stripe-alignment factor that protects network-declustered layouts.
        """
        if self.clustered:
            return 1.0
        p = self.parities
        remnant = 0.5 * self.class_size(p)
        hits = remnant * (self.stripe_width - p) / (self.pool_disks - p)
        return float(min(1.0, hits))

    def mttf(self, extra_absorb_fraction: float = 1.0) -> float:
        """Mean time to a catastrophic (locally-unrecoverable) state, s.

        ``extra_absorb_fraction`` multiplies the structural absorption
        probability -- used by the LRC model, where a fatal-size pattern
        must additionally be unrecoverable by the code's locality structure.
        """
        up, down = self.rates()
        q = self.absorb_probability() * extra_absorb_fraction
        return birth_death_mttdl(up, down, absorb_fraction=q)

    def catastrophic_rate_per_year(self) -> float:
        """Long-run catastrophic events per pool-year (1 / MTTF)."""
        return YEAR / self.mttf()

    def lost_stripe_fraction(self) -> float:
        """Expected fraction of the pool's stripes lost at a catastrophe.

        When the ``p+1``-th failure arrives, the lost stripes are the
        not-yet-demoted damage-``p`` stripes that include the new device.
        With repair progress uniform over the window, about half the class
        remains, and a fraction ``(width-p)/(pool-p)`` of it includes the
        new device.  Clustered pools follow the same expression (about half
        the pool's stripes still carry ``p+1`` unrepaired chunks).
        """
        remnant = 0.5 * self.class_size(self.parities)
        if self.clustered:
            hit = remnant
        else:
            hit = remnant * (self.stripe_width - self.parities) / (
                self.pool_disks - self.parities
            )
        return float(hit / self.stripes_in_pool)


def local_pool_reliability_chain(
    scheme: MLECScheme,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
) -> PoolReliabilityChain:
    """Build the local-pool chain for an MLEC scheme with paper defaults."""
    bw = bw if bw is not None else BandwidthConfig()
    failures = failures if failures is not None else FailureConfig()
    model = BandwidthModel(scheme, bw)
    return PoolReliabilityChain(
        pool_disks=scheme.local_pool_disks,
        stripe_width=scheme.params.n_l,
        parities=scheme.params.p_l,
        clustered=scheme.local_placement is Placement.CLUSTERED,
        disk_capacity_bytes=scheme.dc.disk_capacity_bytes,
        chunk_size_bytes=scheme.dc.chunk_size_bytes,
        failure_rate=failures.failure_rate_per_second,
        detection_time=failures.detection_time,
        repair_rate=model.single_disk_repair_rate().rate,
    )


def local_pool_catastrophic_rate(
    scheme: MLECScheme,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
) -> float:
    """Catastrophic events per pool-year (Figure 7's per-pool quantity)."""
    return local_pool_reliability_chain(scheme, bw, failures).catastrophic_rate_per_year()


def system_catastrophic_probability(
    scheme: MLECScheme,
    bw: BandwidthConfig | None = None,
    failures: FailureConfig | None = None,
) -> float:
    """P[>= 1 catastrophic local pool in the system within a year] (Fig. 7)."""
    rate = local_pool_catastrophic_rate(scheme, bw, failures)
    total = rate * scheme.total_local_pools
    return float(-np.expm1(-total))
