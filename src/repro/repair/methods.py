"""Catastrophic-pool repair methods: traffic and time models (§2.4, §4.2).

This module quantifies the four repair methods (R_ALL, R_FCO, R_HYB, R_MIN)
for a catastrophic local pool failure -- the paper's Figures 8 (cross-rack
traffic) and 9 (network vs local repair time), and the catastrophic half of
Figure 6 / Table 2.

Traffic accounting: every chunk rebuilt *via the network* costs
``k_n`` cross-rack chunk reads plus one cross-rack write, so

``cross_rack_bytes = network_rebuilt_bytes * (k_n + 1)``.

Sanity anchors against the paper (default (10+2)/(17+3) setup, 20 TB disks,
4 failed disks):

* R_ALL on */c rebuilds the 400 TB pool -> 400 * 11 = 4,400 TB
* R_ALL on */d rebuilds the 2,400 TB pool -> 26,400 TB
* R_FCO rebuilds the 80 TB of failed chunks -> 880 TB
* R_HYB on */d rebuilds only lost-stripe chunks -> ~3.1 TB
* R_MIN quarters R_HYB on clustered pools (1 of 4 chunks per stripe)
"""

from __future__ import annotations

import dataclasses

from ..core.config import BandwidthConfig
from ..core.failure_modes import LocalPoolDamage
from ..core.scheme import MLECScheme
from ..core.types import RepairMethod, Seconds
from .bandwidth import BandwidthModel

__all__ = ["RepairStageTimes", "CatastrophicRepairModel"]


@dataclasses.dataclass(frozen=True)
class RepairStageTimes:
    """Durations of the two repair stages, in seconds (Figure 9's bars)."""

    network_time: float
    local_time: float

    @property
    def total(self) -> float:
        return self.network_time + self.local_time


class CatastrophicRepairModel:
    """Traffic/time model for repairing one catastrophic local pool.

    Parameters
    ----------
    scheme:
        The MLEC scheme under repair.
    bw:
        Bandwidth configuration (paper defaults if omitted).
    failed_disks:
        Simultaneously failed disks in the pool; defaults to the paper's
        fault-injection choice of ``p_l + 1``.
    """

    def __init__(
        self,
        scheme: MLECScheme,
        bw: BandwidthConfig | None = None,
        failed_disks: int | None = None,
    ) -> None:
        self.scheme = scheme
        self.bandwidth = BandwidthModel(scheme, bw)
        self.failed_disks = (
            failed_disks if failed_disks is not None else scheme.params.p_l + 1
        )
        if self.failed_disks <= scheme.params.p_l:
            raise ValueError(
                f"{self.failed_disks} failed disks is not catastrophic for "
                f"p_l={scheme.params.p_l}"
            )
        self.damage = LocalPoolDamage(
            pool_disks=scheme.local_pool_disks,
            failed_disks=self.failed_disks,
            k_l=scheme.params.k_l,
            p_l=scheme.params.p_l,
            chunks_per_disk=scheme.dc.chunks_per_disk,
        )

    # ------------------------------------------------------------------
    # Byte accounting
    # ------------------------------------------------------------------
    def network_rebuilt_bytes(self, method: RepairMethod) -> float:
        """Bytes rebuilt via network-level parity."""
        chunks = self.damage.network_repair_chunks(method)
        return chunks * self.scheme.dc.chunk_size_bytes

    def local_rebuilt_bytes(self, method: RepairMethod) -> float:
        """Bytes rebuilt by the in-pool local stage."""
        chunks = self.damage.local_repair_chunks(method)
        return chunks * self.scheme.dc.chunk_size_bytes

    def cross_rack_traffic_bytes(self, method: RepairMethod) -> float:
        """Total cross-rack bytes moved (Figure 8's quantity)."""
        return self.network_rebuilt_bytes(method) * (self.scheme.params.k_n + 1)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def stage_times(self, method: RepairMethod) -> RepairStageTimes:
        """Network and local stage durations (Figure 9).

        The network stage runs at the scheme's network repair rate.  The
        local stage (R_HYB / R_MIN only) runs at the pool's local rate; for
        clustered pools the network stage restores ``failures - p_l`` chunk
        rows of every stripe, so the local stage rebuilds the remaining
        ``p_l`` rows with the matching read amplification.
        """
        net_bytes = self.network_rebuilt_bytes(method)
        net_time = net_bytes / self.bandwidth.network_repair_rate().rate

        local_bytes = self.local_rebuilt_bytes(method)
        if local_bytes <= 0:
            return RepairStageTimes(network_time=net_time, local_time=0.0)

        disk_cap = self.scheme.dc.disk_capacity_bytes
        rebuilt_disk_equiv = net_bytes / disk_cap
        if self.damage.is_clustered:
            failures_per_stripe: float | None = None  # default: remaining disks
        else:
            # Declustered pools: almost all affected stripes carry a single
            # failed chunk once the lost stripes are handled.
            failures_per_stripe = 1.0
        rate = self.bandwidth.local_stage_rate(
            self.failed_disks,
            rebuilt_disks=rebuilt_disk_equiv,
            failures_per_stripe=failures_per_stripe,
        ).rate
        return RepairStageTimes(network_time=net_time, local_time=local_bytes / rate)

    def total_repair_time(
        self, method: RepairMethod, detection_time: Seconds = Seconds(0.0)
    ) -> Seconds:
        """End-to-end catastrophic repair time in seconds."""
        return Seconds(detection_time + self.stage_times(method).total)

    def exit_catastrophic_time(
        self, method: RepairMethod, detection_time: Seconds = Seconds(0.0)
    ) -> Seconds:
        """Seconds until the pool is no longer catastrophic.

        For R_HYB/R_MIN this is the *network stage* alone: once the lost
        stripes are (partially) rebuilt the pool is locally recoverable and
        no longer exposes the network stripe to data loss -- the durability
        advantage of R_MIN the paper highlights in §4.2.2 Finding 3.
        """
        return Seconds(detection_time + self.stage_times(method).network_time)

    # ------------------------------------------------------------------
    def summary(self, method: RepairMethod) -> dict[str, float]:
        """One row of the Figures 8+9 tables, in paper-friendly units."""
        times = self.stage_times(method)
        return {
            "cross_rack_traffic_TB": self.cross_rack_traffic_bytes(method) / 1e12,
            "network_time_h": times.network_time / 3600.0,
            "local_time_h": times.local_time / 3600.0,
            "total_time_h": times.total / 3600.0,
        }
