"""Repair methods, bandwidth models, planners, and traffic comparisons."""

from .bandwidth import BandwidthModel, RateBreakdown
from .executor import RepairExecution, RepairExecutor
from .methods import CatastrophicRepairModel, RepairStageTimes
from .planner import RepairPlan, plan_repair
from .traffic_comparison import (
    TrafficRate,
    lrc_annual_cross_rack_traffic,
    mlec_annual_cross_rack_traffic,
    slec_annual_cross_rack_traffic,
)

__all__ = [
    "BandwidthModel",
    "RateBreakdown",
    "RepairExecution",
    "RepairExecutor",
    "CatastrophicRepairModel",
    "RepairStageTimes",
    "RepairPlan",
    "plan_repair",
    "TrafficRate",
    "lrc_annual_cross_rack_traffic",
    "mlec_annual_cross_rack_traffic",
    "slec_annual_cross_rack_traffic",
]
