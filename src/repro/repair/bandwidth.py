"""Available-repair-bandwidth model (paper §3 setup, Table 2, §4.1.2).

A repair that rebuilds ``B`` bytes is modelled as a flow with per-rebuilt-
byte *amplification factors*: ``r`` bytes must be read and ``w`` bytes
written for every byte rebuilt.  Each resource class (disks on the read
side, disks on the write side, cross-rack network links) contributes a
budget, and the achieved rebuild rate is the minimum over the binding
constraints:

``rate = min(read_budget / r, write_budget / w, net_budget / (r_net + w_net))``

The closed forms below reproduce the paper's Table 2 exactly with the
default setup (40 MB/s per-disk and 250 MB/s per-rack repair caps):

* single disk, local-Cp:  min(19*40/17, 1*40)            = **40 MB/s**
* single disk, local-Dp:  119*40 / (17+1)                = **264 MB/s**
* catastrophic pool, C/*: min(11*250/10, 1*250)          = **250 MB/s**
* catastrophic pool, D/*: 60*250 / (10+1)                = **1363 MB/s**

The asymmetry between the Cp and Dp forms is the paper's central point:
clustered repair pins reads and writes to dedicated devices (a spare disk, a
replacement pool's rack), while declustered repair pools every participant's
bandwidth for reads *and* writes.
"""

from __future__ import annotations

import dataclasses

from ..core.config import BandwidthConfig
from ..core.scheme import MLECScheme
from ..core.types import Placement, Seconds

__all__ = ["RateBreakdown", "BandwidthModel"]


@dataclasses.dataclass(frozen=True)
class RateBreakdown:
    """A repair rate with its constraint analysis.

    Attributes
    ----------
    rate:
        Achieved rebuild rate, bytes of rebuilt data per second.
    bottleneck:
        Which constraint binds: ``"read"``, ``"write"`` or ``"network"``.
    constraints:
        All candidate rates, keyed by constraint name (``inf`` when a
        resource class does not apply).
    """

    rate: float
    bottleneck: str
    constraints: dict[str, float]

    @staticmethod
    def from_constraints(**constraints: float) -> "RateBreakdown":
        finite = {k: v for k, v in constraints.items() if v != float("inf")}
        if not finite:
            raise ValueError("at least one finite constraint required")
        bottleneck = min(finite, key=finite.get)  # type: ignore[arg-type]
        return RateBreakdown(
            rate=finite[bottleneck], bottleneck=bottleneck, constraints=constraints
        )


class BandwidthModel:
    """Repair-rate calculator for an MLEC scheme (paper Table 2 / Fig. 6/9).

    Parameters
    ----------
    scheme:
        The MLEC scheme (placements decide who participates in a repair).
    bw:
        Raw bandwidths and the repair-traffic cap.
    """

    def __init__(self, scheme: MLECScheme, bw: BandwidthConfig | None = None) -> None:
        self.scheme = scheme
        self.bw = bw if bw is not None else BandwidthConfig()

    # ------------------------------------------------------------------
    # Local (single-disk) repair
    # ------------------------------------------------------------------
    def single_disk_repair_rate(self) -> RateBreakdown:
        """Rebuild rate for one failed disk repaired inside its local pool.

        Clustered: ``k_l`` streams read from the pool's survivors, the
        rebuilt stream lands on one dedicated spare disk.

        Declustered: every surviving pool disk both serves reads and
        absorbs writes to distributed spare space, so the pool's aggregate
        disk bandwidth is shared by ``k_l`` reads + 1 write per byte.
        """
        s = self.scheme
        d = self.bw.disk_repair_bandwidth
        k_l = s.params.k_l
        if s.local_placement is Placement.CLUSTERED:
            survivors = s.local_pool_disks - 1
            return RateBreakdown.from_constraints(
                read=survivors * d / k_l,
                write=1 * d,
                network=float("inf"),
            )
        survivors = s.local_pool_disks - 1
        return RateBreakdown.from_constraints(
            read_write_shared=survivors * d / (k_l + 1),
        )

    def single_disk_repair_time(
        self, detection_time: Seconds = Seconds(0.0)
    ) -> Seconds:
        """Seconds to repair one failed disk (optionally + detection lag)."""
        return Seconds(
            detection_time
            + self.scheme.dc.disk_capacity_bytes / self.single_disk_repair_rate().rate
        )

    # ------------------------------------------------------------------
    # Network-level repair of a catastrophic local pool
    # ------------------------------------------------------------------
    def network_repair_rate(self) -> RateBreakdown:
        """Rebuild rate of the *network stage* of a catastrophic repair.

        Network-Cp: the ``k_n`` read streams come from the other racks of
        the stripe's rack group, and everything rebuilt funnels into the
        failed pool's rack (its ingress is the classic bottleneck).

        Network-Dp: all racks participate in reads and absorb writes to
        spare space, so the system-wide cross-rack budget is shared by
        ``k_n`` reads + 1 write per rebuilt byte.
        """
        s = self.scheme
        r = self.bw.rack_repair_bandwidth
        k_n = s.params.k_n
        if s.network_placement is Placement.CLUSTERED:
            source_racks = s.network_group_racks - 1
            return RateBreakdown.from_constraints(
                read=source_racks * r / k_n,
                write=1 * r,
                network=float("inf"),
            )
        return RateBreakdown.from_constraints(
            read_write_shared=s.dc.racks * r / (k_n + 1),
        )

    # ------------------------------------------------------------------
    # Local stage of hybrid repairs (R_HYB / R_MIN second phase)
    # ------------------------------------------------------------------
    def local_stage_rate(
        self,
        failed_disks: int,
        rebuilt_disks: float = 0.0,
        failures_per_stripe: float | None = None,
    ) -> RateBreakdown:
        """Rebuild rate of the in-pool stage that follows a network stage.

        Rebuilding a stripe with ``f`` failed chunks reads ``k_l`` chunks
        and writes ``f``, so the read amplification per rebuilt byte is
        ``k_l / f``.

        Parameters
        ----------
        failed_disks:
            Disks that failed in the pool.
        rebuilt_disks:
            Disk-equivalents already restored by the network stage (their
            bandwidth is available again as read sources / write targets).
        failures_per_stripe:
            Mean failed chunks per affected stripe at this stage.  Defaults
            to the remaining disk count for clustered pools (every stripe
            spans every disk) and to 1 for declustered pools (most affected
            stripes have a single failed chunk when the pool is much wider
            than the stripe).
        """
        s = self.scheme
        d = self.bw.disk_repair_bandwidth
        k_l = s.params.k_l
        remaining = failed_disks - rebuilt_disks
        if remaining <= 0:
            raise ValueError("nothing left to repair locally")
        clustered = s.local_placement is Placement.CLUSTERED
        if failures_per_stripe is None:
            failures_per_stripe = float(remaining) if clustered else 1.0
        read_amp = k_l / failures_per_stripe
        survivors = s.local_pool_disks - failed_disks + rebuilt_disks
        if clustered:
            return RateBreakdown.from_constraints(
                read=survivors * d / read_amp,
                write=remaining * d,
                network=float("inf"),
            )
        return RateBreakdown.from_constraints(
            read_write_shared=survivors * d / (read_amp + 1),
        )
