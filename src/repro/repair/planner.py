"""Stripe-level repair planning.

While :mod:`repro.repair.methods` works with *expected* chunk counts (fast,
closed-form), the planner operates on a concrete damage sample: an integer
array with the failed-chunk count of every stripe in a pool.  The simulator
and the examples use it to decide, stripe by stripe, which chunks cross the
network and which repair locally -- and the test suite replays plans against
the byte-level :class:`repro.codes.mlec_codec.MLECCodec` to prove each
method's staging actually recovers the data.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.arrays import AnyArray
from ..core.types import RepairMethod
from ..obs import TraceRecorder

__all__ = ["RepairPlan", "plan_repair"]


@dataclasses.dataclass(frozen=True)
class RepairPlan:
    """Per-stripe repair decisions for one damaged pool.

    Attributes
    ----------
    method:
        The repair method that produced the plan.
    damage:
        Failed chunks per stripe (input, length = stripes in the pool).
    network_chunks:
        Chunks of each stripe rebuilt via network parity (stage 1).
    local_chunks:
        Chunks of each stripe rebuilt locally afterwards (stage 2).
    extra_chunks:
        Healthy chunks rewritten anyway (non-zero only for R_ALL, which
        rebuilds the entire pool without knowing what is actually lost).
    """

    method: RepairMethod
    damage: AnyArray
    network_chunks: AnyArray
    local_chunks: AnyArray
    extra_chunks: AnyArray

    @property
    def total_network_chunks(self) -> int:
        """All chunks moved through network repair, incl. R_ALL's extras."""
        return int(self.network_chunks.sum() + self.extra_chunks.sum())

    @property
    def total_local_chunks(self) -> int:
        return int(self.local_chunks.sum())

    def cross_rack_chunk_transfers(self, k_n: int) -> int:
        """Cross-rack chunk movements: k_n reads + 1 write per rebuilt chunk."""
        return self.total_network_chunks * (k_n + 1)

    def validate(self, p_l: int) -> None:
        """Check the plan's internal invariants; raises on violation.

        * stage 1 leaves every stripe locally recoverable
          (``damage - network_chunks <= p_l`` wherever damage > 0);
        * stage totals cover exactly the failed chunks (plus R_ALL extras).
        """
        residual = self.damage - self.network_chunks
        if np.any(residual > p_l):
            raise AssertionError("stage 1 leaves stripes locally unrecoverable")
        if np.any(self.network_chunks + self.local_chunks != self.damage):
            raise AssertionError("stages do not cover the failed chunks")
        if np.any(self.network_chunks < 0) or np.any(self.local_chunks < 0):
            raise AssertionError("negative chunk counts in plan")


def plan_repair(
    method: RepairMethod,
    damage: AnyArray,
    p_l: int,
    stripe_width: int,
    recorder: TraceRecorder | None = None,
    now: float = 0.0,
) -> RepairPlan:
    """Build a :class:`RepairPlan` for a damaged pool.

    Parameters
    ----------
    method:
        One of the four repair methods.
    damage:
        Failed chunks per stripe (one entry per stripe in the pool).
    p_l:
        Local parity count -- stripes with more failures than this are lost.
    stripe_width:
        ``k_l + p_l``; needed to size R_ALL's whole-pool rebuild.
    recorder, now:
        Optional :class:`repro.obs.TraceRecorder` (plus the simulation
        time to stamp) -- emits one ``repair.plan`` record per plan.

    Notes
    -----
    Stage semantics follow §2.4:

    * R_ALL: *everything* is rebuilt via the network, failed or not.
    * R_FCO: every failed chunk is rebuilt via the network.
    * R_HYB: failed chunks of lost stripes go via the network; the rest
      repair locally.
    * R_MIN: each lost stripe gets exactly ``damage - p_l`` chunks from the
      network (just enough to become locally recoverable); all remaining
      failed chunks repair locally.
    """
    damage = np.asarray(damage, dtype=np.int64)
    if damage.ndim != 1:
        raise ValueError("damage must be a 1-D per-stripe array")
    if np.any(damage < 0) or np.any(damage > stripe_width):
        raise ValueError("damage entries must be in [0, stripe_width]")

    zeros = np.zeros_like(damage)
    lost = damage > p_l

    if method is RepairMethod.R_ALL:
        network = damage.copy()
        local = zeros.copy()
        extra = stripe_width - damage
    elif method is RepairMethod.R_FCO:
        network = damage.copy()
        local = zeros.copy()
        extra = zeros.copy()
    elif method is RepairMethod.R_HYB:
        network = np.where(lost, damage, 0)
        local = np.where(lost, 0, damage)
        extra = zeros.copy()
    elif method is RepairMethod.R_MIN:
        network = np.where(lost, damage - p_l, 0)
        local = damage - network
        extra = zeros.copy()
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown repair method {method!r}")

    plan = RepairPlan(
        method=method,
        damage=damage,
        network_chunks=network,
        local_chunks=local,
        extra_chunks=extra,
    )
    plan.validate(p_l)
    if recorder is not None:
        recorder.event(
            now,
            "repair.plan",
            method=method.name,
            stripes=int(damage.size),
            damaged_stripes=int(np.count_nonzero(damage)),
            lost_stripes=int(np.count_nonzero(lost)),
            network_chunks=plan.total_network_chunks,
            local_chunks=plan.total_local_chunks,
            extra_chunks=int(extra.sum()),
        )
    return plan
