"""Byte-level repair execution: run a repair plan against a real stripe.

The planner (:mod:`repro.repair.planner`) decides *which* chunks each
repair method moves; this module actually executes the two stages against
a :class:`repro.codes.mlec_codec.MLECCodec` grid -- the "executing complex
repairs" capability the paper lists for its simulator (§3), at chunk
granularity:

* **Stage 1 (network)**: for each lost local stripe, rebuild the planned
  number of chunks via the network (column) code, reading ``k_n`` chunks
  per rebuild from the sibling local stripes.
* **Stage 2 (local)**: every remaining erasure now sits in a locally
  recoverable stripe and is rebuilt by the row code, reading ``k_l``
  chunks from inside the pool.

The executor accounts every read and write by locality, so its traffic
report is the byte-level ground truth for the closed-form models in
:mod:`repro.repair.methods` (the test suite reconciles the two).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

import numpy as np

from ..core.arrays import AnyArray
from ..codes.mlec_codec import MLECCodec
from ..core.types import RepairMethod
from .planner import RepairPlan, plan_repair

__all__ = ["RepairExecution", "RepairExecutor"]


@dataclasses.dataclass
class RepairExecution:
    """Accounting of one executed repair.

    All counts are in chunks; multiply by the chunk size for bytes.
    """

    method: RepairMethod
    network_chunks_rebuilt: int = 0
    local_chunks_rebuilt: int = 0
    extra_chunks_rewritten: int = 0
    cross_rack_chunk_reads: int = 0
    cross_rack_chunk_writes: int = 0
    local_chunk_reads: int = 0
    local_chunk_writes: int = 0

    @property
    def cross_rack_transfers(self) -> int:
        """Total cross-rack chunk movements (Figure 8's unit)."""
        return self.cross_rack_chunk_reads + self.cross_rack_chunk_writes


class RepairExecutor:
    """Executes repair methods on an MLEC grid, chunk by chunk.

    The grid models one network stripe; one row plays the damaged local
    pool.  Every network rebuild reads ``k_n`` surviving chunks of the
    column (cross-rack) and writes the rebuilt chunk (cross-rack, into the
    damaged pool's rack); every local rebuild reads ``k_l`` chunks within
    the pool.
    """

    def __init__(self, codec: MLECCodec) -> None:
        self.codec = codec

    # ------------------------------------------------------------------
    def execute(
        self,
        grid: AnyArray,
        erasures: Iterable[tuple[int, int]],
        method: RepairMethod,
    ) -> tuple[AnyArray, RepairExecution]:
        """Repair erased cells with the given method's staging.

        Returns the repaired grid and the traffic accounting.  Raises
        ``ValueError`` if the damage exceeds the method's ability (more
        than ``p_n`` rows would need network repair of the same column).
        """
        codec = self.codec
        grid = np.asarray(grid, dtype=np.uint8).copy()
        erased = set(codec._check_erasures(erasures))
        stats = RepairExecution(method=method)

        damage = np.zeros(codec.n_rows, dtype=np.int64)
        for row, _col in erased:
            damage[row] += 1
        plan: RepairPlan = plan_repair(
            method, damage, codec.p_l, codec.n_cols
        )

        # ----- Stage 1: network repairs, column by column. -----
        for row in range(codec.n_rows):
            need = int(plan.network_chunks[row])
            targets = sorted(c for (r, c) in erased if r == row)[:need]
            for col in targets:
                lost_rows = sorted(r for (r, c) in erased if c == col)
                if len(lost_rows) > codec.p_n:
                    raise ValueError(
                        f"column {col} has {len(lost_rows)} erasures, beyond "
                        f"p_n={codec.p_n}: unrecoverable damage"
                    )
                fixed = codec.network_code.decode(grid[:, col, :], lost_rows)
                grid[row, col, :] = fixed[row]
                erased.discard((row, col))
                stats.network_chunks_rebuilt += 1
                stats.cross_rack_chunk_reads += codec.k_n
                stats.cross_rack_chunk_writes += 1

        # R_ALL also rewrites the healthy remainder of the pool row(s): the
        # black-box rebuild cannot skip intact chunks.
        stats.extra_chunks_rewritten = int(plan.extra_chunks[damage > 0].sum())
        if method is RepairMethod.R_ALL:
            rebuilt_rows = np.nonzero(damage > 0)[0]
            for row in rebuilt_rows:
                healthy = codec.n_cols - int(damage[row])
                stats.cross_rack_chunk_reads += healthy * codec.k_n
                stats.cross_rack_chunk_writes += healthy

        # ----- Stage 2: local repairs, row by row. -----
        for row in range(codec.n_rows):
            lost = sorted(c for (r, c) in erased if r == row)
            if not lost:
                continue
            if len(lost) > codec.p_l:
                raise ValueError(
                    f"stage 1 left row {row} with {len(lost)} erasures "
                    f"> p_l={codec.p_l}; plan/method mismatch"
                )
            grid[row] = codec.local_code.decode(grid[row], lost)
            erased -= {(row, c) for c in lost}
            stats.local_chunks_rebuilt += len(lost)
            stats.local_chunk_reads += codec.k_l
            stats.local_chunk_writes += len(lost)

        assert not erased
        return grid, stats
