"""Long-run repair network traffic of MLEC vs SLEC vs LRC (§5.1.4, §5.2.4).

The paper reports these comparisons in prose only ("a (7+3) network SLEC
requires hundreds of TB repair network traffic every day ... MLEC only
requires a few TB every thousand of years").  This module computes the
underlying expected cross-rack traffic rates so the benchmark harness can
print the comparison as a table.

Model: the steady-state disk-failure arrival rate is ``AFR x total_disks``
per year.  Each scheme pays cross-rack traffic per failure according to what
its repair must move across racks:

* network SLEC: every failed disk rebuilds over the network --
  ``(k reads + 1 write) x disk_capacity`` cross-rack bytes per failure;
* LRC-Dp: a failed disk's chunks are (overwhelmingly) single failures in
  their stripes, repaired from the local group --
  ``(k/l reads + 1 write) x disk_capacity`` cross-rack bytes per failure;
* local SLEC: zero cross-rack traffic (and zero rack-failure tolerance);
* MLEC: local repairs are free of network traffic; cross-rack traffic only
  arises for *catastrophic* local pools, whose rate comes from the Markov
  model, multiplied by the chosen repair method's per-event traffic.
"""

from __future__ import annotations

import dataclasses

from ..core.config import DatacenterConfig, FailureConfig
from ..core.scheme import LRCScheme, MLECScheme, SLECScheme
from ..core.types import Level, RepairMethod
from .methods import CatastrophicRepairModel

__all__ = [
    "TrafficRate",
    "slec_annual_cross_rack_traffic",
    "lrc_annual_cross_rack_traffic",
    "mlec_annual_cross_rack_traffic",
]


@dataclasses.dataclass(frozen=True)
class TrafficRate:
    """Expected cross-rack repair traffic of a scheme."""

    bytes_per_year: float

    @property
    def tb_per_day(self) -> float:
        return self.bytes_per_year / 1e12 / 365.0

    @property
    def tb_per_year(self) -> float:
        return self.bytes_per_year / 1e12


def _failures_per_year(dc: DatacenterConfig, failures: FailureConfig) -> float:
    return failures.annual_failure_rate * dc.total_disks


def slec_annual_cross_rack_traffic(
    scheme: SLECScheme, failures: FailureConfig | None = None
) -> TrafficRate:
    """Cross-rack repair traffic of a SLEC deployment.

    Local SLEC repairs never leave the rack; network SLEC pays
    ``(k+1) x disk_capacity`` per failed disk.
    """
    failures = failures if failures is not None else FailureConfig()
    if scheme.level is Level.LOCAL:
        return TrafficRate(0.0)
    per_failure = (scheme.params.k + 1) * scheme.dc.disk_capacity_bytes
    return TrafficRate(per_failure * _failures_per_year(scheme.dc, failures))


def lrc_annual_cross_rack_traffic(
    scheme: LRCScheme, failures: FailureConfig | None = None
) -> TrafficRate:
    """Cross-rack repair traffic of a declustered LRC deployment.

    Concurrent multi-failures within one stripe are rare under independent
    failures, so the per-failure cost is the local-group repair:
    ``(k/l + 1) x disk_capacity`` cross-rack bytes.
    """
    failures = failures if failures is not None else FailureConfig()
    per_failure = (scheme.params.group_size + 1) * scheme.dc.disk_capacity_bytes
    return TrafficRate(per_failure * _failures_per_year(scheme.dc, failures))


def mlec_annual_cross_rack_traffic(
    scheme: MLECScheme,
    method: RepairMethod,
    catastrophic_pool_rate_per_year: float,
    failures: FailureConfig | None = None,
) -> TrafficRate:
    """Cross-rack repair traffic of an MLEC deployment.

    Parameters
    ----------
    scheme, method:
        The MLEC scheme and its catastrophic-repair method.
    catastrophic_pool_rate_per_year:
        Expected catastrophic local-pool events per year across the whole
        system -- obtainable from
        :func:`repro.analysis.markov.local_pool_catastrophic_rate` times the
        pool count.  Single-disk repairs are local and contribute nothing.
    """
    del failures  # independent single-disk failures cost no cross-rack bytes
    model = CatastrophicRepairModel(scheme)
    per_event = model.cross_rack_traffic_bytes(method)
    return TrafficRate(per_event * catastrophic_pool_rate_per_year)


def years_per_terabyte(rate: TrafficRate) -> float:
    """Convenience for the paper's "a few TB every thousand of years"."""
    if rate.bytes_per_year <= 0:
        return float("inf")
    return 1e12 / rate.bytes_per_year
