"""Plain-text reporting: tables and heatmaps for the benchmark harness.

Every benchmark regenerates a paper table or figure; since the paper's
figures are heatmaps and bar charts, these helpers render them as aligned
ASCII so the harness output is directly comparable with the paper (and
diffable between runs).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .core.arrays import AnyArray

__all__ = ["format_table", "format_matrix", "format_heatmap", "format_bar_chart"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned table; floats are shown with 4 significant digits."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if math.isnan(cell):
                return "-"
            magnitude = abs(cell)
            if 1e-3 <= magnitude < 1e6:
                return f"{cell:.4g}"
            return f"{cell:.3e}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    values: AnyArray,
    title: str | None = None,
    corner: str = "",
) -> str:
    """Render a labelled 2-D matrix as an aligned table.

    Row labels become the first column (header ``corner``); ``values`` must
    be shaped ``(len(row_labels), len(col_labels))``.
    """
    values = np.asarray(values)
    if values.shape != (len(row_labels), len(col_labels)):
        raise ValueError("values shape does not match labels")
    rows = [
        [str(label), *(float(v) for v in row)]
        for label, row in zip(row_labels, values)
    ]
    return format_table([corner, *(str(c) for c in col_labels)], rows, title=title)


#: Log-PDL glyph ramp: '.' ~ zero through '#' ~ certain loss.
_RAMP = ".123456#"


def format_heatmap(
    grid: AnyArray,
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    title: str | None = None,
    log_floor: float = 1e-7,
) -> str:
    """Render a PDL heatmap as ASCII (paper Figures 5/13/16 style).

    Each cell maps ``log10(PDL)`` onto a glyph ramp: ``.`` is PDL below
    ``log_floor`` (durable), digits climb through the exponent range, and
    ``#`` is PDL ~ 1 (certain loss).  Impossible cells (NaN) are blank.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.shape != (len(row_labels), len(col_labels)):
        raise ValueError("grid shape does not match labels")
    decades = -math.log10(log_floor)

    def glyph(v: float) -> str:
        if math.isnan(v):
            return " "
        if v <= log_floor:
            return _RAMP[0]
        if v >= 0.5:
            return _RAMP[-1]
        # Map log10(v) in [log_floor, 0] onto the intermediate glyphs.
        frac = 1.0 + math.log10(v) / decades  # 0 at floor, 1 at PDL=1
        idx = 1 + int(frac * (len(_RAMP) - 2))
        return _RAMP[min(idx, len(_RAMP) - 2)]

    label_w = max(len(str(r)) for r in row_labels)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'':>{label_w}} PDL ramp: '.'<={log_floor:g} ... '#'~1"
    )
    for r, row in zip(row_labels, grid):
        lines.append(f"{str(r):>{label_w}} " + "".join(glyph(v) for v in row))
    lines.append(f"{'':>{label_w}} cols: " + " ".join(str(c) for c in col_labels))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    width: int = 50,
    title: str | None = None,
    log_scale: bool = False,
) -> str:
    """Render a horizontal bar chart (paper Figures 6/8/9/10 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vals = np.asarray(values, dtype=float)
    if log_scale:
        positive = vals[vals > 0]
        lo = math.log10(positive.min()) - 0.5 if positive.size else 0.0
        hi = math.log10(positive.max()) if positive.size else 1.0
        span = max(hi - lo, 1e-9)
        scaled = np.where(
            vals > 0, (np.log10(np.maximum(vals, 1e-300)) - lo) / span, 0.0
        )
    else:
        top = vals.max() if vals.size and vals.max() > 0 else 1.0
        scaled = vals / top
    label_w = max(len(l) for l in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value, frac in zip(labels, vals, scaled):
        bar = "#" * max(0, int(round(frac * width)))
        lines.append(f"{label:>{label_w}} |{bar:<{width}} {value:.4g} {unit}")
    return "\n".join(lines)
