"""Correlated fault descriptions (paper Table 1 / §2.3 failure taxonomy).

The paper's simulator injects failures "based on distributions, rules, or
real traces"; this module adds the *correlated* fault classes that the
per-disk :class:`repro.sim.failures.FailureModel` protocol cannot express:

* :class:`RackOutage` / :class:`EnclosureOutage` -- a whole failure domain
  goes down at once, either permanently (all disks fail and must be
  rebuilt) or transiently (data is unavailable until the domain returns);
* :class:`SectorErrorBurst` -- latent sector errors silently corrupt
  chunks on a disk; nothing notices until a scrub pass or a repair read
  touches them;
* :class:`BandwidthDegradation` -- the repair bandwidth budget drops for a
  window (cross-rack congestion, a throttled maintenance link), forcing
  in-flight network-stage repairs to stall and re-plan.

Each description is an immutable, validated value object.  The
:class:`repro.faults.injector.FaultInjector` turns a set of them into
concrete simulator events on top of any base failure model.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = [
    "FaultEvent",
    "RackOutage",
    "EnclosureOutage",
    "SectorErrorBurst",
    "BandwidthDegradation",
]


def _check_time(name: str, value: float) -> None:
    if math.isnan(value) or math.isinf(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative time, got {value}")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """Base class: something bad happens at ``time`` (seconds)."""

    time: float

    def __post_init__(self) -> None:
        _check_time("time", self.time)


@dataclasses.dataclass(frozen=True)
class RackOutage(FaultEvent):
    """A whole rack goes down at ``time``.

    ``duration=None`` means the outage is *permanent*: every disk in the
    rack fails and its data must be rebuilt.  A finite ``duration`` means
    the rack is transiently offline (power/switch event) and returns with
    its data intact after ``duration`` seconds.
    """

    rack: int = 0
    duration: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rack < 0:
            raise ValueError(f"rack must be non-negative, got {self.rack}")
        if self.duration is not None:
            _check_time("duration", self.duration)
            if self.duration == 0:
                raise ValueError("transient outage duration must be positive")

    @property
    def permanent(self) -> bool:
        return self.duration is None


@dataclasses.dataclass(frozen=True)
class EnclosureOutage(FaultEvent):
    """One enclosure of a rack goes down (same semantics as RackOutage)."""

    rack: int = 0
    enclosure: int = 0
    duration: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rack < 0 or self.enclosure < 0:
            raise ValueError("rack and enclosure must be non-negative")
        if self.duration is not None:
            _check_time("duration", self.duration)
            if self.duration == 0:
                raise ValueError("transient outage duration must be positive")

    @property
    def permanent(self) -> bool:
        return self.duration is None


@dataclasses.dataclass(frozen=True)
class SectorErrorBurst(FaultEvent):
    """``chunks`` chunks on ``disk`` become silently unreadable at ``time``.

    The corruption is *latent*: the simulator only learns about it when a
    scrub pass runs, when the pool performs a repair (repair reads touch
    every surviving disk), or -- worst case -- when a failure leaves a
    stripe depending on the corrupt chunk, which converts the latent error
    into a locally-unrecoverable stripe.
    """

    disk: int = 0
    chunks: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.disk < 0:
            raise ValueError(f"disk must be non-negative, got {self.disk}")
        if self.chunks <= 0:
            raise ValueError(f"chunks must be positive, got {self.chunks}")


@dataclasses.dataclass(frozen=True)
class BandwidthDegradation(FaultEvent):
    """Repair bandwidth drops to a fraction of nominal for a window.

    ``network_factor`` scales the cross-rack (network-stage) repair rate
    and ``local_factor`` the in-pool disk repair rate; both return to 1.0
    when the window closes.  Windows should not overlap -- the simulator
    applies factors last-writer-wins.
    """

    duration: float = 0.0
    network_factor: float = 1.0
    local_factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_time("duration", self.duration)
        if self.duration == 0:
            raise ValueError("degradation window duration must be positive")
        for name in ("network_factor", "local_factor"):
            v = getattr(self, name)
            if math.isnan(v) or not 0 < v <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {v}")
