"""Chaos campaigns: sweep correlated-fault scenarios, audit invariants.

A campaign answers the paper's qualitative question -- *which MLEC scheme
degrades most gracefully?* -- by running every scheme through a set of
fault scenarios (rack outages, transient unavailability, latent sector
errors, repair-bandwidth degradation), with an
:class:`repro.faults.invariants.InvariantChecker` auditing the simulator
after every event, and aggregating the results into a structured
:class:`RobustnessReport`.

Scenarios run *accelerated* (elevated background AFR): at the paper's
nominal 1% AFR catastrophic coincidences are ~1e-5/year events, so no
finite campaign would observe them -- the same reason the paper pairs its
simulator with splitting/DP models.  Acceleration preserves the *ordering*
between schemes, which is what the campaign reports.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from contextlib import nullcontext

import numpy as np

from ..core.arrays import AnyArray
from ..core.config import (
    DAY,
    HOUR,
    PAPER_MLEC,
    BandwidthConfig,
    DatacenterConfig,
    FailureConfig,
    MLECParams,
)
from ..core.scheme import MLEC_SCHEME_NAMES, MLECScheme, mlec_scheme_from_name
from ..core.types import RepairMethod
from ..obs import MetricsRegistry, TraceRecorder
from ..reporting import format_matrix, format_table
from ..runtime import ChunkExecutor, TrialContext, TrialRunner
from ..sim.failures import ExponentialFailures
from ..sim.simulator import MLECSystemSimulator
from .events import (
    BandwidthDegradation,
    EnclosureOutage,
    FaultEvent,
    RackOutage,
    SectorErrorBurst,
)
from .injector import FaultInjector
from .invariants import InvariantChecker

__all__ = [
    "ChaosScenario",
    "CampaignCell",
    "RobustnessReport",
    "ChaosCampaign",
    "chaos_datacenter",
    "standard_scenarios",
]


def chaos_datacenter() -> DatacenterConfig:
    """Reduced topology for fast campaigns: 24 racks x 1 x 120 = 2,880 disks.

    Keeps every geometry rule of the paper's setup (rack count divisible by
    ``n_n=12``, enclosures divisible by the local-Cp pool size) so all four
    schemes are constructible, at 5% of the full system's size.  Racks
    deliberately outnumber ``n_n`` -- with ``racks == n_n`` every network
    stripe would touch every rack and declustered network placement would
    lose its spreading advantage, collapsing the C/C-vs-D/D contrast the
    campaign exists to measure.
    """
    return DatacenterConfig(racks=24, enclosures_per_rack=1, disks_per_enclosure=120)


@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """One named injection scenario.

    Attributes
    ----------
    name / description:
        Identification for the report.
    faults:
        The correlated fault events to inject.
    background_afr:
        Accelerated background disk AFR run underneath the faults.
    mission_time:
        Seconds simulated per trial.
    scrub_period:
        Optional scrub cadence (needed for latent-error scenarios).
    """

    name: str
    description: str
    faults: tuple[FaultEvent, ...]
    background_afr: float = 0.25
    mission_time: float = 30 * DAY
    scrub_period: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not 0 < self.background_afr < 1:
            raise ValueError("background_afr must be in (0, 1)")
        if not self.mission_time > 0:
            raise ValueError("mission_time must be positive")


def standard_scenarios(dc: DatacenterConfig | None = None) -> tuple[ChaosScenario, ...]:
    """The four standard fault classes of the robustness campaign.

    Rack ids are chosen inside the first network-Cp rack group so the
    scenarios exercise co-striped pools on every scheme.
    """
    dc = dc if dc is not None else chaos_datacenter()
    # One disk per enclosure picks up latent errors, re-seeded after each
    # scrub pass so the exposure persists across the mission.
    enclosures = dc.racks * dc.enclosures_per_rack
    sector_waves = tuple(
        SectorErrorBurst(time=wave, disk=e * dc.disks_per_enclosure, chunks=4)
        for wave in (12 * HOUR, 11 * DAY, 21 * DAY)
        for e in range(enclosures)
    )
    return (
        ChaosScenario(
            name="rack-outage",
            description="two permanent rack losses in one rack group",
            faults=(
                RackOutage(time=5 * DAY, rack=1),
                RackOutage(time=5 * DAY + 6 * HOUR, rack=2),
            ),
            background_afr=0.85,
            mission_time=30 * DAY,
        ),
        ChaosScenario(
            name="transient-offline",
            description="rack and enclosure drop out, return with data",
            faults=(
                RackOutage(time=2 * DAY, rack=4, duration=12 * HOUR),
                EnclosureOutage(time=6 * DAY, rack=5, enclosure=0, duration=6 * HOUR),
            ),
            background_afr=0.05,
            mission_time=15 * DAY,
        ),
        ChaosScenario(
            name="latent-sector-errors",
            description="scrub-detected silent corruption under load",
            faults=sector_waves,
            background_afr=0.8,
            mission_time=30 * DAY,
            scrub_period=10 * DAY,
        ),
        ChaosScenario(
            name="bandwidth-degradation",
            description="enclosure loss with a 60% cross-rack slowdown",
            faults=(
                EnclosureOutage(time=2 * DAY, rack=3, enclosure=0),
                BandwidthDegradation(
                    time=2 * DAY + 6 * HOUR, duration=5 * DAY, network_factor=0.4
                ),
            ),
            background_afr=0.3,
            mission_time=15 * DAY,
        ),
    )


@dataclasses.dataclass
class CampaignCell:
    """Aggregated outcome of one (scenario, scheme) sweep."""

    scenario: str
    scheme: str
    trials: int
    losses: int
    mean_disk_failures: float
    mean_catastrophic: float
    mean_cross_rack_tb: float
    mean_net_repair_hours: float
    mean_degraded_hours: float
    total_repair_replans: int
    total_unavailability: int
    total_transient_outages: int
    total_sector_errors: int
    total_latent_detected: int
    total_latent_induced: int
    invariant_violations: int
    events_checked: int

    @property
    def pdl(self) -> float:
        """Fraction of trials that lost data under this scenario."""
        return self.losses / self.trials if self.trials else 0.0


@dataclasses.dataclass
class RobustnessReport:
    """Structured campaign outcome: PDL and degraded-mode statistics."""

    scenarios: tuple[str, ...]
    schemes: tuple[str, ...]
    trials: int
    cells: dict[tuple[str, str], CampaignCell]

    def cell(self, scenario: str, scheme: str) -> CampaignCell:
        return self.cells[(scenario, scheme)]

    @property
    def total_invariant_violations(self) -> int:
        return sum(c.invariant_violations for c in self.cells.values())

    @property
    def total_events_checked(self) -> int:
        return sum(c.events_checked for c in self.cells.values())

    def pdl_matrix(self) -> AnyArray:
        return np.array([
            [self.cell(sc, s).pdl for s in self.schemes] for sc in self.scenarios
        ])

    def to_text(self) -> str:
        lines = [
            f"Chaos campaign: {len(self.scenarios)} fault classes x "
            f"{len(self.schemes)} schemes x {self.trials} trials",
            f"invariants: {self.total_invariant_violations} violations over "
            f"{self.total_events_checked} audited events",
            "",
            format_matrix(
                self.scenarios, self.schemes, self.pdl_matrix(),
                title="PDL (fraction of trials losing data):",
            ),
        ]
        for scenario in self.scenarios:
            rows = []
            for scheme in self.schemes:
                c = self.cell(scenario, scheme)
                rows.append([
                    scheme, c.pdl, c.mean_catastrophic, c.mean_cross_rack_tb,
                    c.mean_net_repair_hours, c.mean_degraded_hours,
                    c.total_repair_replans, c.total_unavailability,
                    c.total_latent_induced,
                ])
            lines.append("")
            lines.append(format_table(
                ["scheme", "PDL", "catas", "x-rack TB", "net h",
                 "degr h", "replans", "unavail", "lat-cat"],
                rows,
                title=f"[{scenario}]",
            ))
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class _TrialOutcome:
    """Per-trial statistics shipped back from a campaign worker."""

    lost: bool
    stats: tuple[float, float, float, float, float]
    replans: int
    unavail: int
    outages: int
    sector: int
    detected: int
    induced: int
    violations: int
    events_checked: int


def _campaign_trial(
    ctx: TrialContext,
    tasks: tuple[tuple[int, int, int], ...],
    scenarios: tuple[ChaosScenario, ...],
    schemes: tuple[MLECScheme, ...],
    trials: int,
    dc: DatacenterConfig,
    method: RepairMethod,
    bw: BandwidthConfig | None,
    failures: FailureConfig | None,
    check_invariants: bool,
    seed: int,
) -> _TrialOutcome:
    """One (scenario, scheme, trial) cell entry; runs in a worker process.

    Each trial builds its own injector and simulator (both are cheap and
    stateless across runs), and keeps the historical ``seed + trial``
    integer seeding so trial ``i`` stays paired across schemes and the
    parallel sweep reproduces the serial one exactly.
    """
    scenario_idx, scheme_idx, trial = tasks[ctx.index]
    scenario: ChaosScenario = scenarios[scenario_idx]
    scheme = schemes[scheme_idx]
    injector = FaultInjector(
        base=ExponentialFailures(scenario.background_afr),
        faults=scenario.faults,
        dc=dc,
        scrub_period=scenario.scrub_period,
        recorder=ctx.trace,
    )
    sim = MLECSystemSimulator(
        scheme, method, bw=bw, failures=failures, failure_model=injector
    )
    checker = InvariantChecker(sim, strict=False) if check_invariants else None
    result = sim.run(
        mission_time=scenario.mission_time,
        seed=seed + trial,
        observer=checker,
        recorder=ctx.trace,
        metrics=ctx.metrics,
    )
    if ctx.trace is not None:
        ctx.trace.event(
            scenario.mission_time,
            "chaos.trial",
            scenario=scenario.name,
            scheme=scheme.name,
            lost=bool(result.lost_data),
        )
    if ctx.metrics is not None:
        ctx.metrics.counter("chaos.trials").inc()
        ctx.metrics.counter("chaos.loss_trials").inc(int(result.lost_data))
    return _TrialOutcome(
        lost=bool(result.lost_data),
        stats=(
            result.n_disk_failures,
            result.n_catastrophic_events,
            result.cross_rack_repair_bytes / 1e12,
            result.net_repair_seconds / HOUR,
            result.degraded_repair_seconds / HOUR,
        ),
        replans=result.n_repair_replans,
        unavail=result.n_unavailability_events,
        outages=result.n_transient_outages,
        sector=result.n_sector_errors,
        detected=result.n_latent_errors_detected,
        induced=result.n_latent_induced_catastrophes,
        violations=len(checker.violations) if checker is not None else 0,
        events_checked=checker.events_checked if checker is not None else 0,
    )


class ChaosCampaign:
    """Sweep fault-injection scenarios across MLEC schemes.

    Parameters
    ----------
    schemes:
        Scheme names to compare (default: all four canonical schemes).
    params / dc / method / bw / failures:
        System configuration shared by every run; ``dc`` defaults to the
        reduced :func:`chaos_datacenter` topology.
    trials:
        Seeds per (scenario, scheme) cell.  Trial ``i`` reuses the same
        seed across schemes so comparisons are paired.
    scenarios:
        Injection scenarios (default: :func:`standard_scenarios`).
    check_invariants:
        Audit every event with an :class:`InvariantChecker` (non-strict:
        violations are counted in the report rather than raised).
    workers / runner:
        Fan the flattened (scenario, scheme, trial) sweep out over a
        :class:`~repro.runtime.TrialRunner`; results are identical for any
        worker count.  A :class:`~repro.runtime.ResilientRunner` makes the
        campaign checkpointable and crash-tolerant (the flattened sweep is
        one journal sweep, so resume skips completed scenario/scheme/trial
        chunks).
    backend:
        Optional :class:`~repro.runtime.ChunkExecutor` deciding where
        trial chunks run (e.g. a
        :class:`~repro.runtime.TcpWorkQueueBackend` coordinating remote
        ``mlec-sim workers`` hosts).  Mutually exclusive with ``runner``
        -- pass the backend to your runner instead when you build one.
    """

    def __init__(
        self,
        schemes: Sequence[str] = MLEC_SCHEME_NAMES,
        params: MLECParams = PAPER_MLEC,
        dc: DatacenterConfig | None = None,
        method: RepairMethod = RepairMethod.R_FCO,
        bw: BandwidthConfig | None = None,
        failures: FailureConfig | None = None,
        trials: int = 5,
        scenarios: Sequence[ChaosScenario] | None = None,
        check_invariants: bool = True,
        workers: int = 1,
        runner: TrialRunner | None = None,
        backend: ChunkExecutor | None = None,
    ) -> None:
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        if workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {workers}; use workers=1 for "
                "the serial in-process path"
            )
        self.dc = dc if dc is not None else chaos_datacenter()
        self.schemes = tuple(
            mlec_scheme_from_name(name, params, self.dc) for name in schemes
        )
        self.method = method
        self.bw = bw
        self.failures = failures
        self.trials = trials
        self.scenarios = tuple(
            scenarios if scenarios is not None else standard_scenarios(self.dc)
        )
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        self.check_invariants = check_invariants
        if runner is not None and backend is not None:
            raise ValueError(
                "pass either runner or backend, not both; give the backend "
                "to your runner instead"
            )
        self.runner = (
            runner
            if runner is not None
            else TrialRunner(workers=workers, backend=backend)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        seed: int = 0,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> RobustnessReport:
        """Run the full sweep; returns the structured robustness report.

        Every (scenario, scheme, trial) combination is one task of the
        trial runner, so parallelism spans the whole campaign rather than
        one cell at a time.  ``trace``/``metrics`` collect per-trial
        telemetry through the runner (deterministic for any worker count).
        """
        tasks = tuple(
            (si, ci, trial)
            for si in range(len(self.scenarios))
            for ci in range(len(self.schemes))
            for trial in range(self.trials)
        )
        # Root the runner's span tree in a campaign span with a trace id
        # derived from the campaign's structural config (first seeding
        # wins, so the sweep inherits this identity).  getattr keeps
        # pre-span custom runners working.
        spans = getattr(self.runner, "spans", None)
        if spans is not None:
            spans.seed_trace(
                "chaos",
                seed,
                len(tasks),
                ",".join(s.name for s in self.scenarios),
                ",".join(s.name for s in self.schemes),
            )
        with (
            spans.span(
                "span.campaign",
                key=("campaign", seed),
                scenarios=len(self.scenarios),
                schemes=len(self.schemes),
                trials=self.trials,
            )
            if spans is not None
            else nullcontext()
        ):
            outcomes = self.runner.map(
                _campaign_trial,
                len(tasks),
                seed=seed,
                args=(
                    tasks, self.scenarios, self.schemes, self.trials, self.dc,
                    self.method, self.bw, self.failures, self.check_invariants,
                    seed,
                ),
                trace=trace,
                metrics=metrics,
            )
        cells: dict[tuple[str, str], CampaignCell] = {}
        cursor = 0
        for scenario in self.scenarios:
            for scheme in self.schemes:
                cell_outcomes = outcomes[cursor:cursor + self.trials]
                cursor += self.trials
                cells[(scenario.name, scheme.name)] = self._reduce_cell(
                    scenario.name, scheme.name, cell_outcomes
                )
        return RobustnessReport(
            scenarios=tuple(s.name for s in self.scenarios),
            schemes=tuple(s.name for s in self.schemes),
            trials=self.trials,
            cells=cells,
        )

    def _reduce_cell(
        self, scenario: str, scheme: str, outcomes: Sequence[_TrialOutcome]
    ) -> CampaignCell:
        losses = 0
        violations = 0
        events_checked = 0
        sums = np.zeros(5)  # failures, catastrophic, cross TB, net h, degr h
        replans = unavail = outages = sector = detected = induced = 0
        for outcome in outcomes:
            losses += outcome.lost
            violations += outcome.violations
            events_checked += outcome.events_checked
            sums += outcome.stats
            replans += outcome.replans
            unavail += outcome.unavail
            outages += outcome.outages
            sector += outcome.sector
            detected += outcome.detected
            induced += outcome.induced
        means = sums / self.trials
        return CampaignCell(
            scenario=scenario,
            scheme=scheme,
            trials=self.trials,
            losses=losses,
            mean_disk_failures=float(means[0]),
            mean_catastrophic=float(means[1]),
            mean_cross_rack_tb=float(means[2]),
            mean_net_repair_hours=float(means[3]),
            mean_degraded_hours=float(means[4]),
            total_repair_replans=replans,
            total_unavailability=unavail,
            total_transient_outages=outages,
            total_sector_errors=sector,
            total_latent_detected=detected,
            total_latent_induced=induced,
            invariant_violations=violations,
            events_checked=events_checked,
        )
