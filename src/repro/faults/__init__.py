"""Correlated fault injection, invariants, and chaos campaigns.

This package stresses the event-driven simulator beyond independent disk
failures: whole-domain outages, transient unavailability, latent sector
errors, and repair-bandwidth degradation, with conservation-law invariants
audited after every event and a campaign runner that compares how the four
MLEC schemes degrade.
"""

from .campaign import (
    CampaignCell,
    ChaosCampaign,
    ChaosScenario,
    RobustnessReport,
    chaos_datacenter,
    standard_scenarios,
)
from .events import (
    BandwidthDegradation,
    EnclosureOutage,
    FaultEvent,
    RackOutage,
    SectorErrorBurst,
)
from .injector import FaultInjector
from .invariants import InvariantChecker, InvariantViolation

__all__ = [
    "FaultEvent",
    "RackOutage",
    "EnclosureOutage",
    "SectorErrorBurst",
    "BandwidthDegradation",
    "FaultInjector",
    "InvariantChecker",
    "InvariantViolation",
    "ChaosScenario",
    "ChaosCampaign",
    "CampaignCell",
    "RobustnessReport",
    "chaos_datacenter",
    "standard_scenarios",
]
