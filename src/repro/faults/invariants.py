"""Chaos-hardened simulator invariants.

An :class:`InvariantChecker` plugs into ``MLECSystemSimulator.run`` as an
observer and audits the run state after *every* event.  The checks are the
conservation laws the simulator must obey no matter which faults are
injected:

* **monotone clock** -- event timestamps never go backwards;
* **non-negative damage** -- no pool ever reports negative failed/offline
  disk counts, negative outstanding chunk work, or a negative latent
  sector-error balance; in-flight network repairs never owe negative bytes;
* **conserved byte accounting** -- local repair traffic is exactly one
  disk's capacity per disk failure, scrub repair traffic is exactly one
  chunk per detected latent error, and cross-rack traffic only ever grows,
  and only when a catastrophic event is registered;
* **latent-error conservation** -- injected sector errors are either still
  latent or counted as detected, never duplicated or dropped;
* **no orphaned pool state** -- the pool table holds only pools with live
  damage (idle pools must be evicted), pool ids are within the topology,
  and per-pool offline counts agree with the global offline-disk set.

A violated invariant raises :class:`InvariantViolation` (``strict=True``,
the default) or is recorded in :attr:`InvariantChecker.violations`.
"""

from __future__ import annotations

from ..sim.events import Event, EventType
from ..sim.simulator import MLECSystemSimulator, _RunState

__all__ = ["InvariantViolation", "InvariantChecker"]


class InvariantViolation(AssertionError):
    """A simulator conservation law was broken."""


class InvariantChecker:
    """Audits a simulation run event-by-event.

    Parameters
    ----------
    sim:
        The simulator under audit (supplies scheme geometry and sizes).
    strict:
        Raise :class:`InvariantViolation` on the first broken invariant
        (default); otherwise collect messages in :attr:`violations`.
    """

    def __init__(self, sim: MLECSystemSimulator, strict: bool = True) -> None:
        self.sim = sim
        self.strict = strict
        self.violations: list[str] = []
        self.events_checked = 0
        self._last_time = 0.0
        self._prev_cross = 0.0
        self._prev_local = 0.0
        self._prev_catastrophic = 0
        self._total_pools = sim.scheme.total_local_pools

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        if self.strict:
            raise InvariantViolation(message)
        self.violations.append(message)

    def __call__(self, event: Event, st: _RunState) -> None:
        """Observer entry point (``observer(event, state)``)."""
        self.events_checked += 1
        t = event.time
        if t < self._last_time:
            self._fail(
                f"clock moved backwards: {t} after {self._last_time} ({event.kind})"
            )
        self._last_time = max(self._last_time, t)

        self._check_non_negative(event, st)
        self._check_byte_conservation(event, st)
        self._check_latent_conservation(event, st)
        self._check_pool_table(event, st)

    # ------------------------------------------------------------------
    def _check_non_negative(self, event: Event, st: _RunState) -> None:
        for pool_id, state in st.pools.items():
            if state.failed < 0 or state.offline < 0:
                self._fail(
                    f"pool {pool_id} has negative damage after {event.kind}: "
                    f"failed={state.failed} offline={state.offline}"
                )
            if (state.work < -1e-9).any():
                self._fail(
                    f"pool {pool_id} has negative outstanding work "
                    f"after {event.kind}: {state.work.tolist()}"
                )
        for pool_id, rep in st.net_repairs.items():
            if rep.remaining < -1e-6:
                self._fail(
                    f"network repair of pool {pool_id} owes negative bytes: "
                    f"{rep.remaining}"
                )
        for pool_id, chunks in st.latent.items():
            if chunks < 0:
                self._fail(f"pool {pool_id} has negative latent count {chunks}")
        for name in (
            "cross_rack_bytes", "local_bytes", "scrub_repair_bytes",
            "offline_disk_seconds", "net_repair_seconds",
            "degraded_repair_seconds",
        ):
            if getattr(st, name) < 0:
                self._fail(f"{name} went negative after {event.kind}")

    def _check_byte_conservation(self, event: Event, st: _RunState) -> None:
        dc = self.sim.scheme.dc
        expected_local = st.n_failures * dc.disk_capacity_bytes
        if st.local_bytes != expected_local:
            self._fail(
                f"local repair bytes {st.local_bytes} != "
                f"{st.n_failures} failures x disk capacity"
            )
        local_delta = st.local_bytes - self._prev_local
        if local_delta and event.kind is not EventType.DISK_FAILURE:
            self._fail(f"local repair bytes changed on {event.kind}")
        self._prev_local = st.local_bytes

        cross_delta = st.cross_rack_bytes - self._prev_cross
        if cross_delta < 0:
            self._fail("cross-rack repair bytes decreased")
        if cross_delta > 0:
            if event.kind is not EventType.DISK_FAILURE:
                self._fail(f"cross-rack repair bytes changed on {event.kind}")
            if st.n_catastrophic <= self._prev_catastrophic:
                self._fail(
                    "cross-rack traffic grew without a catastrophic event"
                )
        self._prev_cross = st.cross_rack_bytes
        self._prev_catastrophic = st.n_catastrophic

        # Latent chunks found by scrubs/repair reads are rewritten in
        # place (one chunk of traffic each); latent-induced catastrophes
        # route through the network stage instead, so they contribute no
        # scrub bytes.
        expected_scrub = st.n_latent_detected - st.n_latent_induced_chunks
        if abs(st.scrub_repair_bytes - expected_scrub * dc.chunk_size_bytes) > 1e-6:
            self._fail(
                f"scrub repair bytes {st.scrub_repair_bytes} != "
                f"{expected_scrub} detected latent chunks x chunk size"
            )

    def _check_latent_conservation(self, event: Event, st: _RunState) -> None:
        outstanding = sum(st.latent.values())
        if outstanding + st.n_latent_detected != st.n_sector_errors:
            self._fail(
                f"latent sector errors unbalanced after {event.kind}: "
                f"{outstanding} latent + {st.n_latent_detected} detected "
                f"!= {st.n_sector_errors} injected"
            )

    def _check_pool_table(self, event: Event, st: _RunState) -> None:
        for pool_id, state in st.pools.items():
            if not 0 <= pool_id < self._total_pools:
                self._fail(f"pool id {pool_id} outside topology")
            if state.is_idle():
                self._fail(
                    f"orphaned idle pool {pool_id} left in the pool table "
                    f"after {event.kind}"
                )
        for pool_id in st.net_repairs:
            if not 0 <= pool_id < self._total_pools:
                self._fail(f"network repair for out-of-range pool {pool_id}")
        for pool_id in st.latent:
            if not 0 <= pool_id < self._total_pools:
                self._fail(f"latent errors on out-of-range pool {pool_id}")
        offline_total = sum(state.offline for state in st.pools.values())
        if offline_total != len(st.offline_since):
            self._fail(
                f"offline bookkeeping out of sync: pools say {offline_total}, "
                f"disk table says {len(st.offline_since)}"
            )

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations
