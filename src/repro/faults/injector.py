"""FaultInjector: correlated faults layered over any failure model.

The injector is itself a :class:`repro.sim.failures.FailureModel` -- it
wraps a base per-disk model and merges *permanent* domain outages into the
per-disk failure times, so the simulator's ordinary scheduling machinery
(including replacement-disk rescheduling) sees them as regular disk
failures.  Everything that is not expressible as a disk death -- transient
unavailability, latent sector errors, bandwidth windows, scrub passes --
is scheduled directly onto the simulator's event queue by
:meth:`FaultInjector.schedule`, which ``MLECSystemSimulator.run`` invokes
automatically when its failure model exposes the hook.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..core.config import DatacenterConfig
from ..obs import TraceRecorder
from ..sim.events import EventQueue, EventType
from ..sim.failures import ExponentialFailures, FailureModel
from .events import (
    BandwidthDegradation,
    EnclosureOutage,
    FaultEvent,
    RackOutage,
    SectorErrorBurst,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Compose correlated fault events on top of a base failure model.

    Parameters
    ----------
    base:
        Per-disk background failure model (defaults to the paper's 1% AFR
        exponential model).
    faults:
        Fault descriptions from :mod:`repro.faults.events`.
    dc:
        Topology used to translate rack/enclosure ids into disk id ranges.
    scrub_period:
        If set, a full-system scrub pass runs every ``scrub_period``
        seconds, detecting (and repairing) accumulated latent sector
        errors.
    recorder:
        Optional :class:`repro.obs.TraceRecorder`; :meth:`schedule` emits
        one ``fault.scheduled`` record per injected fault plus a
        ``fault.scrub_schedule`` summary.
    """

    def __init__(
        self,
        base: FailureModel | None = None,
        faults: Sequence[FaultEvent] = (),
        dc: DatacenterConfig | None = None,
        scrub_period: float | None = None,
        recorder: TraceRecorder | None = None,
    ) -> None:
        self.base = base if base is not None else ExponentialFailures()
        self.dc = dc if dc is not None else DatacenterConfig()
        self.recorder = recorder
        if scrub_period is not None and not scrub_period > 0:
            raise ValueError(f"scrub_period must be positive, got {scrub_period}")
        self.scrub_period = scrub_period
        self.faults = tuple(faults)
        # Permanent outages become (first_disk, end_disk, time) ranges that
        # time_to_failure merges into the base model's schedule.
        self._permanent: list[tuple[int, int, float]] = []
        for fault in self.faults:
            self._validate_domain(fault)
            if isinstance(fault, (RackOutage, EnclosureOutage)) and fault.permanent:
                self._permanent.append((*self._disk_range(fault), fault.time))

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _validate_domain(self, fault: FaultEvent) -> None:
        dc = self.dc
        if isinstance(fault, (RackOutage, EnclosureOutage)):
            if fault.rack >= dc.racks:
                raise ValueError(
                    f"rack {fault.rack} out of range (topology has {dc.racks})"
                )
        if isinstance(fault, EnclosureOutage):
            if fault.enclosure >= dc.enclosures_per_rack:
                raise ValueError(
                    f"enclosure {fault.enclosure} out of range "
                    f"({dc.enclosures_per_rack} per rack)"
                )
        if isinstance(fault, SectorErrorBurst):
            if fault.disk >= dc.total_disks:
                raise ValueError(
                    f"disk {fault.disk} out of range ({dc.total_disks} disks)"
                )

    def _disk_range(self, fault: RackOutage | EnclosureOutage) -> tuple[int, int]:
        """Half-open global disk id range [first, end) covered by an outage."""
        dc = self.dc
        if isinstance(fault, EnclosureOutage):
            first = (fault.rack * dc.enclosures_per_rack + fault.enclosure) \
                * dc.disks_per_enclosure
            return first, first + dc.disks_per_enclosure
        first = fault.rack * dc.disks_per_rack
        return first, first + dc.disks_per_rack

    # ------------------------------------------------------------------
    # FailureModel protocol
    # ------------------------------------------------------------------
    def time_to_failure(
        self, rng: np.random.Generator, disk_id: int, in_service_since: float
    ) -> float:
        """Base failure time, clipped by any later permanent outage.

        A replacement disk installed after an outage follows the base model
        again (outages kill the hardware that was present at outage time).
        """
        t = self.base.time_to_failure(rng, disk_id, in_service_since)
        for first, end, when in self._permanent:
            if first <= disk_id < end and when > in_service_since:
                t = min(t, when)
        return t

    # ------------------------------------------------------------------
    # Queue-level scheduling
    # ------------------------------------------------------------------
    def schedule(self, queue: EventQueue, mission_time: float) -> None:
        """Push every non-disk-death fault onto the simulator's queue.

        Transient outages push a TRANSIENT_OFFLINE / TRANSIENT_ONLINE pair
        (the ONLINE event may land past ``mission_time``; the simulator
        stops at END_OF_MISSION, so the tail is simply never processed).
        """
        if math.isnan(mission_time) or mission_time <= 0:
            raise ValueError(f"mission_time must be positive, got {mission_time}")
        recorder = self.recorder
        for fault in self.faults:
            if fault.time > mission_time:
                continue
            if recorder is not None:
                duration = getattr(fault, "duration", None)
                recorder.event(
                    fault.time,
                    "fault.scheduled",
                    fault=type(fault).__name__,
                    permanent=duration is None
                    and isinstance(fault, (RackOutage, EnclosureOutage)),
                    duration=duration,
                )
            if isinstance(fault, (RackOutage, EnclosureOutage)):
                if fault.duration is None:  # permanent
                    continue  # merged into time_to_failure instead
                disks = tuple(range(*self._disk_range(fault)))
                queue.push(fault.time, EventType.TRANSIENT_OFFLINE, disks)
                queue.push(
                    fault.time + fault.duration, EventType.TRANSIENT_ONLINE, disks
                )
            elif isinstance(fault, SectorErrorBurst):
                queue.push(
                    fault.time, EventType.SECTOR_ERROR, (fault.disk, fault.chunks)
                )
            elif isinstance(fault, BandwidthDegradation):
                queue.push(
                    fault.time,
                    EventType.BANDWIDTH_CHANGE,
                    (fault.network_factor, fault.local_factor),
                )
                queue.push(
                    fault.time + fault.duration,
                    EventType.BANDWIDTH_CHANGE,
                    (1.0, 1.0),
                )
        if self.scrub_period is not None:
            t = self.scrub_period
            count = 0
            while t <= mission_time:
                queue.push(t, EventType.SCRUB)
                t += self.scrub_period
                count += 1
            if recorder is not None:
                recorder.event(
                    0.0,
                    "fault.scrub_schedule",
                    period=self.scrub_period,
                    passes=count,
                )
