"""Developer tooling that ships with the library.

Currently one tool: :mod:`repro.devtools.simlint`, the domain-aware static
analysis suite that enforces the simulation contracts (determinism, unit
safety, event-handler exhaustiveness) before code runs.
"""
