"""SARIF 2.1.0 output for simlint findings.

SARIF (Static Analysis Results Interchange Format) is the lingua franca of
code-scanning backends: GitHub code scanning, VS Code's SARIF viewer, and
most CI annotation tooling ingest it natively.  This module renders a lint
run as a single-run SARIF log with full rule metadata, so findings appear
inline on PRs without any bespoke glue.

Only stdlib ``json``-serializable structures are produced; the document
carries the fields the 2.1.0 schema marks required (``version``, ``runs``,
``tool.driver.name``, per-result ``ruleId``/``message``/``locations``)
plus the optional rule index table that lets viewers show rationale text.
"""

from __future__ import annotations

import json
from typing import Any

from .core import META_RULE_ID, RULE_REGISTRY, Finding

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_META_RULE = {
    "id": META_RULE_ID,
    "name": "meta-diagnostic",
    "shortDescription": {"text": "simlint meta diagnostic"},
    "fullDescription": {
        "text": (
            "The input itself is broken: a file that does not parse, or a "
            "suppression pragma naming an unknown rule."
        )
    },
}


def _rule_descriptors(rule_ids: list[str]) -> list[dict[str, Any]]:
    descriptors: list[dict[str, Any]] = [_META_RULE]
    for rule_id in sorted(rule_ids):
        cls = RULE_REGISTRY.get(rule_id)
        if cls is None:
            continue
        descriptors.append({
            "id": rule_id,
            "name": cls.title or rule_id,
            "shortDescription": {"text": cls.title or rule_id},
            "fullDescription": {"text": cls.rationale or cls.title or rule_id},
            "defaultConfiguration": {"level": "error"},
        })
    return descriptors


def to_sarif(
    findings: list[Finding], rule_ids: list[str] | None = None
) -> dict[str, Any]:
    """A SARIF 2.1.0 log object for one lint run."""
    # Ensure built-in rules are registered for metadata lookup.
    from . import rules as _rules  # noqa: F401

    ids = rule_ids if rule_ids is not None else sorted(RULE_REGISTRY)
    descriptors = _rule_descriptors(ids)
    index_of = {d["id"]: i for i, d in enumerate(descriptors)}

    results: list[dict[str, Any]] = []
    for finding in findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        }
        if finding.rule in index_of:
            result["ruleIndex"] = index_of[finding.rule]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri": (
                        "https://example.invalid/mlec-sim/docs/static-analysis"
                    ),
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }


def render_sarif(
    findings: list[Finding], rule_ids: list[str] | None = None
) -> str:
    """The SARIF log serialized deterministically (sorted keys, 2-space)."""
    return json.dumps(to_sarif(findings, rule_ids), indent=2, sort_keys=True) + "\n"
