"""Finding baselines: auditable suppression of pre-existing findings.

When a new rule lands (or an old rule grows teeth), the tree may carry
findings that are understood and deliberately deferred.  Scattering
``# simlint: disable`` pragmas for those buries the decision in the code;
a *baseline file* keeps it in one reviewable, committed place
(``.simlint-baseline.json``): every entry records the fingerprinted
finding plus a free-text ``justification``, CI filters exactly those, and
any *new* finding still fails the build.

Fingerprints hash ``path | rule | message | stripped source line`` -- the
line *content*, not the line number -- so unrelated edits that shift a
file do not invalidate the baseline, while editing the flagged line
itself (which may well change the verdict) does.

Workflow::

    mlec-sim lint src/repro --update-baseline      # (re)write the baseline
    mlec-sim lint src/repro --baseline .simlint-baseline.json
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .core import Finding, LintError

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "fingerprint",
    "load_baseline",
    "filter_findings",
    "write_baseline",
]

DEFAULT_BASELINE_PATH = ".simlint-baseline.json"
_BASELINE_VERSION = 1


class _LineCache:
    """Lazy per-file source lines for fingerprint computation."""

    def __init__(self) -> None:
        self._lines: dict[str, list[str]] = {}

    def line(self, path: str, lineno: int) -> str:
        if path not in self._lines:
            try:
                text = Path(path).read_text(encoding="utf-8")
            except OSError:
                text = ""
            self._lines[path] = text.splitlines()
        lines = self._lines[path]
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


def fingerprint(finding: Finding, cache: _LineCache | None = None) -> str:
    """Stable identity of a finding across line-number drift."""
    cache = cache if cache is not None else _LineCache()
    content = cache.line(finding.path, finding.line)
    digest = hashlib.sha256(
        f"{finding.path}|{finding.rule}|{finding.message}|{content}".encode()
    )
    return digest.hexdigest()[:16]


def load_baseline(path: str | Path) -> dict[str, dict[str, object]]:
    """Baseline entries by fingerprint; raises :class:`LintError` if bad."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise LintError(
            f"baseline {path} has an unexpected shape "
            f"(want version {_BASELINE_VERSION} with a findings list)"
        )
    entries: dict[str, dict[str, object]] = {}
    for entry in payload["findings"]:
        if isinstance(entry, dict) and isinstance(entry.get("fingerprint"), str):
            entries[entry["fingerprint"]] = entry
    return entries


def filter_findings(
    findings: list[Finding], baseline: dict[str, dict[str, object]]
) -> tuple[list[Finding], int]:
    """(findings not in the baseline, count of baselined ones)."""
    cache = _LineCache()
    fresh: list[Finding] = []
    matched = 0
    for finding in findings:
        if fingerprint(finding, cache) in baseline:
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def write_baseline(
    findings: list[Finding],
    path: str | Path,
    previous: dict[str, dict[str, object]] | None = None,
) -> int:
    """Write ``path`` from ``findings``; returns the entry count.

    Justifications recorded on entries that survive from ``previous`` are
    preserved, so re-running ``--update-baseline`` never erases the audit
    trail.
    """
    cache = _LineCache()
    entries = []
    seen: set[str] = set()
    for finding in sorted(findings):
        fp = fingerprint(finding, cache)
        if fp in seen:
            continue
        seen.add(fp)
        prior = (previous or {}).get(fp, {})
        entries.append({
            "fingerprint": fp,
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "justification": str(prior.get("justification", "")),
        })
    payload = {"version": _BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
