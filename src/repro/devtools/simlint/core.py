"""simlint core: findings, suppressions, the rule registry, the driver.

simlint is an AST-based static-analysis tool for *this* codebase: its rules
encode the simulation contracts (seeded randomness, unit discipline,
exhaustive event dispatch, picklable trial functions) that ordinary linters
cannot know about.  Everything is stdlib-only (``ast`` + ``tokenize``-free
line scanning), so the tool adds no runtime dependency.

Rules are classes registered by id (``SL001`` ...).  Three shapes exist:

* **per-file** rules (the default) see one file at a time via
  :meth:`Rule.visit_file`;
* **cross-file** rules (``cross_file = True``) additionally emit findings
  from :meth:`Rule.finalize` once every file has been visited;
* **whole-program** rules subclass :class:`ProgramRule` and receive a
  :class:`~repro.devtools.simlint.program.ProgramModel` -- a module graph,
  symbol table, and call graph over every linted file -- via
  :meth:`ProgramRule.visit_program`.

Suppression is per line and per rule::

    risky_call()  # simlint: disable=SL001
    other()       # simlint: disable=SL001,SL004

or for a whole file (anywhere in the file, conventionally at the top)::

    # simlint: disable-file=SL003

``SL000`` is the synthetic meta-diagnostic id: it is not a registered rule
but the id findings carry when the *input itself* is broken -- a file that
does not parse, or a suppression pragma naming an unknown rule.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .program import ProgramModel

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProgramRule",
    "RULE_REGISTRY",
    "register_rule",
    "Linter",
    "LintError",
    "META_RULE_ID",
]

_DISABLE_LINE = re.compile(r"#\s*simlint:\s*disable=([A-Z0-9, ]+)")
_DISABLE_FILE = re.compile(r"#\s*simlint:\s*disable-file=([A-Z0-9, ]+)")
#: Loose pragma scan used to *warn* about malformed/unknown suppressions
#: the strict patterns above would silently ignore.
_PRAGMA_ANY = re.compile(r"#\s*simlint:\s*disable(?:-file)?=([^\s#,]+(?:\s*,\s*[^\s#,]+)*)")

#: The synthetic rule id for meta diagnostics (syntax errors, bad pragmas).
META_RULE_ID = "SL000"


class LintError(Exception):
    """A target could not be linted at all (missing path, unreadable file)."""


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, obj: dict[str, object]) -> Finding:
        return cls(
            path=str(obj["path"]),
            line=int(obj["line"]),  # type: ignore[arg-type]
            col=int(obj["column"]),  # type: ignore[arg-type]
            rule=str(obj["rule"]),
            message=str(obj["message"]),
        )


class FileContext:
    """One parsed source file handed to every rule."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self._file_disabled: frozenset[str] | None = None

    # ------------------------------------------------------------------
    def _rules_disabled_for_file(self) -> frozenset[str]:
        if self._file_disabled is None:
            disabled: set[str] = set()
            for line in self.lines:
                match = _DISABLE_FILE.search(line)
                if match:
                    disabled.update(
                        r.strip() for r in match.group(1).split(",") if r.strip()
                    )
            self._file_disabled = frozenset(disabled)
        return self._file_disabled

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is disabled on ``line`` or file-wide."""
        if rule_id in self._rules_disabled_for_file():
            return True
        if 1 <= line <= len(self.lines):
            match = _DISABLE_LINE.search(self.lines[line - 1])
            if match:
                ids = {r.strip() for r in match.group(1).split(",")}
                return rule_id in ids
        return False

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
        )


class Rule:
    """Base class for simlint rules.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`rationale`,
    and implement :meth:`visit_file`; cross-file rules also set
    ``cross_file = True`` and implement :meth:`finalize`, which runs after
    every file has been visited.  One rule instance lives for one
    :class:`Linter` run, so instance state is the natural place to
    accumulate cross-file facts.
    """

    rule_id: str = "SL000"
    title: str = ""
    rationale: str = ""
    #: True when :meth:`finalize` emits findings that depend on *other*
    #: files -- such rules are excluded from the per-file result cache.
    cross_file: bool = False

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        del ctx
        return []

    def finalize(self) -> list[Finding]:
        return []


class ProgramRule(Rule):
    """A rule that analyzes the whole program instead of single files.

    Program rules run after every file has been parsed, against the
    :class:`~repro.devtools.simlint.program.ProgramModel` (module graph,
    symbol tables, call graph) built from all linted files.  They never
    see :meth:`visit_file`.
    """

    def visit_program(self, program: ProgramModel) -> list[Finding]:
        del program
        return []


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not re.fullmatch(r"SL\d{3}", cls.rule_id):
        raise ValueError(f"bad rule id {cls.rule_id!r} (expected SLnnn)")
    if cls.rule_id == META_RULE_ID:
        raise ValueError(f"{META_RULE_ID} is reserved for meta diagnostics")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def _pragma_findings(ctx: FileContext) -> list[Finding]:
    """SL000 warnings for suppression pragmas naming unknown rules.

    A typo'd pragma (``disable=SL01``, ``disable=RULE``) would otherwise
    suppress nothing *silently* -- the author believes a finding is
    acknowledged when it is not.
    """
    findings: list[Finding] = []
    for lineno, line in enumerate(ctx.lines, start=1):
        match = _PRAGMA_ANY.search(line)
        if not match:
            continue
        for token in match.group(1).split(","):
            cleaned = token.strip().strip("`'\".()")
            if not cleaned:
                continue
            if cleaned not in RULE_REGISTRY and cleaned != META_RULE_ID:
                findings.append(Finding(
                    path=ctx.display_path,
                    line=lineno,
                    col=match.start() + 1,
                    rule=META_RULE_ID,
                    message=(
                        f"suppression pragma names unknown rule {cleaned!r}; "
                        "it suppresses nothing (known rules: SL001..)"
                    ),
                ))
    return findings


class Linter:
    """Runs a set of rules over a set of paths.

    Parameters
    ----------
    rules:
        Rule ids to run (default: every registered rule).
    """

    def __init__(self, rules: set[str] | None = None) -> None:
        # Import for the registration side effect; cheap and idempotent.
        from . import rules as _rules  # noqa: F401

        selected = rules if rules is not None else set(RULE_REGISTRY)
        unknown = selected - set(RULE_REGISTRY)
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        self.rule_ids = sorted(selected)

    # ------------------------------------------------------------------
    @staticmethod
    def collect_files(paths: list[str]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise LintError(f"no such file or directory: {raw}")
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        # De-duplicate while preserving order.
        seen: set[Path] = set()
        unique = []
        for f in files:
            resolved = f.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(f)
        return unique

    # -- pipeline stages (the cache orchestrates these individually) ----
    def parse(
        self, files: list[Path]
    ) -> tuple[list[FileContext], list[Finding]]:
        """Parse ``files``; unparsable files become SL000 findings.

        A syntax error is a *diagnostic*, not a crash: the broken file is
        reported at ``path:lineno`` and skipped, while every other file is
        still linted.  Unreadable files (permissions, vanished paths) are
        a :class:`LintError` -- the run itself is invalid.
        """
        contexts: list[FileContext] = []
        findings: list[Finding] = []
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise LintError(f"cannot read {path}: {exc}") from exc
            try:
                contexts.append(FileContext(path, str(path), source))
            except SyntaxError as exc:
                findings.append(Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule=META_RULE_ID,
                    message=f"syntax error: {exc.msg}",
                ))
        return contexts, findings

    def partition_rules(self) -> tuple[list[str], list[str], list[str]]:
        """Selected rule ids split into (per-file, cross-file, program)."""
        per_file: list[str] = []
        cross: list[str] = []
        program: list[str] = []
        for rule_id in self.rule_ids:
            cls = RULE_REGISTRY[rule_id]
            if issubclass(cls, ProgramRule):
                program.append(rule_id)
            elif cls.cross_file:
                cross.append(rule_id)
            else:
                per_file.append(rule_id)
        return per_file, cross, program

    @staticmethod
    def run_file_rules(ctx: FileContext, rule_ids: list[str]) -> list[Finding]:
        """Per-file rules plus the SL000 pragma check on one file."""
        findings = _pragma_findings(ctx)
        for rule_id in rule_ids:
            rule = RULE_REGISTRY[rule_id]()
            findings.extend(
                f for f in rule.visit_file(ctx)
                if not ctx.is_suppressed(f.rule, f.line)
            )
        return findings

    @staticmethod
    def run_cross_rules(
        contexts: list[FileContext], rule_ids: list[str]
    ) -> list[Finding]:
        """Cross-file rules: visit every file, then finalize."""
        if not rule_ids:
            return []
        rules = [RULE_REGISTRY[rule_id]() for rule_id in rule_ids]
        context_by_path = {ctx.display_path: ctx for ctx in contexts}
        findings: list[Finding] = []
        for ctx in contexts:
            for rule in rules:
                findings.extend(
                    f for f in rule.visit_file(ctx)
                    if not ctx.is_suppressed(f.rule, f.line)
                )
        for rule in rules:
            for finding in rule.finalize():
                ctx_for = context_by_path.get(finding.path)
                if ctx_for is None or not ctx_for.is_suppressed(
                    finding.rule, finding.line
                ):
                    findings.append(finding)
        return findings

    @staticmethod
    def run_program_rules(
        contexts: list[FileContext], rule_ids: list[str]
    ) -> list[Finding]:
        """Whole-program rules over the module/call-graph model."""
        if not rule_ids:
            return []
        from .program import build_program

        program = build_program(contexts)
        context_by_path = {ctx.display_path: ctx for ctx in contexts}
        findings: list[Finding] = []
        for rule_id in rule_ids:
            rule = RULE_REGISTRY[rule_id]()
            assert isinstance(rule, ProgramRule)
            for finding in rule.visit_program(program):
                ctx_for = context_by_path.get(finding.path)
                if ctx_for is None or not ctx_for.is_suppressed(
                    finding.rule, finding.line
                ):
                    findings.append(finding)
        return findings

    # ------------------------------------------------------------------
    def run(self, paths: list[str]) -> list[Finding]:
        """Lint ``paths`` (files or directory trees); returns findings."""
        contexts, findings = self.parse(self.collect_files(paths))
        per_file, cross, program = self.partition_rules()
        for ctx in contexts:
            findings.extend(self.run_file_rules(ctx, per_file))
        findings.extend(self.run_cross_rules(contexts, cross))
        findings.extend(self.run_program_rules(contexts, program))
        return sorted(findings)
