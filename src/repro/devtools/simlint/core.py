"""simlint core: findings, suppressions, the rule registry, the driver.

simlint is an AST-based static-analysis tool for *this* codebase: its rules
encode the simulation contracts (seeded randomness, unit discipline,
exhaustive event dispatch, picklable trial functions) that ordinary linters
cannot know about.  Everything is stdlib-only (``ast`` + ``tokenize``-free
line scanning), so the tool adds no runtime dependency.

Rules are classes registered by id (``SL001`` ...).  Each rule sees every
file (:meth:`Rule.visit_file`) and may emit more findings once the whole
project has been scanned (:meth:`Rule.finalize`) -- the hook cross-file
rules like event-handler exhaustiveness use.

Suppression is per line and per rule::

    risky_call()  # simlint: disable=SL001
    other()       # simlint: disable=SL001,SL004

or for a whole file (anywhere in the file, conventionally at the top)::

    # simlint: disable-file=SL003
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "Linter",
    "LintError",
]

_DISABLE_LINE = re.compile(r"#\s*simlint:\s*disable=([A-Z0-9, ]+)")
_DISABLE_FILE = re.compile(r"#\s*simlint:\s*disable-file=([A-Z0-9, ]+)")


class LintError(Exception):
    """A target could not be linted at all (missing path, syntax error)."""


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class FileContext:
    """One parsed source file handed to every rule."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self._file_disabled: frozenset[str] | None = None

    # ------------------------------------------------------------------
    def _rules_disabled_for_file(self) -> frozenset[str]:
        if self._file_disabled is None:
            disabled: set[str] = set()
            for line in self.lines:
                match = _DISABLE_FILE.search(line)
                if match:
                    disabled.update(
                        r.strip() for r in match.group(1).split(",") if r.strip()
                    )
            self._file_disabled = frozenset(disabled)
        return self._file_disabled

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is disabled on ``line`` or file-wide."""
        if rule_id in self._rules_disabled_for_file():
            return True
        if 1 <= line <= len(self.lines):
            match = _DISABLE_LINE.search(self.lines[line - 1])
            if match:
                ids = {r.strip() for r in match.group(1).split(",")}
                return rule_id in ids
        return False

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
        )


class Rule:
    """Base class for simlint rules.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`rationale`,
    and implement :meth:`visit_file`; cross-file rules also implement
    :meth:`finalize`, which runs after every file has been visited.  One
    rule instance lives for one :class:`Linter` run, so instance state is
    the natural place to accumulate cross-file facts.
    """

    rule_id: str = "SL000"
    title: str = ""
    rationale: str = ""

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        del ctx
        return []

    def finalize(self) -> list[Finding]:
        return []


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not re.fullmatch(r"SL\d{3}", cls.rule_id):
        raise ValueError(f"bad rule id {cls.rule_id!r} (expected SLnnn)")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


class Linter:
    """Runs a set of rules over a set of paths.

    Parameters
    ----------
    rules:
        Rule ids to run (default: every registered rule).
    """

    def __init__(self, rules: set[str] | None = None) -> None:
        # Import for the registration side effect; cheap and idempotent.
        from . import rules as _rules  # noqa: F401

        selected = rules if rules is not None else set(RULE_REGISTRY)
        unknown = selected - set(RULE_REGISTRY)
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        self.rule_ids = sorted(selected)

    # ------------------------------------------------------------------
    @staticmethod
    def collect_files(paths: list[str]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise LintError(f"no such file or directory: {raw}")
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        # De-duplicate while preserving order.
        seen: set[Path] = set()
        unique = []
        for f in files:
            resolved = f.resolve()
            if resolved not in seen:
                seen.add(resolved)
                unique.append(f)
        return unique

    def run(self, paths: list[str]) -> list[Finding]:
        """Lint ``paths`` (files or directory trees); returns findings."""
        # Fresh rule instances per run: cross-file rules accumulate state.
        rules = [RULE_REGISTRY[rule_id]() for rule_id in self.rule_ids]
        contexts: list[FileContext] = []
        for path in self.collect_files(paths):
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise LintError(f"cannot read {path}: {exc}") from exc
            try:
                contexts.append(FileContext(path, str(path), source))
            except SyntaxError as exc:
                raise LintError(f"cannot parse {path}: {exc}") from exc

        findings: list[Finding] = []
        context_by_path: dict[str, FileContext] = {}
        for ctx in contexts:
            context_by_path[ctx.display_path] = ctx
            for rule in rules:
                for finding in rule.visit_file(ctx):
                    if not ctx.is_suppressed(finding.rule, finding.line):
                        findings.append(finding)
        for rule in rules:
            for finding in rule.finalize():
                ctx_for = context_by_path.get(finding.path)
                if ctx_for is None or not ctx_for.is_suppressed(
                    finding.rule, finding.line
                ):
                    findings.append(finding)
        return sorted(findings)
