"""Call-graph construction and reachability over the program model.

Resolution is deliberately *sound-ish, not complete*: an edge is added only
when the callee can be identified with high confidence --

* plain-name calls to functions of the same module;
* calls through ``from mod import fn`` / ``import mod`` bindings that land
  in a linted module (relative imports already canonicalized by the model);
* ``self.method()`` / ``cls.method()`` inside a class body;
* ``obj.method()`` where ``obj`` is a local variable (or parameter default)
  assigned from the constructor of a class the model knows.

Unresolvable calls simply contribute no edge; rules built on reachability
therefore under-approximate, which keeps them quiet rather than noisy.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Callable, Iterator

from .._ast_utils import dotted_name
from .model import FunctionInfo, ModuleInfo, ProgramModel

__all__ = ["CallGraph", "build_call_graph", "reaching"]


def _local_class_types(
    fn: FunctionInfo, model: ProgramModel
) -> dict[str, tuple[ModuleInfo, str]]:
    """Locals assigned from a known class constructor -> (module, class)."""
    types: dict[str, tuple[ModuleInfo, str]] = {}
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and isinstance(node.value, ast.Call)):
            continue
        dotted = dotted_name(node.value.func)
        if dotted is None:
            continue
        located = model.lookup_class(fn.module.expand(dotted))
        if located is not None:
            types[target.id] = located
    return types


def resolve_call(
    model: ProgramModel,
    caller: FunctionInfo,
    call: ast.Call,
    local_types: dict[str, tuple[ModuleInfo, str]] | None = None,
) -> FunctionInfo | None:
    """The :class:`FunctionInfo` a call lands in, when identifiable."""
    module = caller.module
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name].get("__init__")
        bound = module.import_bindings.get(name)
        if bound is not None:
            target = model.lookup(bound)
            if isinstance(target, FunctionInfo):
                return target
            if isinstance(target, dict):  # class constructor
                return target.get("__init__")
        return None
    if isinstance(func, ast.Attribute):
        dotted = dotted_name(func)
        if dotted is not None:
            target = model.lookup(module.expand(dotted))
            if isinstance(target, FunctionInfo):
                return target
            if isinstance(target, dict):
                return target.get("__init__")
        receiver = func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and caller.class_name is not None
        ):
            methods = module.classes.get(caller.class_name, {})
            return methods.get(func.attr)
        if isinstance(receiver, ast.Name) and local_types:
            located = local_types.get(receiver.id)
            if located is not None:
                owner, class_name = located
                return owner.classes.get(class_name, {}).get(func.attr)
    return None


class CallGraph:
    """Resolved call edges plus per-call-site bookkeeping."""

    def __init__(self, model: ProgramModel) -> None:
        self.model = model
        self.edges: dict[FunctionInfo, set[FunctionInfo]] = defaultdict(set)
        self.reverse: dict[FunctionInfo, set[FunctionInfo]] = defaultdict(set)
        #: (caller, call node) -> resolved callee, for flow-sensitive rules.
        self.call_sites: dict[tuple[int, int], FunctionInfo] = {}
        self._functions = model.all_functions()
        for fn in self._functions:
            local_types = _local_class_types(fn, model)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolve_call(model, fn, node, local_types)
                if callee is None:
                    continue
                self.edges[fn].add(callee)
                self.reverse[callee].add(fn)
                self.call_sites[(id(fn), id(node))] = callee

    def functions(self) -> list[FunctionInfo]:
        return self._functions

    def callee_of(self, fn: FunctionInfo, call: ast.Call) -> FunctionInfo | None:
        return self.call_sites.get((id(fn), id(call)))

    def calls(self, fn: FunctionInfo) -> Iterator[tuple[ast.Call, FunctionInfo | None]]:
        """Every call expression in ``fn`` with its resolved callee."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield node, self.callee_of(fn, node)


def build_call_graph(model: ProgramModel) -> CallGraph:
    return CallGraph(model)


def reaching(
    graph: CallGraph, is_sink: Callable[[FunctionInfo], bool]
) -> set[FunctionInfo]:
    """Functions that contain a sink or reach one through resolved calls."""
    reached: set[FunctionInfo] = {fn for fn in graph.functions() if is_sink(fn)}
    frontier = list(reached)
    while frontier:
        fn = frontier.pop()
        for caller in graph.reverse.get(fn, ()):
            if caller not in reached:
                reached.add(caller)
                frontier.append(caller)
    return reached
