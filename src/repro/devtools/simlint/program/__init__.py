"""Whole-program analysis for simlint: module graph, call graph, taint.

The per-file rules (SL001-SL010) see one AST at a time; the contracts they
enforce, however, span module boundaries -- an unseeded generator built
three calls below ``run_chunk`` is exactly as damaging as one built inline.
This package promotes simlint to a program analysis engine in three layers:

1. :mod:`.model` -- parse every linted file into a :class:`ProgramModel`:
   dotted module names (package roots are detected via ``__init__.py``
   chains), per-module symbol tables (functions, classes, methods) and an
   import table that resolves absolute *and* relative imports against the
   set of linted modules.
2. :mod:`.callgraph` -- a :class:`CallGraph` over the model: direct calls,
   ``from``-imported and attribute-qualified calls, ``self.method`` calls,
   and locally-typed ``obj.method()`` calls all resolve to their defining
   :class:`FunctionInfo`; reverse edges support reachability queries
   ("which functions can feed a ``TrialAggregate``?").
3. :mod:`.taint` -- RNG-provenance taint analysis: a fixpoint over function
   summaries proving that every random draw derives from an explicitly
   seeded stream, transitively across calls, attribute stores, and module
   boundaries.

Whole-program rules (SL011-SL015) subclass
:class:`~repro.devtools.simlint.core.ProgramRule` and consume the model via
``visit_program``.
"""

from __future__ import annotations

from .callgraph import CallGraph, reaching
from .model import FunctionInfo, ModuleInfo, ProgramModel, build_program
from .taint import TaintAnalysis

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramModel",
    "TaintAnalysis",
    "build_program",
    "reaching",
]
