"""RNG-provenance taint analysis (the engine behind SL011).

The reproducibility contract: every random draw on a result-affecting path
must derive from an explicitly seeded stream (ultimately the per-trial
``SeedSequence.spawn`` children the runners hand out).  This module proves
the property by taint: *entropy sources* -- ``np.random.default_rng()``
with no seed, ``SeedSequence()`` with no entropy, wall-clock reads
(``time.time`` and friends), ``os.urandom``, ``secrets.*``, ``uuid.uuid4``,
and the stdlib ``random`` module -- produce tainted values; taint
propagates through assignments, arithmetic, containers, attribute stores
(``self.rng = ...``), and *function calls*, via per-function summaries
iterated to a fixpoint over the call graph.

Two kinds of sites are reported:

* a **draw** (``g.random()``, ``g.integers()``, ...) whose receiver is
  tainted -- the generator's provenance is OS entropy or wall clock,
  possibly constructed many calls away;
* a **seeding** (``default_rng(x)`` / ``SeedSequence(x)`` /
  ``Generator(x)``) whose seed expression is tainted -- laundering
  ``time.time()`` through ``int()`` does not make a run reproducible.

Parameters are trusted: a generator built from a parameter
(``default_rng(ctx.seed_sequence)``) is clean, because the runners own the
root streams.  Plain wall-clock telemetry (``wall = time.perf_counter()``)
is never reported -- taint only matters when it reaches a draw or a seed.
"""

from __future__ import annotations

import ast
from typing import NamedTuple

from .._ast_utils import dotted_name
from .callgraph import CallGraph
from .model import FunctionInfo

__all__ = ["TaintAnalysis", "TaintedSite", "DRAW_METHODS"]

#: ``numpy.random.Generator`` draw methods (mirrors the SL002 set, plus
#: ``spawn`` so tainted SeedSequence trees propagate).
DRAW_METHODS = frozenset({
    "random", "integers", "choice", "shuffle", "permutation", "permuted",
    "exponential", "normal", "standard_normal", "uniform", "weibull",
    "poisson", "binomial", "geometric", "gamma", "beta", "chisquare",
    "lognormal", "pareto", "rayleigh", "triangular", "bytes",
})

#: Canonical dotted names whose call result is nondeterministic entropy.
ENTROPY_SOURCES = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})

#: Generator/seed constructors: tainted iff unseeded or seeded with taint.
_SEED_CTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
})


class TaintedSite(NamedTuple):
    """One SL011-reportable location."""

    fn: FunctionInfo
    node: ast.AST
    kind: str  # "draw" | "seed"
    detail: str


def walk_own(root: ast.AST) -> list[ast.AST]:
    """Like ``ast.walk`` but stops at nested function/lambda scopes.

    Locals and returns of a nested ``def`` belong to *its* scope; mixing
    them into the enclosing function's flow pass would let a closure's
    tainted return poison the outer summary.
    """
    out: list[ast.AST] = []
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)
    return out


class _FunctionPass:
    """One flow pass over a single function with the current summaries."""

    def __init__(self, analysis: "TaintAnalysis", fn: FunctionInfo) -> None:
        self.analysis = analysis
        self.fn = fn
        self.tainted_locals: set[str] = set()
        self.returns_tainted = False
        self.sites: list[TaintedSite] = []

    # ------------------------------------------------------------------
    def run(self, report: bool) -> None:
        # Statements in source order: simple forward dataflow over locals.
        stmts = sorted(
            (node for node in walk_own(self.fn.node)
             if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                  ast.Return))),
            key=lambda n: (n.lineno, n.col_offset),
        )
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if stmt.value is not None and self.expr_taint(stmt.value):
                    self.returns_tainted = True
                continue
            value = stmt.value
            if value is None:
                continue
            is_tainted = self.expr_taint(value)
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                self._assign(target, is_tainted, augmented=isinstance(
                    stmt, ast.AugAssign
                ))
        if report:
            self._report_sites()

    def _assign(self, target: ast.expr, tainted: bool, augmented: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted_locals.add(target.id)
            elif not augmented:
                self.tainted_locals.discard(target.id)
        elif isinstance(target, ast.Attribute):
            # self.x = tainted  ->  the attribute is tainted class-wide.
            if (
                tainted
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.class_name is not None
            ):
                key = (self.fn.module.name, self.fn.class_name, target.attr)
                self.analysis.tainted_attrs.add(key)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, tainted, augmented)

    # ------------------------------------------------------------------
    def expr_taint(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted_locals
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.fn.class_name is not None
            ):
                key = (self.fn.module.name, self.fn.class_name, node.attr)
                return key in self.analysis.tainted_attrs
            return self.expr_taint(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Subscript):
            return self.expr_taint(node.value)
        # Containers, arithmetic, comprehensions, f-strings: tainted if any
        # sub-expression is.
        return any(
            self.expr_taint(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    def _call_taint(self, node: ast.Call) -> bool:
        args_tainted = any(
            self.expr_taint(a) for a in node.args
            if not isinstance(a, ast.Starred)
        ) or any(self.expr_taint(k.value) for k in node.keywords)

        resolved = self._canonical(node)
        if resolved is not None:
            if resolved in ENTROPY_SOURCES:
                return True
            if resolved in _SEED_CTORS:
                if not node.args and not node.keywords:
                    return True  # unseeded: OS entropy
                return args_tainted
            head = resolved.split(".", 1)[0]
            if head == "random":
                return True  # stdlib random module state
        callee = self.analysis.graph.callee_of(self.fn, node)
        if callee is not None:
            return self.analysis.summaries.get(callee, False)
        if isinstance(node.func, ast.Attribute):
            # method call on a tainted receiver (``.spawn``, slicing chains)
            if self.expr_taint(node.func.value):
                return True
        # Unknown callable: conservatively propagate through arguments so
        # ``int(time.time())`` stays tainted for the seed-site check.
        return args_tainted

    def _canonical(self, node: ast.Call) -> str | None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        return self.fn.module.expand(dotted)

    def _is_stdlib_random(self, node: ast.Call, resolved: str) -> bool:
        """A call into the stdlib ``random`` module's global state.

        Requires the root name to be an actual import binding so a local
        variable that happens to be called ``random`` cannot trip it.
        """
        if resolved.split(".", 1)[0] != "random":
            return False
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        bound = self.fn.module.import_bindings.get(dotted.split(".", 1)[0])
        return bound is not None and bound.split(".", 1)[0] == "random"

    # ------------------------------------------------------------------
    def _report_sites(self) -> None:
        for node in walk_own(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._canonical(node)
            if resolved is not None and self._is_stdlib_random(node, resolved):
                self.sites.append(TaintedSite(
                    self.fn, node, "draw",
                    "stdlib random draws from unseeded global state",
                ))
                continue
            if resolved in _SEED_CTORS and (node.args or node.keywords):
                seed_tainted = any(
                    self.expr_taint(a) for a in node.args
                    if not isinstance(a, ast.Starred)
                ) or any(self.expr_taint(k.value) for k in node.keywords)
                if seed_tainted:
                    self.sites.append(TaintedSite(
                        self.fn, node, "seed",
                        "generator seeded from wall-clock/OS entropy",
                    ))
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in DRAW_METHODS
                and self.expr_taint(node.func.value)
            ):
                self.sites.append(TaintedSite(
                    self.fn, node, "draw",
                    "draws from a generator whose provenance is not a "
                    "seeded stream",
                ))


class TaintAnalysis:
    """Fixpoint of per-function taint summaries over the call graph."""

    MAX_ROUNDS = 24

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: fn -> returns a tainted value.
        self.summaries: dict[FunctionInfo, bool] = {}
        #: (module, class, attr) stored from a tainted expression.
        self.tainted_attrs: set[tuple[str, str, str]] = set()
        self._solve()

    def _solve(self) -> None:
        functions = self.graph.functions()
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for fn in functions:
                attrs_before = len(self.tainted_attrs)
                single = _FunctionPass(self, fn)
                single.run(report=False)
                if single.returns_tainted and not self.summaries.get(fn, False):
                    self.summaries[fn] = True
                    changed = True
                if len(self.tainted_attrs) != attrs_before:
                    changed = True
            if not changed:
                return

    def report(self) -> list[TaintedSite]:
        """All draw/seed sites with tainted provenance, program-wide."""
        sites: list[TaintedSite] = []
        for fn in self.graph.functions():
            final = _FunctionPass(self, fn)
            final.run(report=True)
            sites.extend(final.sites)
        return sites
