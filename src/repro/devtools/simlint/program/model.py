"""The program model: modules, symbols, and import resolution.

A :class:`ProgramModel` is built from the :class:`FileContext` objects of
one lint run.  Each file becomes a :class:`ModuleInfo` with a dotted name
derived from its position in the package tree (``src/repro/sim/burst.py``
-> ``repro.sim.burst``; a loose script outside any package is just its
stem).  Per-module symbol tables record top-level functions, classes, and
methods; the import table maps local binding names to the dotted path they
refer to, with ``from .. import x`` relative levels resolved against the
module's own package.

Symbol lookup (:meth:`ProgramModel.lookup`) resolves a dotted path by
longest-known-module prefix, so ``repro.sim.burst.mc_trial`` finds the
function even when only some of the package was linted, and fixture trees
with bare top-level modules (``helpers.draw``) resolve the same way.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path

from ..core import FileContext

__all__ = ["FunctionInfo", "ModuleInfo", "ProgramModel", "build_program"]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclasses.dataclass(eq=False)
class FunctionInfo:
    """One function or method definition in the program."""

    module: "ModuleInfo"
    qualname: str  # "fn" or "Cls.fn"
    node: FunctionNode
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def full_name(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.full_name}>"


@dataclasses.dataclass(eq=False)
class ModuleInfo:
    """One linted source file with its symbols and import table."""

    name: str
    ctx: FileContext
    is_package: bool = False
    functions: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: dict[str, dict[str, FunctionInfo]] = dataclasses.field(
        default_factory=dict
    )
    #: Local binding -> the dotted path it names (``np`` -> ``numpy``,
    #: ``mc_trial`` -> ``repro.sim.burst.mc_trial``).
    import_bindings: dict[str, str] = dataclasses.field(default_factory=dict)

    def expand(self, dotted: str) -> str:
        """Expand an alias-rooted dotted path to its canonical form."""
        head, _, rest = dotted.partition(".")
        target = self.import_bindings.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleInfo {self.name}>"


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, walking up ``__init__.py`` chains."""
    resolved = path.resolve()
    parts: list[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    cur = resolved.parent
    while (cur / "__init__.py").exists() and cur.name:
        parts.insert(0, cur.name)
        parent = cur.parent
        if parent == cur:
            break
        cur = parent
    return ".".join(parts) if parts else resolved.stem


def _collect_symbols(module: ModuleInfo) -> None:
    for stmt in module.ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = FunctionInfo(
                module=module, qualname=stmt.name, node=stmt
            )
        elif isinstance(stmt, ast.ClassDef):
            methods: dict[str, FunctionInfo] = {}
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = FunctionInfo(
                        module=module,
                        qualname=f"{stmt.name}.{item.name}",
                        node=item,
                        class_name=stmt.name,
                    )
            module.classes[stmt.name] = methods


def _collect_imports(module: ModuleInfo) -> None:
    pkg_parts = module.name.split(".")
    if not module.is_package:
        pkg_parts = pkg_parts[:-1]
    for node in ast.walk(module.ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.import_bindings[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    module.import_bindings.setdefault(top, top)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                if not base and not pkg_parts:
                    continue  # relative import outside any package
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.import_bindings[bound] = f"{prefix}.{alias.name}"


class ProgramModel:
    """Modules, symbols, and cross-module lookup for one lint run."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        for module in modules:
            # First definition of a dotted name wins; collisions can only
            # happen for loose same-stem scripts in different directories.
            self.modules.setdefault(module.name, module)
        self.by_path: dict[str, ModuleInfo] = {
            m.ctx.display_path: m for m in modules
        }

    # ------------------------------------------------------------------
    def all_functions(self) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        for module in self.modules.values():
            out.extend(module.functions.values())
            for methods in module.classes.values():
                out.extend(methods.values())
        return out

    def lookup(self, dotted: str) -> FunctionInfo | dict[str, FunctionInfo] | None:
        """Resolve a canonical dotted path to a function or class.

        Returns a :class:`FunctionInfo` for functions and methods, the
        method table (``dict``) for classes (i.e. a constructor
        reference), or ``None`` when the path does not land in a linted
        module.  Resolution takes the longest known-module prefix, so
        partial lints still resolve what they can see.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return None  # a module, not a callable
            if len(rest) == 1:
                if rest[0] in module.functions:
                    return module.functions[rest[0]]
                if rest[0] in module.classes:
                    return module.classes[rest[0]]
                return None
            if len(rest) == 2 and rest[0] in module.classes:
                return module.classes[rest[0]].get(rest[1])
            return None
        return None

    def lookup_class(self, dotted: str) -> tuple[ModuleInfo, str] | None:
        """Resolve a dotted path to a (module, class-name) pair, if a class."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = self.modules.get(".".join(parts[:cut]))
            if module is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1 and rest[0] in module.classes:
                return module, rest[0]
            return None
        return None


def build_program(contexts: list[FileContext]) -> ProgramModel:
    """Build the program model for one lint run's parsed files."""
    modules: list[ModuleInfo] = []
    for ctx in contexts:
        module = ModuleInfo(
            name=module_name_for(ctx.path),
            ctx=ctx,
            is_package=ctx.path.name == "__init__.py",
        )
        _collect_symbols(module)
        _collect_imports(module)
        modules.append(module)
    return ProgramModel(modules)
