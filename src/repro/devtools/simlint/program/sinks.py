"""Result-sink detection: which functions can affect result artifacts?

Several whole-program rules only fire on *result-affecting paths* -- code
that can reach a :class:`~repro.runtime.runner.TrialAggregate`, the result
metrics registry, or result-trace emission.  A function is a direct sink
when its body

* constructs or merges a ``TrialAggregate`` (``TrialAggregate(...)``,
  ``agg.add(...)``, ``aggregate.merge(...)``),
* emits a trace event on a non-ops recorder (``trace.event(...)``), or
* touches a non-ops metrics registry (``metrics.counter/gauge/histogram``),

and is a *reaching* sink when a resolved call chain leads to a direct one.
Receivers whose attribute chain mentions ``ops`` (``self.ops_metrics``,
``ops_trace``) are operational telemetry and deliberately excluded: the
byte-identity contract (PRs 5-7) segregates those from result artifacts.
"""

from __future__ import annotations

import ast

from .._ast_utils import attribute_chain
from .callgraph import CallGraph, reaching
from .model import FunctionInfo

__all__ = ["is_result_sink", "result_reaching_functions"]

_AGGREGATE_HINTS = ("agg", "aggregate")
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _chain_mentions(chain: list[str], *needles: str) -> bool:
    return any(needle in segment.lower() for segment in chain for needle in needles)


def is_result_sink(fn: FunctionInfo) -> bool:
    """True when ``fn``'s body directly feeds result artifacts."""
    if fn.class_name == "TrialAggregate":
        return True
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "TrialAggregate":
                return True
            continue
        if not isinstance(func, ast.Attribute):
            continue
        chain = attribute_chain(func.value)
        if _chain_mentions(chain, "ops"):
            continue  # operational telemetry, not results
        if func.attr in ("add", "merge") and _chain_mentions(
            chain, *_AGGREGATE_HINTS
        ):
            return True
        if func.attr == "event" and _chain_mentions(chain, "trace"):
            return True
        if func.attr in _METRIC_METHODS and _chain_mentions(chain, "metric"):
            return True
    return False


def result_reaching_functions(graph: CallGraph) -> set[FunctionInfo]:
    """Functions that are result sinks or reach one through calls."""
    return reaching(graph, is_result_sink)
