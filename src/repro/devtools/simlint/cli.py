"""Command-line front end for simlint.

Exit codes: 0 -- no findings; 1 -- findings reported; 2 -- usage error
or a target that could not be linted (missing path, syntax error).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence, TextIO

from .core import RULE_REGISTRY, LintError, Linter

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Domain-aware static analysis for the MLEC simulator: seeded "
            "randomness, event-dispatch exhaustiveness, unit discipline, "
            "and pool picklability."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules(out: TextIO) -> None:
    # Ensure built-in rules are registered before listing.
    Linter()
    for rule_id in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[rule_id]
        out.write(f"{rule_id}  {rule.title}\n    {rule.rationale}\n")


def main(argv: Sequence[str] | None = None, out: TextIO | None = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    selected: set[str] | None = None
    if args.rules:
        selected = {r.strip() for r in args.rules.split(",") if r.strip()}

    try:
        linter = Linter(rules=selected)
        findings = linter.run(list(args.paths))
    except LintError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        out.write(json.dumps(
            {"findings": [f.to_json() for f in findings]}, indent=2,
        ))
        out.write("\n")
    else:
        for finding in findings:
            out.write(finding.format() + "\n")
        if findings:
            out.write(f"simlint: {len(findings)} finding(s)\n")
    return 1 if findings else 0
