"""Command-line front end for simlint.

Exit codes: 0 -- no (non-baselined) findings; 1 -- findings reported
(including SL000 diagnostics for files that do not parse); 2 -- usage
error or a target that could not be linted (missing path, unreadable
file, broken baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence, TextIO

from .baseline import (
    DEFAULT_BASELINE_PATH,
    filter_findings,
    load_baseline,
    write_baseline,
)
from .cache import DEFAULT_CACHE_PATH, run_with_cache
from .core import RULE_REGISTRY, Finding, LintError, Linter
from .sarif import render_sarif

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Domain-aware static analysis for the MLEC simulator: seeded "
            "randomness (per-file and whole-program taint), event-dispatch "
            "exhaustiveness, unit discipline, pool picklability, "
            "deterministic iteration/fold order, and telemetry segregation."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", nargs="?", const=DEFAULT_BASELINE_PATH,
        help=(
            "suppress findings recorded in the baseline file "
            f"(default path: {DEFAULT_BASELINE_PATH})"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--cache", metavar="PATH", nargs="?", const=DEFAULT_CACHE_PATH,
        help=(
            "reuse per-file results keyed by content hash "
            f"(default path: {DEFAULT_CACHE_PATH})"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules(out: TextIO) -> None:
    # Ensure built-in rules are registered before listing.
    Linter()
    for rule_id in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[rule_id]
        out.write(f"{rule_id}  {rule.title}\n    {rule.rationale}\n")


def _render(
    findings: list[Finding],
    fmt: str,
    rule_ids: list[str],
    baselined: int,
) -> str:
    if fmt == "json":
        return json.dumps(
            {"findings": [f.to_json() for f in findings]}, indent=2,
        ) + "\n"
    if fmt == "sarif":
        return render_sarif(findings, rule_ids)
    chunks = [f.format() + "\n" for f in findings]
    if findings:
        chunks.append(f"simlint: {len(findings)} finding(s)\n")
    if baselined:
        chunks.append(f"simlint: {baselined} baselined finding(s) hidden\n")
    return "".join(chunks)


def main(argv: Sequence[str] | None = None, out: TextIO | None = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    selected: set[str] | None = None
    if args.rules:
        selected = {r.strip() for r in args.rules.split(",") if r.strip()}

    baseline_path = args.baseline
    if args.update_baseline and baseline_path is None:
        baseline_path = DEFAULT_BASELINE_PATH

    try:
        linter = Linter(rules=selected)
        if args.cache:
            findings = run_with_cache(linter, list(args.paths), args.cache)
        else:
            findings = linter.run(list(args.paths))

        if args.update_baseline:
            previous: dict[str, dict[str, object]] = {}
            try:
                previous = load_baseline(baseline_path)
            except LintError:
                pass  # first write, or a corrupt file being replaced
            count = write_baseline(findings, baseline_path, previous)
            print(
                f"simlint: baseline {baseline_path} updated "
                f"({count} finding(s))",
                file=sys.stderr,
            )
            return 0

        baselined = 0
        if baseline_path is not None:
            findings, baselined = filter_findings(
                findings, load_baseline(baseline_path)
            )
    except LintError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2

    report = _render(findings, args.format, linter.rule_ids, baselined)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report)
        except OSError as exc:
            print(f"simlint: error: cannot write {args.output}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        out.write(report)
    return 1 if findings else 0
