"""simlint: domain-aware static analysis for the MLEC simulator.

An AST-based lint suite (stdlib only) enforcing the simulation contracts
ordinary linters cannot see: seeded and plumbed randomness (SL001/SL002),
exhaustive event dispatch (SL003), no float equality in the numerical
core (SL004), unit discipline at annotated call sites (SL005), and
picklable trial callables (SL006).

Run it as ``mlec-sim lint <paths>`` or ``python -m repro.devtools.simlint``.
See ``docs/static-analysis.md`` for the rule catalogue, suppression
syntax, and how to add a rule.
"""

from __future__ import annotations

from .core import (
    RULE_REGISTRY,
    FileContext,
    Finding,
    LintError,
    Linter,
    Rule,
    register_rule,
)

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "Linter",
    "LintError",
]
