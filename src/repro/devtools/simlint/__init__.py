"""simlint: domain-aware static analysis for the MLEC simulator.

An AST-based lint suite (stdlib only) enforcing the simulation contracts
ordinary linters cannot see: seeded and plumbed randomness (SL001/SL002),
exhaustive event dispatch (SL003), no float equality in the numerical
core (SL004), unit discipline at annotated call sites (SL005), picklable
trial callables (SL006), campaign hygiene (SL007-SL010), and a
whole-program layer (module graph -> call graph -> taint) backing
RNG provenance (SL011), deterministic iteration and fold order
(SL012/SL014), pickle-boundary reachability (SL013), and ops/result
telemetry segregation (SL015).

Run it as ``mlec-sim lint <paths>`` or ``python -m repro.devtools.simlint``.
See ``docs/static-analysis.md`` for the rule catalogue, suppression
syntax, baseline/SARIF workflow, and how to add a rule.
"""

from __future__ import annotations

from .baseline import (
    DEFAULT_BASELINE_PATH,
    filter_findings,
    load_baseline,
    write_baseline,
)
from .cache import DEFAULT_CACHE_PATH, run_with_cache
from .core import (
    META_RULE_ID,
    RULE_REGISTRY,
    FileContext,
    Finding,
    LintError,
    Linter,
    ProgramRule,
    Rule,
    register_rule,
)
from .sarif import render_sarif, to_sarif

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProgramRule",
    "RULE_REGISTRY",
    "META_RULE_ID",
    "register_rule",
    "Linter",
    "LintError",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "load_baseline",
    "filter_findings",
    "write_baseline",
    "run_with_cache",
    "to_sarif",
    "render_sarif",
]
