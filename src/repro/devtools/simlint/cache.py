"""Incremental result cache: content-hashed, two-granularity.

The whole-program pass makes simlint meaningfully more expensive than a
per-file walk (module graph + call graph + taint fixpoint), which matters
for the pre-commit hook and for CI re-runs.  The cache keeps warm runs
fast without ever trading away correctness:

* **run level** -- a key over the rule set and every file's content hash.
  When nothing changed, the previous findings are replayed verbatim (no
  parsing at all), byte-identical to a cold run.
* **file level** -- *pure per-file* rules (no ``finalize`` cross-file
  state, not program rules) are cached per ``(file sha256, rule set)``;
  after an edit, only the touched files re-run those rules.

Cross-file and whole-program rules always re-run when any file changed --
their verdicts depend on the whole tree by definition, and caching them
per file would be unsound.  The cache file itself
(:data:`DEFAULT_CACHE_PATH`) is a plain JSON artifact, safe to delete at
any time; a corrupt or version-skewed cache is treated as empty.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .core import Finding, Linter

__all__ = ["DEFAULT_CACHE_PATH", "run_with_cache"]

DEFAULT_CACHE_PATH = ".simlint-cache.json"
#: Bump when rule semantics or the cache layout change: stale per-file
#: verdicts from an older simlint must never be replayed.
_CACHE_VERSION = 1


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _load_cache(path: Path) -> dict[str, object]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("version") != _CACHE_VERSION:
        return {}
    return payload


def _dump_findings(findings: list[Finding]) -> list[dict[str, object]]:
    return [f.to_json() for f in findings]


def _load_findings(raw: object) -> list[Finding] | None:
    if not isinstance(raw, list):
        return None
    try:
        return [Finding.from_json(obj) for obj in raw]
    except (KeyError, TypeError, ValueError):
        return None


def run_with_cache(
    linter: Linter, paths: list[str], cache_path: str | Path
) -> list[Finding]:
    """Like :meth:`Linter.run`, reusing cached verdicts where sound."""
    cache_file = Path(cache_path)
    files = linter.collect_files(paths)

    hashes: dict[str, str] = {}
    for path in files:
        hashes[str(path)] = _sha256(path.read_bytes())

    rules_key = _sha256(
        json.dumps([_CACHE_VERSION, linter.rule_ids]).encode()
    )
    run_key = _sha256(
        json.dumps([rules_key, sorted(hashes.items())]).encode()
    )

    cache = _load_cache(cache_file)
    if cache.get("run_key") == run_key:
        cached = _load_findings(cache.get("findings"))
        if cached is not None:
            return cached

    contexts, findings = linter.parse(files)
    per_file, cross, program = linter.partition_rules()

    file_entries: dict[str, dict[str, object]] = {}
    old_files = cache.get("files", {})
    if not isinstance(old_files, dict):
        old_files = {}
    for ctx in contexts:
        key = ctx.display_path
        fhash = hashes[key]
        old = old_files.get(key)
        reused: list[Finding] | None = None
        if (
            isinstance(old, dict)
            and old.get("sha256") == fhash
            and old.get("rules_key") == rules_key
        ):
            reused = _load_findings(old.get("findings"))
        if reused is None:
            reused = linter.run_file_rules(ctx, per_file)
        findings.extend(reused)
        file_entries[key] = {
            "sha256": fhash,
            "rules_key": rules_key,
            "findings": _dump_findings(reused),
        }

    findings.extend(linter.run_cross_rules(contexts, cross))
    findings.extend(linter.run_program_rules(contexts, program))
    findings = sorted(findings)

    payload = {
        "version": _CACHE_VERSION,
        "run_key": run_key,
        "findings": _dump_findings(findings),
        "files": file_entries,
    }
    try:
        cache_file.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
    except OSError:
        pass  # a read-only tree degrades to uncached linting
    return findings
