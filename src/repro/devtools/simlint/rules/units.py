"""SL005 unit-discipline: don't mix annotated physical units.

``core/types.py`` defines ``NewType`` unit aliases (``Seconds``, ``Hours``,
``Years``, ``Bytes``, ``GiB``, ``MiBps``).  At runtime they are plain
floats -- which is exactly why Table 2-style models that mix hours with
years or chunks with bytes fail silently.  This rule statically checks
unit-annotated call sites:

* a call to a function whose parameter is annotated with one unit must
  not pass an expression whose unit is known to be a *different* unit
  (a ``Hours(...)`` constructor result, or a variable annotated with a
  unit);
* a unit constructor must not be applied directly to a value of another
  unit (``Hours(x)`` where ``x: Seconds``) -- that relabels without
  converting; use the explicit conversion helpers.

Expressions whose unit cannot be determined statically pass unchecked:
the rule is sound on what it knows and silent on what it does not.
"""

from __future__ import annotations

import ast
import dataclasses

from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["UnitDiscipline", "UNIT_NAMES"]

#: The unit aliases defined in ``repro.core.types``.
UNIT_NAMES = frozenset({"Seconds", "Hours", "Years", "Bytes", "GiB", "MiBps"})


def _annotation_unit(annotation: ast.expr | None) -> str | None:
    """The unit name an annotation refers to, if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name) and annotation.id in UNIT_NAMES:
        return annotation.id
    if isinstance(annotation, ast.Attribute) and annotation.attr in UNIT_NAMES:
        return annotation.attr
    if isinstance(annotation, ast.Constant) and annotation.value in UNIT_NAMES:
        return str(annotation.value)
    return None


@dataclasses.dataclass(frozen=True)
class _UnitParam:
    index: int  # positional index with self/cls stripped; -1 if kw-only
    name: str
    unit: str


@dataclasses.dataclass(frozen=True)
class _CallRecord:
    path: str
    line: int
    col: int
    callee: str
    #: (positional index, keyword name, inferred unit) per determinable arg.
    args: tuple[tuple[int | None, str | None, str], ...]


@register_rule
class UnitDiscipline(Rule):
    """SL005: unit-annotated call sites must agree on the unit."""

    rule_id = "SL005"
    title = "unit-discipline"
    cross_file = True
    rationale = (
        "Hours-vs-years and chunks-vs-bytes mixups change durability "
        "results by orders of magnitude without crashing; unit-annotated "
        "APIs make the contract explicit and this rule enforces it at "
        "call sites."
    )

    def __init__(self) -> None:
        # Callee simple name -> unit-annotated params.  None marks a name
        # with conflicting signatures across the project (ambiguous).
        self._defs: dict[str, tuple[_UnitParam, ...] | None] = {}
        self._calls: list[_CallRecord] = []

    # ------------------------------------------------------------------
    def visit_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        self._collect_defs(ctx.tree)
        module_scope = self._annotated_names(ctx.tree.body)
        for stmt in ctx.tree.body:
            self._walk(ctx, stmt, module_scope, findings)
        return findings

    @staticmethod
    def _annotated_names(body: list[ast.stmt]) -> dict[str, str]:
        names: dict[str, str] = {}
        for stmt in body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                unit = _annotation_unit(stmt.annotation)
                if unit is not None:
                    names[stmt.target.id] = unit
        return names

    def _collect_defs(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params: list[_UnitParam] = []
            positional = node.args.posonlyargs + node.args.args
            if positional and positional[0].arg in ("self", "cls"):
                positional = positional[1:]
            for index, arg in enumerate(positional):
                unit = _annotation_unit(arg.annotation)
                if unit is not None:
                    params.append(_UnitParam(index, arg.arg, unit))
            for arg in node.args.kwonlyargs:
                unit = _annotation_unit(arg.annotation)
                if unit is not None:
                    params.append(_UnitParam(-1, arg.arg, unit))
            if not params:
                continue
            signature = tuple(params)
            if node.name in self._defs and self._defs[node.name] != signature:
                self._defs[node.name] = None  # ambiguous across the project
            else:
                self._defs[node.name] = signature

    # ------------------------------------------------------------------
    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        scope: dict[str, str],
        findings: list[Finding],
    ) -> None:
        """Scope-aware traversal: function bodies get their own bindings."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = dict(scope)
            for arg in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            ):
                unit = _annotation_unit(arg.annotation)
                if unit is not None:
                    inner[arg.arg] = unit
            inner.update(self._annotated_names(node.body))
            for child in node.body:
                self._walk(ctx, child, inner, findings)
            return
        if isinstance(node, ast.Call):
            self._handle_call(ctx, node, scope, findings)
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child, scope, findings)

    def _infer_unit(self, node: ast.expr, scope: dict[str, str]) -> str | None:
        if isinstance(node, ast.Name):
            return scope.get(node.id)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in UNIT_NAMES
        ):
            return node.func.id
        return None

    def _handle_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        scope: dict[str, str],
        findings: list[Finding],
    ) -> None:
        # Direct relabeling: Hours(x) where x carries another unit.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in UNIT_NAMES
            and len(node.args) == 1
            and not node.keywords
        ):
            inner = self._infer_unit(node.args[0], scope)
            if inner is not None and inner != node.func.id:
                findings.append(ctx.finding(
                    self.rule_id, node,
                    f"{node.func.id}(...) applied to a {inner} value "
                    "relabels the unit without converting; use an "
                    "explicit conversion helper",
                ))
            return
        callee = self._callee_name(node.func)
        if callee is None:
            return
        records: list[tuple[int | None, str | None, str]] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            unit = self._infer_unit(arg, scope)
            if unit is not None:
                records.append((index, None, unit))
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            unit = self._infer_unit(keyword.value, scope)
            if unit is not None:
                records.append((None, keyword.arg, unit))
        if records:
            self._calls.append(_CallRecord(
                path=ctx.display_path,
                line=node.lineno,
                col=node.col_offset + 1,
                callee=callee,
                args=tuple(records),
            ))

    @staticmethod
    def _callee_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    # ------------------------------------------------------------------
    def finalize(self) -> list[Finding]:
        findings: list[Finding] = []
        for call in self._calls:
            params = self._defs.get(call.callee)
            if not params:  # unknown or ambiguous callee
                continue
            by_index = {p.index: p for p in params if p.index >= 0}
            by_name = {p.name: p for p in params}
            for index, keyword, unit in call.args:
                param = None
                if keyword is not None:
                    param = by_name.get(keyword)
                elif index is not None:
                    param = by_index.get(index)
                if param is not None and unit != param.unit:
                    label = keyword if keyword is not None else param.name
                    findings.append(Finding(
                        path=call.path, line=call.line, col=call.col,
                        rule=self.rule_id,
                        message=(
                            f"argument `{label}` of `{call.callee}` is "
                            f"annotated {param.unit} but receives a {unit} "
                            "value; convert explicitly"
                        ),
                    ))
        return sorted(findings)
