"""SL016 span-discipline: spans open inside ``with``, never bare.

The span tracer (PR 9) offers two emission styles: ``span()`` -- a
context manager that guarantees the matching end record (with error
status) even when the body raises -- and ``emit()``, which records an
already-completed span retrospectively and so cannot leak.  The
low-level ``begin_span`` primitive underlying ``span()`` has neither
guarantee: a bare call followed by an exception leaves the span open
forever, which silently corrupts the trace-report span tree and the
critical-path computation built on top of it.

SL016 flags any ``begin_span`` attribute-call whose call site is *not*
the context expression of a ``with`` item.  The tracer's own ``span()``
wrapper (which pairs ``begin_span`` with ``try/finally``) lives in
:mod:`repro.obs` and is out of scope; everywhere else -- runners,
executors, campaign drivers, the CLI -- must use ``with tracer.span``
or ``tracer.emit``.  Deliberate exceptions (e.g. a long-lived span
closed from another callback) carry ``# simlint: disable=SL016``.
"""

from __future__ import annotations

import ast

from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["SpanDiscipline"]


def _with_item_calls(tree: ast.AST) -> set[int]:
    """``id()``s of Call nodes that are a ``with`` item's context expr."""
    calls: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    calls.add(id(item.context_expr))
    return calls


@register_rule
class SpanDiscipline(Rule):
    """SL016: ``begin_span`` only as a ``with`` item's context expression."""

    rule_id = "SL016"
    title = "span-discipline"
    rationale = (
        "A bare begin_span call leaks an open span when the body raises, "
        "corrupting the span tree and critical path in trace-report; use "
        "`with tracer.span(...)` for scoped spans or tracer.emit(...) for "
        "retrospective ones, or mark a deliberate split-phase span with "
        "# simlint: disable=SL016."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        parts = ctx.path.parts
        # The tracer implementation (repro.obs) legitimately wraps
        # begin_span in try/finally; the linter's own fixtures live
        # under devtools.  Everything else is instrumentation code.
        return "devtools" not in parts and "obs" not in parts

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        findings: list[Finding] = []
        with_calls = _with_item_calls(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "begin_span"
            ):
                continue
            if id(node) in with_calls:
                continue
            findings.append(ctx.finding(
                self.rule_id, node,
                "bare begin_span call; an exception before the matching "
                "end leaks an open span -- use `with tracer.span(...)` "
                "(scoped) or tracer.emit(...) (retrospective), or mark a "
                "deliberate split-phase span with # simlint: disable=SL016",
            ))
        return findings
