"""SL011 rng-provenance: whole-program taint proof of seeded randomness.

SL001/SL002 are per-file: they catch an unseeded constructor or an
unplumbed draw *in the file where it happens*.  SL011 closes the
transitive gap -- a helper that returns ``np.random.default_rng()`` looks
innocent in isolation, and the caller two modules away that draws from the
returned generator looks innocent too.  The taint analysis
(:mod:`repro.devtools.simlint.program.taint`) builds per-function
summaries over the call graph and flags

* draws whose receiving generator transitively derives from OS entropy or
  wall clock (unseeded ``default_rng()`` / ``SeedSequence()``, stdlib
  ``random``, ``time.time``, ``os.urandom``, ...), and
* generator *seedings* from tainted values (``default_rng(int(time.time()))``).

Generators built from parameters are trusted: the trial runners own the
root ``SeedSequence`` and spawn every per-trial stream, so a parameter is
exactly the provenance the contract demands.
"""

from __future__ import annotations

from ..core import Finding, ProgramRule, register_rule
from ..program import ProgramModel
from ..program.callgraph import build_call_graph
from ..program.taint import TaintAnalysis

__all__ = ["RngProvenance"]


@register_rule
class RngProvenance(ProgramRule):
    """SL011: every draw must derive from a seeded stream, transitively."""

    rule_id = "SL011"
    title = "rng-provenance"
    rationale = (
        "A random draw is only reproducible if its generator descends from "
        "an explicit seed; taint analysis over the call graph proves the "
        "provenance transitively, so OS entropy cannot hide behind a "
        "helper function in another module."
    )

    def visit_program(self, program: ProgramModel) -> list[Finding]:
        graph = build_call_graph(program)
        analysis = TaintAnalysis(graph)
        findings: list[Finding] = []
        for site in analysis.report():
            ctx = site.fn.module.ctx
            if site.kind == "seed":
                message = (
                    f"function `{site.fn.name}` seeds a generator from "
                    "wall-clock/OS entropy; derive seeds from the run's "
                    "SeedSequence instead"
                )
            else:
                message = (
                    f"function `{site.fn.name}` {site.detail}; the value "
                    "descends from an unseeded source (trace the call "
                    "chain), plumb a SeedSequence-spawned stream through"
                )
            findings.append(ctx.finding(self.rule_id, site.node, message))
        return findings
