"""SL007 no-print-in-library: library code reports through repro.obs.

``print()`` inside the library proper bypasses every observability
surface this repository has: it cannot be captured in a trace, merged
into a metrics snapshot, or silenced by a worker process -- and under a
``TrialRunner`` fan-out it interleaves nondeterministically across
workers.  Library code should emit trace records / metrics via
:mod:`repro.obs` or return data for the CLI layer to format.

The rule scopes itself to ``repro`` library modules and exempts the
designated presentation surfaces: ``cli.py``, ``reporting.py``, and the
``devtools`` tree (whose linters and reporters print by design).
"""

from __future__ import annotations

import ast

from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["NoPrintInLibrary"]

_EXEMPT_FILES = frozenset({"cli.py", "reporting.py"})
_EXEMPT_DIRS = frozenset({"devtools"})


@register_rule
class NoPrintInLibrary(Rule):
    """SL007: bare ``print()`` calls are banned outside presentation code."""

    rule_id = "SL007"
    title = "no-print-in-library"
    rationale = (
        "print() in library code bypasses tracing/metrics and interleaves "
        "nondeterministically across TrialRunner workers; emit repro.obs "
        "telemetry or return data for the CLI/reporting layer to format."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        parts = ctx.path.parts
        if "repro" not in parts:
            return False
        if _EXEMPT_DIRS.intersection(parts):
            return False
        return ctx.path.name not in _EXEMPT_FILES

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                findings.append(ctx.finding(
                    self.rule_id, node,
                    "print() in library code; emit repro.obs telemetry or "
                    "return data for the CLI/reporting layer to format",
                ))
        return findings
