"""Determinism rules: SL001 unseeded-rng and SL002 rng-plumbing.

Every durability estimate in this repository is a Monte Carlo statement;
an unseeded or globally-shared random source silently invalidates the
reproducibility contract PR 2 established at runtime (bitwise-identical
results for any worker count).  These two rules make the contract static:

* **SL001** bans unseeded generators and all global-random-state use:
  ``np.random.default_rng()`` with no seed, legacy ``np.random.<fn>()``
  module-state calls, and any use of the stdlib ``random`` module.
* **SL002** requires functions that *draw* from a generator to receive it
  (or the seed it derives from) as a parameter -- constructing a private
  generator from a hard-coded seed hides the stream from callers and
  breaks ``SeedSequence.spawn`` plumbing.
"""

from __future__ import annotations

import ast

from .._ast_utils import ImportMap, attribute_chain, dotted_name, root_name
from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["UnseededRng", "RngPlumbing", "DRAW_METHODS"]

#: Legacy module-state draw/seed functions on ``numpy.random``.
_GLOBAL_STATE_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "exponential", "integers", "poisson", "binomial", "weibull",
    "standard_normal", "bytes", "get_state", "set_state", "random_integers",
})

#: ``numpy.random.Generator`` draw methods (the ones this codebase uses,
#: plus the common remainder).
DRAW_METHODS = frozenset({
    "random", "integers", "choice", "shuffle", "permutation", "permuted",
    "exponential", "normal", "standard_normal", "uniform", "weibull",
    "poisson", "binomial", "geometric", "gamma", "beta", "chisquare",
    "lognormal", "pareto", "rayleigh", "triangular", "bytes", "spawn",
})

#: Names that mark a value as generator-like when they appear in an
#: attribute chain (``st.rng.random`` -> segment "rng").
_GENERATOR_NAMES = frozenset({"rng", "generator", "gen"})


@register_rule
class UnseededRng(Rule):
    """SL001: no unseeded generators, no global random state."""

    rule_id = "SL001"
    title = "unseeded-rng"
    rationale = (
        "Monte Carlo results must be reproducible from an explicit seed; "
        "unseeded generators and global random state make runs "
        "unrepeatable and defeat SeedSequence plumbing."
    )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(ctx.finding(
                            self.rule_id, node,
                            "stdlib `random` is banned in simulation code; "
                            "use a seeded numpy Generator",
                        ))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    findings.append(ctx.finding(
                        self.rule_id, node,
                        "stdlib `random` is banned in simulation code; "
                        "use a seeded numpy Generator",
                    ))
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                resolved = imports.resolve(dotted)
                if resolved == "numpy.random.default_rng":
                    if not node.args and not node.keywords:
                        findings.append(ctx.finding(
                            self.rule_id, node,
                            "np.random.default_rng() without a seed/"
                            "SeedSequence draws OS entropy; pass an "
                            "explicit seed",
                        ))
                elif (
                    resolved.startswith("numpy.random.")
                    and resolved.rsplit(".", 1)[1] in _GLOBAL_STATE_FNS
                ):
                    fn = resolved.rsplit(".", 1)[1]
                    findings.append(ctx.finding(
                        self.rule_id, node,
                        f"np.random.{fn}() uses numpy's hidden global "
                        "RandomState; draw from an explicit Generator "
                        "instead",
                    ))
        return findings


def _params_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _references_any(node: ast.AST, names: set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(node)
    )


@register_rule
class RngPlumbing(Rule):
    """SL002: functions that draw must be handed their generator."""

    rule_id = "SL002"
    title = "rng-plumbing"
    rationale = (
        "A function that draws from a Generator it built itself (from a "
        "constant seed or module state) pins its stream invisibly; the "
        "generator or its seed must arrive via a parameter so trial "
        "runners control every stream."
    )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        # Module-level names assigned from a generator constructor.
        module_generators: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is not None and self._is_generator_ctor(value, imports):
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            module_generators.add(target.id)

        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    self._check_function(ctx, node, imports, module_generators)
                )
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _is_generator_ctor(node: ast.expr, imports: ImportMap) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        resolved = imports.resolve(dotted)
        return resolved in (
            "numpy.random.default_rng", "numpy.random.Generator"
        )

    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: ImportMap,
        module_generators: set[str],
    ) -> list[Finding]:
        params = _params_of(fn)
        # Locals assigned from a generator constructor: True if the seed
        # expression references a parameter (plumbed), False otherwise.
        local_ctor_plumbed: dict[str, bool] = {}
        # Locals aliased (possibly transitively) from parameter-rooted
        # expressions: rng = self.rng, rngs = self._children(), rng = rngs[0].
        local_aliases: set[str] = set()
        assigns: list[tuple[int, str, ast.expr]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assigns.append((node.lineno, target.id, node.value))
        for _, target_name, value in sorted(assigns, key=lambda a: a[0]):
            if self._is_generator_ctor(value, imports):
                local_ctor_plumbed[target_name] = _references_any(value, params)
                continue
            root = root_name(value)
            if root is not None and (root in params or root in local_aliases):
                local_aliases.add(target_name)

        findings: list[Finding] = []
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DRAW_METHODS
            ):
                continue
            receiver = node.func.value
            chain = attribute_chain(receiver)
            if not chain:
                continue
            generator_like = (
                bool(_GENERATOR_NAMES.intersection(chain))
                or chain[0] in local_ctor_plumbed
                or chain[0] in module_generators
            )
            if not generator_like:
                continue
            root = chain[0]
            if root in params or root in local_aliases:
                continue
            if local_ctor_plumbed.get(root, False):
                continue
            if root in local_ctor_plumbed:
                findings.append(ctx.finding(
                    self.rule_id, node,
                    f"function `{fn.name}` draws from a Generator it "
                    "built from a fixed seed; accept the Generator or "
                    "seed as a parameter",
                ))
            elif root in module_generators:
                findings.append(ctx.finding(
                    self.rule_id, node,
                    f"function `{fn.name}` draws from module-level "
                    f"Generator `{root}`; plumb it through as a "
                    "parameter",
                ))
            else:
                findings.append(ctx.finding(
                    self.rule_id, node,
                    f"function `{fn.name}` draws from `{'.'.join(chain)}` "
                    "which is neither a parameter nor derived from one; "
                    "plumb the Generator through the call chain",
                ))
        return findings
