"""SL003 event-exhaustiveness: every event enum member needs a handler.

The discrete-event simulators dispatch on ``EventType`` with ``if/elif``
identity chains (or ``match`` statements).  Adding an enum member without
teaching a dispatch about it produces events that fall through to a
runtime ``ValueError`` at best -- or are silently dropped in handlers
that pre-filter -- long after the bug was introduced.  This rule makes
the cross-check static: for every enum class whose name marks it as an
event kind (``*EventType`` / ``*EventKind``), every member must appear in
at least one dispatch comparison (``x is Enum.MEMBER``, ``x == Enum.MEMBER``
or a ``match`` case) somewhere in the linted tree.

A member that is never referenced at all is also an error: dead enum
members are exactly how unhandled events are born.
"""

from __future__ import annotations

import ast
import dataclasses

from .._ast_utils import dotted_name
from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["EventExhaustiveness"]

_ENUM_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "enum.Enum", "enum.IntEnum", "enum.StrEnum", "enum.Flag", "enum.IntFlag",
})
_EVENT_CLASS_SUFFIXES = ("EventType", "EventKind")


@dataclasses.dataclass
class _EnumInfo:
    path: str
    members: dict[str, tuple[int, int]]  # name -> (line, col)
    handled: set[str] = dataclasses.field(default_factory=set)
    referenced: set[str] = dataclasses.field(default_factory=set)


@register_rule
class EventExhaustiveness(Rule):
    """SL003: cross-check event enums against their dispatch sites."""

    rule_id = "SL003"
    title = "event-exhaustiveness"
    cross_file = True
    rationale = (
        "A new event kind with no handler either crashes the simulator "
        "mid-mission or is silently ignored; the dispatch must be "
        "exhaustive over the enum."
    )

    def __init__(self) -> None:
        self._enums: dict[str, _EnumInfo] = {}
        # References seen before (or without) the enum definition:
        # (class name, member, handled?).
        self._pending: list[tuple[str, str, bool]] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _is_event_enum(node: ast.ClassDef) -> bool:
        if not node.name.endswith(_EVENT_CLASS_SUFFIXES):
            return False
        for base in node.bases:
            name = dotted_name(base)
            if name in _ENUM_BASES:
                return True
        return False

    @staticmethod
    def _enum_members(node: ast.ClassDef) -> dict[str, tuple[int, int]]:
        members: dict[str, tuple[int, int]] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        members[target.id] = (stmt.lineno, stmt.col_offset)
        return members

    def _record_reference(self, cls: str, member: str, handled: bool) -> None:
        info = self._enums.get(cls)
        if info is None:
            self._pending.append((cls, member, handled))
            return
        info.referenced.add(member)
        if handled:
            info.handled.add(member)

    # ------------------------------------------------------------------
    def visit_file(self, ctx: FileContext) -> list[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and self._is_event_enum(node):
                self._enums.setdefault(
                    node.name,
                    _EnumInfo(ctx.display_path, self._enum_members(node)),
                )
            elif isinstance(node, ast.Compare):
                if any(isinstance(op, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq))
                       for op in node.ops):
                    for side in (node.left, *node.comparators):
                        ref = self._event_attribute(side)
                        if ref is not None:
                            self._record_reference(*ref, handled=True)
            elif isinstance(node, ast.Match):
                for case in node.cases:
                    for pattern in ast.walk(case.pattern):
                        if isinstance(pattern, ast.MatchValue):
                            ref = self._event_attribute(pattern.value)
                            if ref is not None:
                                self._record_reference(*ref, handled=True)
            elif isinstance(node, ast.Attribute):
                ref = self._event_attribute(node)
                if ref is not None:
                    self._record_reference(*ref, handled=False)
        return []

    @staticmethod
    def _event_attribute(node: ast.expr) -> tuple[str, str] | None:
        """(class name, member) for ``SomethingEventType.MEMBER`` exprs."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id.endswith(_EVENT_CLASS_SUFFIXES)
            and node.attr.isupper()
        ):
            return node.value.id, node.attr
        return None

    def finalize(self) -> list[Finding]:
        for cls, member, handled in self._pending:
            info = self._enums.get(cls)
            if info is not None:
                info.referenced.add(member)
                if handled:
                    info.handled.add(member)
        findings: list[Finding] = []
        for cls, info in self._enums.items():
            if not info.handled:
                # No dispatch in the scanned set: a partial lint (single
                # file) cannot judge exhaustiveness.
                continue
            for member, (line, col) in sorted(info.members.items()):
                if member in info.handled:
                    continue
                if member in info.referenced:
                    message = (
                        f"{cls}.{member} is emitted but no dispatch "
                        "handles it (no `is`/`==` comparison or `match` "
                        "case anywhere in the linted tree)"
                    )
                else:
                    message = (
                        f"{cls}.{member} is defined but never emitted nor "
                        "handled; dead event kinds hide unhandled-event "
                        "bugs -- remove it or wire a handler"
                    )
                findings.append(Finding(
                    path=info.path, line=line, col=col + 1,
                    rule=self.rule_id, message=message,
                ))
        return sorted(findings)
