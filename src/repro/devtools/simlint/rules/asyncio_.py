"""SL017 blocking-call-in-async: keep the service event loop responsive.

The ``mlec-sim serve`` daemon multiplexes every client, the scheduler,
and the drain path on one asyncio event loop.  A single blocking call
inside a coroutine -- a ``time.sleep``, a synchronous socket operation,
or worst of all a whole :class:`~repro.runtime.ResilientRunner` sweep --
freezes all of them at once: health checks time out, SIGTERM drains
stall, and the failure looks like a dead daemon rather than pointing at
the blocking line.  The sanctioned bridge is
:func:`repro.service.offload.offload`, which moves blocking work onto an
executor thread and suspends only the calling coroutine.

SL017 flags, inside ``async def`` bodies in :mod:`repro.service`:

* ``time.sleep(...)`` (use ``await asyncio.sleep`` or offload);
* blocking socket work: ``socket.create_connection`` and the classic
  blocking socket methods (``accept``/``connect``/``recv*``/``sendall``);
* direct runner use: constructing ``ResilientRunner``/``TrialRunner`` or
  calling ``.run(...)``/``.map(...)`` on a runner-named receiver.

Nested synchronous ``def`` bodies are exempt -- that is exactly the
shape of a closure handed to ``offload`` -- and deliberate exceptions
carry ``# simlint: disable=SL017``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["BlockingCallInAsync"]

#: Blocking socket methods; in repro.service any receiver calling these
#: is (or wraps) a real socket, so attribute matching is precise enough.
_SOCKET_METHODS = frozenset(
    {"accept", "connect", "recv", "recv_into", "recvfrom", "sendall"}
)
_RUNNER_TYPES = frozenset({"ResilientRunner", "TrialRunner"})
_RUNNER_METHODS = frozenset({"run", "map"})


def _async_body_nodes(tree: ast.AST) -> Iterator[ast.AST]:
    """Every node lexically inside an ``async def``, minus nested sync defs.

    A nested synchronous ``def`` is the offload idiom (the closure body
    *should* block -- it runs on an executor thread), so its subtree is
    skipped.  Nested ``async def``s are still coroutine code on the same
    loop; each one is picked up by its own ``ast.walk`` visit, so the
    stack below stops at them to avoid yielding their bodies twice.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            stack: list[ast.AST] = list(ast.iter_child_nodes(node))
            while stack:
                child = stack.pop()
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                yield child
                stack.extend(ast.iter_child_nodes(child))


def _dotted(node: ast.expr) -> str | None:
    """``module.attr`` for simple attribute chains, else ``None``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}"
    return None


def _receiver_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register_rule
class BlockingCallInAsync(Rule):
    """SL017: no blocking calls inside ``async def`` in repro.service."""

    rule_id = "SL017"
    title = "blocking-call-in-async"
    rationale = (
        "A blocking call in a coroutine freezes the whole service event "
        "loop -- every client, the scheduler, and the SIGTERM drain path "
        "-- for its full duration; route blocking work through "
        "repro.service.offload.offload (await asyncio.sleep for delays), "
        "or mark a deliberate exception with # simlint: disable=SL017."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        parts = ctx.path.parts
        return "service" in parts and "devtools" not in parts

    def _diagnose(self, node: ast.AST) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        dotted = _dotted(func)
        if dotted == "time.sleep":
            return (
                "time.sleep blocks the event loop; use "
                "`await asyncio.sleep(...)`"
            )
        if dotted == "socket.create_connection":
            return (
                "socket.create_connection blocks the event loop; use "
                "asyncio streams or offload the dial"
            )
        if isinstance(func, ast.Name) and func.id in _RUNNER_TYPES:
            return (
                f"constructing {func.id} in a coroutine blocks the loop "
                "(checkpoint open + fsync); build and run it via offload"
            )
        if isinstance(func, ast.Attribute):
            if func.attr in _SOCKET_METHODS and isinstance(
                func.value, (ast.Name, ast.Attribute)
            ):
                receiver = _receiver_name(func.value) or ""
                if "sock" in receiver.lower():
                    return (
                        f"blocking socket .{func.attr}() stalls the event "
                        "loop; use asyncio streams or offload it"
                    )
            if func.attr in _RUNNER_METHODS:
                receiver = _receiver_name(func.value) or ""
                if "runner" in receiver.lower():
                    return (
                        f"runner.{func.attr}() executes a whole sweep on "
                        "the event loop thread; dispatch it through "
                        "offload into the job executor"
                    )
        return None

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        findings: list[Finding] = []
        for node in _async_body_nodes(ctx.tree):
            message = self._diagnose(node)
            if message is not None:
                findings.append(ctx.finding(self.rule_id, node, message))
        return findings
