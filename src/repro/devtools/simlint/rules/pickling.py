"""SL006 pool-picklability: trial callables must survive pickling.

:class:`~repro.runtime.runner.TrialRunner` ships trial functions to
``ProcessPoolExecutor`` workers, which pickles them by qualified name.
Lambdas and functions defined inside another function cannot be pickled:
the failure surfaces as an opaque ``PicklingError`` from pool internals,
and only when ``workers > 1`` -- single-process tests pass.  This rule
rejects such callables at the submission site, statically.

A callable is flagged when it is handed to a runner dispatch call
(``<runner>.run(...)`` / ``<runner>.map(...)`` where the receiver looks
like a trial runner) and it is either a ``lambda`` expression or a name
bound by a ``def`` nested inside the enclosing function.
"""

from __future__ import annotations

import ast

from .._ast_utils import attribute_chain
from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["PoolPicklability"]

_DISPATCH_METHODS = frozenset({"run", "map"})
_RUNNER_CTORS = frozenset({"TrialRunner"})


def _is_runner_receiver(receiver: ast.expr) -> bool:
    """True if the expression plausibly evaluates to a trial runner."""
    if isinstance(receiver, ast.Call):
        func = receiver.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in _RUNNER_CTORS
    chain = attribute_chain(receiver)
    return any("runner" in segment.lower() for segment in chain)


def _trial_callable(node: ast.Call) -> ast.expr | None:
    """The trial-function argument of a dispatch call, if present."""
    if node.args and not isinstance(node.args[0], ast.Starred):
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


@register_rule
class PoolPicklability(Rule):
    """SL006: no lambdas or nested functions handed to trial runners."""

    rule_id = "SL006"
    title = "pool-picklability"
    rationale = (
        "ProcessPoolExecutor pickles trial callables by qualified name; "
        "lambdas and nested functions fail only at workers > 1, with an "
        "opaque PicklingError from pool internals."
    )

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for stmt in ctx.tree.body:
            self._walk(ctx, stmt, frozenset(), findings)
        return findings

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        nested_fns: frozenset[str],
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Names bound by a def inside *this* function are closures
            # from the point of view of any call in its body.
            inner = nested_fns | {
                child.name for child in ast.walk(node)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not node
            }
            for child in node.body:
                self._walk(ctx, child, inner, findings)
            return
        if isinstance(node, ast.Call):
            self._check_dispatch(ctx, node, nested_fns, findings)
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child, nested_fns, findings)

    def _check_dispatch(
        self,
        ctx: FileContext,
        node: ast.Call,
        nested_fns: frozenset[str],
        findings: list[Finding],
    ) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_METHODS
            and _is_runner_receiver(node.func.value)
        ):
            return
        fn = _trial_callable(node)
        if fn is None:
            return
        if isinstance(fn, ast.Lambda):
            findings.append(ctx.finding(
                self.rule_id, fn,
                "lambda handed to a trial runner cannot be pickled for "
                "worker processes; define a module-level function",
            ))
        elif isinstance(fn, ast.Name) and fn.id in nested_fns:
            findings.append(ctx.finding(
                self.rule_id, fn,
                f"`{fn.id}` is defined inside the enclosing function and "
                "cannot be pickled for worker processes; move it to "
                "module level",
            ))
