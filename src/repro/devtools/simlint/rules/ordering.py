"""Deterministic-ordering rules: SL012 and SL014.

Bitwise reproducibility is an *ordering* property as much as a seeding
one: float addition does not commute, so the order in which trial
outcomes, pool states, or chunk aggregates are folded is part of the
result.  Two whole-program rules guard it on result-affecting paths
(functions that can reach a ``TrialAggregate``, result metrics, or trace
emission -- see :mod:`repro.devtools.simlint.program.sinks`):

* **SL012 nondeterministic-iteration** -- iterating a ``set`` (or a value
  of set provenance) yields a hash-seed-dependent order; on a path that
  feeds results this silently breaks run-to-run identity.  Wrap the
  iterable in ``sorted(...)`` to pin the order.
* **SL014 fold-order-discipline** -- ``sum(...)`` over parallel per-chunk
  results folds in whatever order the iterable yields, which is exactly
  the order the runners worked so hard to pin.  Merge paths must use the
  established in-order accumulation (``for r in results: agg.merge(r)``,
  ``total += value``) or the exact ``_fold_repeated_add`` replay from
  :mod:`repro.sim.batch`.
"""

from __future__ import annotations

import ast
import re

from ..core import Finding, ProgramRule, register_rule
from ..program import ProgramModel
from ..program.callgraph import build_call_graph
from ..program.model import FunctionInfo
from ..program.sinks import result_reaching_functions
from ..program.taint import walk_own

__all__ = ["NondeterministicIteration", "FoldOrderDiscipline"]

#: ``list``/``tuple`` preserve the (unordered) set order; ``sorted`` pins it.
_ORDER_PRESERVING_WRAPPERS = frozenset({"list", "tuple", "iter", "reversed"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


def _is_set_provenance(node: ast.expr, set_vars: set[str]) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return (
            _is_set_provenance(node.left, set_vars)
            or _is_set_provenance(node.right, set_vars)
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return True
            if func.id in _ORDER_PRESERVING_WRAPPERS and node.args:
                return _is_set_provenance(node.args[0], set_vars)
            return False
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_set_provenance(func.value, set_vars)
    return False


def _iteration_sites(fn: FunctionInfo) -> list[tuple[ast.expr, ast.AST]]:
    """(iterable expression, node to report) for every loop/comprehension.

    ``SetComp`` generators are exempt: a set built from a set is itself
    unordered, so the traversal order cannot leak into results.
    """
    sites: list[tuple[ast.expr, ast.AST]] = []
    for node in walk_own(fn.node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            sites.append((node.iter, node))
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                sites.append((gen.iter, node))
    return sites


@register_rule
class NondeterministicIteration(ProgramRule):
    """SL012: no unordered-set iteration on result-affecting paths."""

    rule_id = "SL012"
    title = "nondeterministic-iteration"
    rationale = (
        "Set iteration order depends on the interpreter's hash seed; on a "
        "path that reaches TrialAggregate, metrics, or trace emission it "
        "silently breaks bitwise reproducibility -- wrap the iterable in "
        "sorted(...)."
    )

    def visit_program(self, program: ProgramModel) -> list[Finding]:
        graph = build_call_graph(program)
        result_path = result_reaching_functions(graph)
        findings: list[Finding] = []
        for fn in graph.functions():
            if fn not in result_path:
                continue
            set_vars: set[str] = set()
            assigns = sorted(
                (n for n in walk_own(fn.node)
                 if isinstance(n, (ast.Assign, ast.AnnAssign))),
                key=lambda n: (n.lineno, n.col_offset),
            )
            for stmt in assigns:
                value = stmt.value
                if value is None:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                provenance = _is_set_provenance(value, set_vars)
                for target in targets:
                    if isinstance(target, ast.Name):
                        if provenance:
                            set_vars.add(target.id)
                        else:
                            set_vars.discard(target.id)
            for iterable, report_node in _iteration_sites(fn):
                if _is_set_provenance(iterable, set_vars):
                    findings.append(fn.module.ctx.finding(
                        self.rule_id, report_node,
                        f"function `{fn.name}` iterates a set on a "
                        "result-affecting path; set order is "
                        "hash-seed-dependent -- iterate sorted(...) instead",
                    ))
        return findings


_MERGE_FN = re.compile(r"(merge|combine|aggregate|fold|reduce)", re.IGNORECASE)
_PARALLEL_RESULT = re.compile(
    r"(result|partial|aggregate|outcome)s?$|^chunks$", re.IGNORECASE
)


def _mentions_parallel_results(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _PARALLEL_RESULT.search(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _PARALLEL_RESULT.search(sub.attr):
            return True
    return False


@register_rule
class FoldOrderDiscipline(ProgramRule):
    """SL014: no ``sum()`` over parallel results on aggregation paths."""

    rule_id = "SL014"
    title = "fold-order-discipline"
    rationale = (
        "Float addition does not commute; sum() over per-chunk results "
        "folds in iteration order and breaks the worker-count-independent "
        "identity -- use the in-order merge loop or _fold_repeated_add."
    )

    def visit_program(self, program: ProgramModel) -> list[Finding]:
        graph = build_call_graph(program)
        result_path = result_reaching_functions(graph)
        findings: list[Finding] = []
        for fn in graph.functions():
            on_merge_path = fn in result_path or bool(_MERGE_FN.search(fn.name))
            if not on_merge_path:
                continue
            for node in walk_own(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum"
                    and node.args
                ):
                    continue
                if _mentions_parallel_results(node.args[0]):
                    findings.append(fn.module.ctx.finding(
                        self.rule_id, node,
                        f"function `{fn.name}` folds parallel results with "
                        "sum(); the fold order is unspecified -- use the "
                        "in-order merge loop (or _fold_repeated_add for "
                        "repeated addends)",
                    ))
        return findings
