"""SL008 atomic-result-write: results files are written atomically.

Results artifacts -- ``*.json`` metrics snapshots, ``*.jsonl`` trace
streams, ``BENCH_*.json`` telemetry -- are consumed by resume paths,
trace reports, and CI byte-comparison gates.  A plain ``open(path, "w")``
or ``Path.write_text`` truncates the target *before* the new bytes land,
so a writer killed mid-write (the exact failure the resilience layer is
built to survive) leaves a corrupt half-file that poisons every later
consumer.  Library code must route such writes through
:func:`repro.core.atomic.atomic_write_text`, which stages the payload in
a same-directory temp file, fsyncs, and renames over the target.

The rule flags a write call when the written path plausibly names a JSON
results file: either an argument mentions ``.json``/``.jsonl`` or the
enclosing function's name contains ``json``/``jsonl`` (the
``write_json``-style helper idiom).  Append-mode journals (WAL files that
*want* incremental durability) are not flagged.  Scope and exemptions
mirror SL007: ``repro`` library modules only, with ``cli.py``,
``reporting.py``, the ``devtools`` tree, and the atomic helper itself
exempt.
"""

from __future__ import annotations

import ast

from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["AtomicResultWrite"]

_EXEMPT_FILES = frozenset({"cli.py", "reporting.py", "atomic.py"})
_EXEMPT_DIRS = frozenset({"devtools"})

#: open() mode strings that truncate or create the target destructively.
#: Append ("a") is deliberately not listed: WAL-style journals append by
#: design and never rewrite completed records.
_DESTRUCTIVE_MODES = frozenset(
    {"w", "wt", "tw", "w+", "+w", "wb", "bw", "x", "xt", "xb"}
)

_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})


def _mentions_json(node: ast.AST) -> bool:
    """Does any literal/expression under ``node`` reference a JSON path?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if ".json" in sub.value:  # covers .jsonl too
                return True
        elif isinstance(sub, (ast.Name, ast.Attribute)):
            text = ast.unparse(sub).lower()
            if "json" in text:
                return True
    return False


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call, if statically known."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@register_rule
class AtomicResultWrite(Rule):
    """SL008: JSON results files must be written via the atomic helper."""

    rule_id = "SL008"
    title = "atomic-result-write"
    rationale = (
        "open(.., 'w')/write_text on a .json/.jsonl results path truncates "
        "before writing, so a killed run leaves a corrupt artifact; route "
        "the write through repro.core.atomic.atomic_write_text."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        parts = ctx.path.parts
        if "repro" not in parts:
            return False
        if _EXEMPT_DIRS.intersection(parts):
            return False
        return ctx.path.name not in _EXEMPT_FILES

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        findings: list[Finding] = []
        self._walk(ctx, ctx.tree, False, findings)
        return findings

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        fn_is_jsonish: bool,
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_is_jsonish = "json" in node.name.lower()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                self._check_call(ctx, child, fn_is_jsonish, findings)
            self._walk(ctx, child, fn_is_jsonish, findings)

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        fn_is_jsonish: bool,
        findings: list[Finding],
    ) -> None:
        targets_json = fn_is_jsonish or any(
            _mentions_json(arg) for arg in call.args
        ) or any(_mentions_json(kw.value) for kw in call.keywords)
        if isinstance(call.func, ast.Attribute):
            # The path usually lives in the receiver:
            # Path("metrics.json").write_text(...)
            targets_json = targets_json or _mentions_json(call.func.value)
        if not targets_json:
            return
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            mode = _open_mode(call)
            if mode is not None and mode.replace("+", "") in {
                m.replace("+", "") for m in _DESTRUCTIVE_MODES
            }:
                findings.append(ctx.finding(
                    self.rule_id, call,
                    f"open(..., {mode!r}) truncates a JSON results file in "
                    "place; use repro.core.atomic.atomic_write_text",
                ))
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _WRITE_ATTRS
        ):
            findings.append(ctx.finding(
                self.rule_id, call,
                f".{call.func.attr}() rewrites a JSON results file in "
                "place; use repro.core.atomic.atomic_write_text",
            ))
