"""SL015 ops-telemetry segregation: ops metrics never touch result sinks.

PRs 5-7 built a byte-identity contract: result artifacts (metrics
snapshots, traces) from a resumed, retried, stolen, or batch-demoted run
are byte-identical to an undisturbed one.  That only holds because every
*operational* fact -- retries, pool rebuilds, checkpoint writes, steals --
is recorded in runner-owned ``ops_metrics``/``ops_trace`` sinks that are
never merged into result artifacts.  SL015 enforces the naming boundary:
an ops-namespaced name (``runtime.*``, ``checkpoint.*`` metrics; the
``checkpoint./chunk./pool./worker./backend./span.`` trace-event
families) may
only be recorded on a receiver that is visibly an ops sink (its attribute
chain mentions ``ops``).  Recording one on a plain ``metrics``/``trace``
receiver would leak recovery history into results and break the contract.
"""

from __future__ import annotations

import ast

from .._ast_utils import attribute_chain
from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["OpsTelemetrySegregation"]

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
_OPS_METRIC_PREFIXES = ("runtime.", "checkpoint.")
_OPS_EVENT_PREFIXES = (
    "runtime.", "checkpoint.", "chunk.", "pool.", "worker.", "backend.",
    "span.",
)


def _literal_arg(node: ast.Call, position: int) -> str | None:
    """The string literal at ``position`` (or the ``name``/``kind`` kw)."""
    if len(node.args) > position:
        arg = node.args[position]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    for keyword in node.keywords:
        if keyword.arg in ("name", "kind") and isinstance(
            keyword.value, ast.Constant
        ) and isinstance(keyword.value.value, str):
            return keyword.value.value
    return None


@register_rule
class OpsTelemetrySegregation(Rule):
    """SL015: ops-namespaced telemetry only on ops-owned sinks."""

    rule_id = "SL015"
    title = "ops-telemetry-segregation"
    rationale = (
        "Result artifacts must stay byte-identical across retries, "
        "resumes, and steals; runtime.*/checkpoint.* facts belong to the "
        "runner-owned ops_metrics/ops_trace sinks, never to the result "
        "registries."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        parts = ctx.path.parts
        return "devtools" not in parts

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            chain = attribute_chain(node.func.value)
            is_ops_receiver = any("ops" in seg.lower() for seg in chain)
            if is_ops_receiver:
                continue
            if attr in _METRIC_METHODS:
                name = _literal_arg(node, 0)
                if name is not None and name.startswith(_OPS_METRIC_PREFIXES):
                    findings.append(ctx.finding(
                        self.rule_id, node,
                        f"ops metric {name!r} recorded on a non-ops "
                        "registry; route it through the runner-owned "
                        "ops_metrics so result artifacts stay "
                        "byte-identical",
                    ))
            elif attr == "event" and any(
                "trace" in seg.lower() for seg in chain
            ):
                kind = _literal_arg(node, 1)
                if kind is not None and kind.startswith(_OPS_EVENT_PREFIXES):
                    findings.append(ctx.finding(
                        self.rule_id, node,
                        f"ops trace event {kind!r} emitted on a non-ops "
                        "recorder; route it through the runner-owned "
                        "ops_trace so result artifacts stay byte-identical",
                    ))
        return findings
