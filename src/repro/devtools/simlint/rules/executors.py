"""SL009 executor-bypass: process pools come from the executors package.

The runtime's placement layer (:mod:`repro.runtime.executors`) is the one
place allowed to construct a ``ProcessPoolExecutor``: it wraps pool
creation in :class:`~repro.runtime.executors.LocalProcessBackend`, which
the runners know how to rebuild after a crash, reset on abnormal exit,
and swap for the TCP work-queue backend without touching sweep code.  A
``ProcessPoolExecutor(...)`` constructed anywhere else bypasses all of
that -- no ``BackendUnavailable`` fallback, no recovery accounting, no
``--backend`` override -- and silently re-couples the caller to
single-host execution.

The rule flags any call whose callee names ``ProcessPoolExecutor``
(bare or attribute-qualified), in ``repro`` library modules outside
``runtime/executors/``.  The ``devtools`` tree is exempt, and the usual
``# simlint: disable=SL009`` suppression comment is honored.
"""

from __future__ import annotations

import ast

from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["ExecutorBypass"]

_EXEMPT_DIRS = frozenset({"devtools"})
_POOL_NAMES = frozenset({"ProcessPoolExecutor"})


def _callee_name(call: ast.Call) -> str | None:
    """The terminal name of the callee (``X`` in ``a.b.X(...)``/``X(...)``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class ExecutorBypass(Rule):
    """SL009: construct process pools only inside repro.runtime.executors."""

    rule_id = "SL009"
    title = "executor-bypass"
    rationale = (
        "ProcessPoolExecutor(...) outside repro/runtime/executors/ bypasses "
        "the ChunkExecutor backends (no rebuild-on-crash, no recovery "
        "accounting, no --backend override); use LocalProcessBackend or "
        "accept a ChunkExecutor instead."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        parts = ctx.path.parts
        if "repro" not in parts:
            return False
        if _EXEMPT_DIRS.intersection(parts):
            return False
        # The placement layer itself is the one legitimate construction site.
        return "executors" not in parts

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _callee_name(node)
                if name in _POOL_NAMES:
                    findings.append(ctx.finding(
                        self.rule_id, node,
                        f"{name}(...) constructed outside "
                        "repro/runtime/executors/; use LocalProcessBackend "
                        "(or accept a ChunkExecutor) so the runner can "
                        "rebuild, account for, and swap the pool",
                    ))
        return findings
