"""SL013 pickle-boundary reachability: what crosses to workers must pickle.

SL006 catches a lambda handed *directly* to ``TrialRunner.run``.  But the
executor refactor (PR 6) multiplied the boundaries -- ``ChunkExecutor
.submit``, ``ChunkJob``/``ChunkPayload`` construction, the TCP transport --
and a callable can travel through any number of plumbing functions before
it reaches one.  SL013 computes, per function, the set of parameters that
*flow into a pickle boundary* (directly, or by being passed on to a
function whose parameter flows -- a fixpoint over the call graph), then
flags call sites that feed an unpicklable value into such a parameter:
``lambda``s, functions ``def``-ed inside the enclosing function, and
locally-defined classes, all of which pickle by qualified name and fail
only at ``workers > 1`` with an opaque ``PicklingError``.
"""

from __future__ import annotations

import ast

from .._ast_utils import attribute_chain
from ..core import Finding, ProgramRule, register_rule
from ..program import ProgramModel
from ..program.callgraph import CallGraph, build_call_graph
from ..program.model import FunctionInfo
from ..program.taint import walk_own

__all__ = ["PickleBoundaryReachability"]

_BOUNDARY_RECEIVER_HINTS = ("backend", "executor", "pool", "runner", "queue")
_BOUNDARY_METHODS = frozenset({"submit", "run", "map"})
_BOUNDARY_CTORS = frozenset({"ChunkJob", "ChunkPayload"})


def _boundary_args(fn: FunctionInfo) -> list[ast.expr]:
    """Expressions handed directly to a pickle boundary inside ``fn``."""
    out: list[ast.expr] = []
    for node in walk_own(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _BOUNDARY_METHODS:
            chain = attribute_chain(func.value)
            if any(
                hint in seg.lower()
                for seg in chain
                for hint in _BOUNDARY_RECEIVER_HINTS
            ):
                out.extend(
                    a for a in node.args if not isinstance(a, ast.Starred)
                )
                out.extend(k.value for k in node.keywords)
        elif isinstance(func, ast.Name) and func.id in _BOUNDARY_CTORS:
            out.extend(a for a in node.args if not isinstance(a, ast.Starred))
            out.extend(k.value for k in node.keywords)
    return out


def _locally_defined(fn: FunctionInfo) -> set[str]:
    """Names bound by a ``def``/``class`` nested inside ``fn``."""
    names: set[str] = set()
    for node in ast.walk(fn.node):
        if node is fn.node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


def _positional_params(fn: FunctionInfo) -> list[str]:
    args = fn.node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if fn.class_name is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


class _FlowSolver:
    """Fixpoint: per function, which parameters reach a pickle boundary."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.flows: dict[FunctionInfo, set[str]] = {}
        self._solve()

    def _args_mapping(
        self, call: ast.Call, callee: FunctionInfo
    ) -> list[tuple[str, ast.expr]]:
        """(callee parameter, argument expression) pairs for one call."""
        pairs: list[tuple[str, ast.expr]] = []
        positional = _positional_params(callee)
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if index < len(positional):
                pairs.append((positional[index], arg))
        for keyword in call.keywords:
            if keyword.arg is not None:
                pairs.append((keyword.arg, keyword.value))
        return pairs

    def _pass(self, fn: FunctionInfo) -> set[str]:
        params = set(fn.params)
        # Aliases of parameters (job = fn; payload = job) count as the
        # parameter itself for flow purposes.
        alias_of: dict[str, str] = {p: p for p in params}
        for node in sorted(
            (n for n in walk_own(fn.node) if isinstance(n, ast.Assign)),
            key=lambda n: (n.lineno, n.col_offset),
        ):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                if isinstance(node.value, ast.Name):
                    source = alias_of.get(node.value.id)
                    if source is not None:
                        alias_of[node.targets[0].id] = source

        flowing: set[str] = set()

        def note(expr: ast.expr) -> None:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name):
                    source = alias_of.get(sub.id)
                    if source is not None:
                        flowing.add(source)

        for expr in _boundary_args(fn):
            note(expr)
        for call in walk_own(fn.node):
            if not isinstance(call, ast.Call):
                continue
            callee = self.graph.callee_of(fn, call)
            if callee is None:
                continue
            callee_flows = self.flows.get(callee, set())
            if not callee_flows:
                continue
            for param, arg in self._args_mapping(call, callee):
                if param in callee_flows:
                    note(arg)
        return flowing

    def _solve(self) -> None:
        functions = self.graph.functions()
        for _ in range(24):
            changed = False
            for fn in functions:
                updated = self._pass(fn)
                if updated != self.flows.get(fn, set()):
                    self.flows[fn] = updated
                    changed = True
            if not changed:
                return


@register_rule
class PickleBoundaryReachability(ProgramRule):
    """SL013: unpicklable values must not reach an executor boundary."""

    rule_id = "SL013"
    title = "pickle-boundary-reachability"
    rationale = (
        "Everything crossing ChunkExecutor.submit / ChunkJob pickles by "
        "qualified name; a lambda or locally-defined callable passed "
        "through any number of plumbing calls fails only at workers > 1 "
        "with an opaque PicklingError."
    )

    def visit_program(self, program: ProgramModel) -> list[Finding]:
        graph = build_call_graph(program)
        solver = _FlowSolver(graph)
        findings: list[Finding] = []
        for fn in graph.functions():
            local_defs = _locally_defined(fn)

            def unpicklable(expr: ast.expr) -> str | None:
                if isinstance(expr, ast.Lambda):
                    return "a lambda"
                if isinstance(expr, ast.Name) and expr.id in local_defs:
                    return f"locally-defined `{expr.id}`"
                return None

            suspects: list[tuple[ast.expr, str]] = []
            for expr in _boundary_args(fn):
                reason = unpicklable(expr)
                if reason is not None:
                    suspects.append((expr, reason))
            for call in walk_own(fn.node):
                if not isinstance(call, ast.Call):
                    continue
                callee = graph.callee_of(fn, call)
                if callee is None:
                    continue
                callee_flows = solver.flows.get(callee, set())
                if not callee_flows:
                    continue
                for param, arg in solver._args_mapping(call, callee):
                    if param not in callee_flows:
                        continue
                    reason = unpicklable(arg)
                    if reason is not None:
                        suspects.append((arg, reason))
            for expr, reason in suspects:
                findings.append(fn.module.ctx.finding(
                    self.rule_id, expr,
                    f"{reason} reaches a pickle boundary (ChunkExecutor."
                    "submit / ChunkJob) and cannot be pickled for worker "
                    "processes; define it at module level",
                ))
        return findings
