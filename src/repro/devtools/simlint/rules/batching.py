"""SL010 scalar-loop-in-batch-path: keep the batch engine vectorized.

The whole point of :mod:`repro.sim.batch` is to advance *all* trials of a
chunk through numpy array operations; a Python ``for`` loop over the
trial axis silently turns the O(1)-interpreter-overhead hot path back
into the scalar engine it replaced, and the regression only shows up as
a throughput drop in the benchmark gate, far from the offending line.

The rule flags ``for`` statements inside ``repro/sim/batch.py`` whose
iterable mentions the per-trial collections (``contexts``, ``trials``):
those are loops over trial indices, the axis that must stay vectorized.
Loops over other axes (event heaps, pools, repair windows) are fine and
are not flagged.  The few *intentional* per-trial loops -- demotion
dispatch, stream hand-off, scalar fold-order replay -- carry an explicit
``# simlint: disable=SL010`` marker, which doubles as documentation that
someone decided the loop is not hot.
"""

from __future__ import annotations

import ast

from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["ScalarLoopInBatchPath"]

#: Names that identify the per-trial axis when they appear in a loop's
#: iterable: the chunk's TrialContext list and the per-cell trial count.
_TRIAL_AXIS_NAMES = frozenset({"contexts", "trials"})


def _iterates_trial_axis(loop: ast.For) -> bool:
    """True when the loop's iterable expression names the trial axis."""
    return any(
        isinstance(node, ast.Name) and node.id in _TRIAL_AXIS_NAMES
        for node in ast.walk(loop.iter)
    )


@register_rule
class ScalarLoopInBatchPath(Rule):
    """SL010: no per-trial Python loops inside the batch engine."""

    rule_id = "SL010"
    title = "scalar-loop-in-batch-path"
    rationale = (
        "A Python for loop over trial indices inside repro/sim/batch.py "
        "de-vectorizes the batch engine's hot path; move the work into "
        "numpy array operations, or mark an intentional per-trial loop "
        "(demotion dispatch, scalar fold replay) with "
        "# simlint: disable=SL010."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        parts = ctx.path.parts
        return "sim" in parts and ctx.path.name == "batch.py"

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _iterates_trial_axis(node):
                findings.append(ctx.finding(
                    self.rule_id, node,
                    "per-trial Python loop in the batch engine; vectorize "
                    "over the trial axis with numpy, or mark an intentional "
                    "scalar section with # simlint: disable=SL010",
                ))
        return findings
