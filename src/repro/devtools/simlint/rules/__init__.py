"""simlint rule modules.

Importing this package registers every built-in rule.  To add a rule,
create a module here with a :class:`~repro.devtools.simlint.core.Rule`
subclass decorated with ``@register_rule``, and import it below.
"""

from __future__ import annotations

from . import (
    batching,
    events,
    executors,
    floats,
    pickling,
    printing,
    rng,
    units,
    writes,
)

__all__ = [
    "rng",
    "events",
    "floats",
    "units",
    "pickling",
    "printing",
    "writes",
    "executors",
    "batching",
]
