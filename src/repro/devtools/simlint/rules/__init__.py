"""simlint rule modules.

Importing this package registers every built-in rule.  To add a rule,
create a module here with a :class:`~repro.devtools.simlint.core.Rule`
(or :class:`~repro.devtools.simlint.core.ProgramRule`) subclass decorated
with ``@register_rule``, and import it below.
"""

from __future__ import annotations

from . import (
    asyncio_,
    batching,
    boundary,
    events,
    executors,
    floats,
    ordering,
    pickling,
    printing,
    provenance,
    rng,
    segregation,
    spans,
    units,
    writes,
)

__all__ = [
    "asyncio_",
    "rng",
    "events",
    "floats",
    "units",
    "pickling",
    "printing",
    "writes",
    "executors",
    "batching",
    "provenance",
    "ordering",
    "boundary",
    "segregation",
    "spans",
]
