"""SL004 float-equality: no ``==`` / ``!=`` on float-typed expressions.

Scoped to the numerical core (``analysis/``, ``sim/``, ``runtime/``, and
``codes/`` directories):
exact equality on floats that went through arithmetic is almost always a
model bug (a probability that is 0.9999999999 is not 1.0).  The rule
flags comparisons where either side is statically float-like -- a float
literal, a ``float(...)`` conversion, a ``math.*`` call, or arithmetic
over those -- and points at ``math.isclose`` or an order comparison
(``<=`` / ``>=``), which are exact at the boundary without relying on
bit-identical rounding.
"""

from __future__ import annotations

import ast

from .._ast_utils import ImportMap, dotted_name
from ..core import FileContext, Finding, Rule, register_rule

__all__ = ["FloatEquality"]

_SCOPE_DIRS = frozenset({"analysis", "sim", "runtime", "codes"})


@register_rule
class FloatEquality(Rule):
    """SL004: flag float equality in the numerical core."""

    rule_id = "SL004"
    title = "float-equality"
    rationale = (
        "Floating-point equality after arithmetic depends on rounding "
        "order; use math.isclose for closeness or <= / >= for exact "
        "boundary sentinels."
    )

    @staticmethod
    def _in_scope(ctx: FileContext) -> bool:
        return bool(_SCOPE_DIRS.intersection(ctx.path.parts))

    def visit_file(self, ctx: FileContext) -> list[Finding]:
        if not self._in_scope(ctx):
            return []
        imports = ImportMap(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            eq_ops = [op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))]
            if not eq_ops:
                continue
            sides = (node.left, *node.comparators)
            if any(self._is_floatlike(side, imports) for side in sides):
                findings.append(ctx.finding(
                    self.rule_id, node,
                    "float equality comparison; use math.isclose (or an "
                    "order comparison for exact boundary sentinels)",
                ))
        return findings

    # ------------------------------------------------------------------
    def _is_floatlike(self, node: ast.expr, imports: ImportMap) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return self._is_floatlike(node.operand, imports)
        if isinstance(node, ast.BinOp):
            return (
                self._is_floatlike(node.left, imports)
                or self._is_floatlike(node.right, imports)
            )
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                return False
            resolved = imports.resolve(dotted)
            if resolved == "float":
                return True
            if resolved.startswith("math.") and resolved not in (
                "math.floor", "math.ceil", "math.trunc", "math.comb",
                "math.perm", "math.gcd", "math.isqrt", "math.factorial",
            ):
                return True
        return False
