"""Shared AST helpers: import resolution and expression-root extraction."""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "dotted_name", "root_name", "attribute_chain"]


class ImportMap:
    """Maps local aliases to the dotted module paths they were imported as.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy import
    random as npr`` binds ``npr -> numpy.random``.  :meth:`resolve` expands
    an alias-rooted dotted path to its canonical form, so ``np.random.seed``
    and ``npr.seed`` both resolve to ``numpy.random.seed``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        expanded = self.aliases.get(head)
        if expanded is None:
            return dotted
        return f"{expanded}.{rest}" if rest else expanded


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string for pure Name/Attribute chains, else None."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def attribute_chain(node: ast.expr) -> list[str]:
    """Name segments along an attribute/call chain, outermost root first.

    Unlike :func:`dotted_name` this tolerates interleaved calls and
    subscripts: ``ctx.rng().random`` yields ``["ctx", "rng", "random"]``.
    """
    parts: list[str] = []
    cur: ast.expr | None = node
    rooted = False
    while cur is not None:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Call):
            cur = cur.func
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        elif isinstance(cur, ast.Name):
            parts.append(cur.id)
            rooted = True
            cur = None
        else:
            cur = None
    return list(reversed(parts)) if rooted else []


def root_name(node: ast.expr) -> str | None:
    """The Name at the root of an attribute/call/subscript chain, if any."""
    chain = attribute_chain(node)
    return chain[0] if chain else None
