"""repro: MLEC -- multi-level erasure coding at data-center scale.

A from-scratch reproduction of *"Design Considerations and Analysis of
Multi-Level Erasure Coding in Large-Scale Data Centers"* (Wang et al.,
SC '23): codecs, placement schemes, repair methods, an event-driven
durability simulator, and the analytic machinery (dynamic programming,
Markov chains, rare-event splitting) behind every figure and table of the
paper's evaluation.

Quick start::

    from repro import MLECParams, mlec_scheme_from_name
    from repro.repair import CatastrophicRepairModel
    from repro.core.types import RepairMethod

    scheme = mlec_scheme_from_name("C/D", MLECParams(10, 2, 17, 3))
    model = CatastrophicRepairModel(scheme)
    model.cross_rack_traffic_bytes(RepairMethod.R_MIN)  # bytes over the net
"""

from .core.config import (
    PAPER_MLEC,
    BandwidthConfig,
    DatacenterConfig,
    FailureConfig,
    LRCParams,
    MLECParams,
    SLECParams,
    paper_setup,
)
from .core.scheme import (
    MLEC_SCHEME_NAMES,
    LRCScheme,
    MLECScheme,
    SLECScheme,
    mlec_scheme_from_name,
)
from .core.types import Level, Placement, RepairMethod
from .runtime import TrialAggregate, TrialContext, TrialExecutionError, TrialRunner

__version__ = "1.0.0"

__all__ = [
    "PAPER_MLEC",
    "BandwidthConfig",
    "DatacenterConfig",
    "FailureConfig",
    "LRCParams",
    "MLECParams",
    "SLECParams",
    "paper_setup",
    "MLEC_SCHEME_NAMES",
    "LRCScheme",
    "MLECScheme",
    "SLECScheme",
    "mlec_scheme_from_name",
    "Level",
    "Placement",
    "RepairMethod",
    "TrialAggregate",
    "TrialContext",
    "TrialExecutionError",
    "TrialRunner",
    "__version__",
]
