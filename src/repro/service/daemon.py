"""The ``mlec-sim serve`` daemon: submit sweeps over HTTP, survive anything.

This module wires the service pieces into one crash-safe loop:

* **Recovery first.**  On startup the daemon replays the durable
  :class:`~repro.service.store.JobStore` and re-queues every non-terminal
  job -- jobs found ``running`` are first parked as ``checkpointed``
  (their trial progress is already journaled by their own checkpoint
  file), so a ``kill -9`` mid-job costs at most the in-flight chunks.
* **Dedupe on submit.**  Job identity is the spec's content hash
  (:meth:`~repro.service.spec.SweepSpec.key`): resubmitting a finished
  sweep returns its cached result without executing a trial, and a
  duplicate of an in-flight sweep attaches to it instead of queueing a
  second copy.
* **Admission control.**  The bounded queue answers saturation with
  ``429`` + ``Retry-After``; a draining daemon answers ``503``.
* **Graceful drain.**  SIGTERM/SIGINT flip the daemon into draining
  mode: readiness goes 503, the running job is checkpointed at its next
  chunk boundary, and the process exits 0 with every byte of progress
  on disk.

The HTTP surface (see ``docs/service.md``):

========  ======================  =======================================
Method    Path                    Purpose
========  ======================  =======================================
POST      ``/jobs``               submit a sweep spec (dedupe-aware)
GET       ``/jobs``               list all jobs
GET       ``/jobs/<id>``          job state, progress, result when done
POST      ``/jobs/<id>/cancel``   cancel a queued or running job
GET       ``/healthz``            liveness (200 while the loop runs)
GET       ``/readyz``             readiness (503 once draining)
GET       ``/metrics``            OpenMetrics service gauges/counters
========  ======================  =======================================
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import os
import signal
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from ..core.atomic import atomic_write_text
from ..obs import MetricsRegistry
from ..obs.export import to_openmetrics
from ..runtime import ChunkExecutor, make_backend
from .executor import JobExecution, JobOutcome
from .http import HttpError, HttpRequest, HttpResponse, HttpServer
from .offload import offload
from .queue import BoundedJobQueue, QueueFull
from .spec import SpecError, SweepSpec
from .store import JobRecord, JobState, JobStore

__all__ = ["ServiceConfig", "SimulationService", "serve"]

#: How long the scheduler dozes between queue polls when idle.
_IDLE_POLL_S = 0.25


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything ``mlec-sim serve`` needs to run."""

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    backend: str = "local"
    queue_capacity: int = 64
    retry_after: float = 5.0


class SimulationService:
    """One daemon instance: HTTP front end + durable scheduler back end."""

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config
        self._store: JobStore | None = None
        self._queue = BoundedJobQueue(
            config.queue_capacity, retry_after=config.retry_after
        )
        self._server = HttpServer(self._handle, config.host, config.port)
        self._backend: ChunkExecutor | None = None
        # Sweeps serialize through this one thread; store/IO offloads use
        # the loop's default pool so a long sweep cannot starve them.
        self._job_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="mlec-job"
        )
        self._work = asyncio.Event()
        self._draining = False
        self._scheduler: asyncio.Task[None] | None = None
        self._current: JobExecution | None = None
        self._current_id: str | None = None
        self._cancel_requested: set[str] = set()
        self._metrics = MetricsRegistry()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Recover state, bind the listener, start scheduling."""
        config = self._config
        self._store = await offload(JobStore, config.state_dir)
        recovered = await offload(self._recover_jobs)
        self._metrics.counter("service.jobs_recovered").inc(recovered)
        if config.backend != "local":
            self._backend = await offload(
                lambda: self._make_started_backend(config)
            )
        host, port = await self._server.start()
        await offload(
            atomic_write_text,
            config.state_dir / "endpoint.json",
            json.dumps(
                {"host": host, "port": port, "pid": os.getpid()},
                sort_keys=True,
            )
            + "\n",
        )
        self._scheduler = asyncio.create_task(
            self._schedule_loop(), name="mlec-scheduler"
        )
        self._update_gauges()
        return host, port

    @staticmethod
    def _make_started_backend(config: ServiceConfig) -> ChunkExecutor:
        backend = make_backend(config.backend, workers=config.workers)
        assert backend is not None  # config.backend != "local"
        backend.start()
        return backend

    def _recover_jobs(self) -> int:
        """Re-queue every job a previous daemon left unfinished."""
        assert self._store is not None
        recovered = 0
        for job in sorted(self._store.active_jobs(), key=lambda j: j.created_at):
            if job.state is JobState.RUNNING:
                # The old daemon died mid-sweep.  Its progress is in the
                # job's checkpoint journal; the honest durable state is
                # "checkpointed, not executing".
                job = self._store.transition(
                    job.job_id, JobState.CHECKPOINTED,
                    error="recovered after daemon crash",
                )
            self._queue.push(job.job_id, job.priority)
            recovered += 1
        return recovered

    def begin_drain(self) -> None:
        """SIGTERM path: stop admitting, checkpoint the running job."""
        if self._draining:
            return
        self._draining = True
        self._metrics.gauge("service.draining").set(1)
        current = self._current
        if current is not None:
            current.request_stop()
        self._work.set()

    async def wait_drained(self) -> None:
        """Block until the scheduler has parked all work and exited."""
        if self._scheduler is not None:
            await self._scheduler

    async def close(self) -> None:
        self.begin_drain()
        await self.wait_drained()
        await self._server.close()
        backend = self._backend
        if backend is not None:
            await offload(lambda: backend.shutdown(wait=False))
        if self._store is not None:
            await offload(self._store.close)
        self._job_pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    async def _schedule_loop(self) -> None:
        assert self._store is not None
        store = self._store
        while True:
            self._update_gauges()
            if self._draining:
                return
            job_id = self._queue.pop()
            if job_id is None:
                self._work.clear()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._work.wait(), _IDLE_POLL_S)
                continue
            record = await offload(store.get, job_id)
            if record is None:
                # Submission admitted but not yet persisted (tiny race
                # window in POST /jobs); put it back and let the store
                # write land.
                self._queue.push(job_id)
                self._work.clear()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._work.wait(), _IDLE_POLL_S)
                continue
            if record.state.terminal:
                continue
            await self._execute_one(record)
            await offload(store.compact_if_needed)

    async def _execute_one(self, record: JobRecord) -> None:
        assert self._store is not None
        store = self._store
        record = await offload(
            lambda: store.transition(
                record.job_id, JobState.RUNNING, bump_attempts=True
            )
        )
        execution = JobExecution(
            record,
            self._config.state_dir,
            workers=self._config.workers,
            backend=self._backend,
        )
        self._current = execution
        self._current_id = record.job_id
        if self._draining or record.job_id in self._cancel_requested:
            execution.request_stop()
        try:
            outcome = await offload(execution.run, executor=self._job_pool)
        finally:
            self._current = None
            self._current_id = None
        await offload(lambda: self._apply_outcome(record.job_id, outcome))

    def _apply_outcome(self, job_id: str, outcome: JobOutcome) -> None:
        assert self._store is not None
        state = outcome.state
        if state is JobState.CHECKPOINTED and job_id in self._cancel_requested:
            # The stop that parked this job was a cancellation, not a
            # drain: progress stays on disk (a resubmit resumes it) but
            # the job itself is cancelled.
            state = JobState.CANCELLED
        self._cancel_requested.discard(job_id)
        self._store.transition(
            job_id,
            state,
            error=outcome.error,
            result_path=outcome.result_path,
            trials_done=outcome.trials_done,
        )
        name = {
            JobState.DONE: "service.jobs_done",
            JobState.FAILED: "service.jobs_failed",
            JobState.CANCELLED: "service.jobs_cancelled",
            JobState.CHECKPOINTED: "service.jobs_checkpointed",
        }[state]
        self._metrics.counter(name).inc()

    def _update_gauges(self) -> None:
        self._metrics.gauge("service.queue_depth").set(len(self._queue))
        self._metrics.gauge("service.jobs_inflight").set(
            1 if self._current is not None else 0
        )
        self._metrics.gauge("service.draining").set(1 if self._draining else 0)
        self._metrics.gauge("service.uptime_seconds").set(
            time.monotonic() - self._started_at
        )

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------
    async def _handle(self, request: HttpRequest) -> HttpResponse:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return self._health()
        if path == "/readyz":
            return self._ready()
        if path == "/metrics":
            return self._openmetrics()
        if path == "/jobs":
            if request.method == "POST":
                return await self._submit(request)
            if request.method == "GET":
                return await self._list_jobs()
            raise HttpError(405, f"{request.method} not allowed on {path}")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/cancel"):
                job_id = rest[: -len("/cancel")]
                if request.method != "POST":
                    raise HttpError(405, "cancel requires POST")
                return await self._cancel(job_id)
            if request.method != "GET":
                raise HttpError(405, f"{request.method} not allowed on {path}")
            return await self._get_job(rest)
        raise HttpError(404, f"no route for {request.path!r}")

    def _health(self) -> HttpResponse:
        return HttpResponse(
            200, {"status": "ok", "draining": self._draining}
        )

    def _ready(self) -> HttpResponse:
        if self._draining:
            return HttpResponse(
                503, {"status": "draining", "ready": False}
            )
        return HttpResponse(200, {"status": "ok", "ready": True})

    def _openmetrics(self) -> HttpResponse:
        self._update_gauges()
        text = to_openmetrics(self._metrics)
        return HttpResponse(
            200,
            text.encode("utf-8"),
            content_type="application/openmetrics-text; version=1.0.0; "
            "charset=utf-8",
        )

    async def _submit(self, request: HttpRequest) -> HttpResponse:
        if self._draining:
            raise HttpError(
                503, "service is draining; resubmit to the next instance",
                {"Retry-After": f"{self._config.retry_after:g}"},
            )
        assert self._store is not None
        store = self._store
        try:
            # Validation resolves fn/args (imports simulation modules,
            # pickles the args tuple): real work, so off-loop.
            spec = await offload(SweepSpec.from_json, request.body)
            job_id = await offload(spec.job_id)
        except SpecError as exc:
            raise HttpError(400, str(exc)) from exc

        existing = await offload(store.get, job_id)
        if existing is not None:
            return await self._submit_existing(existing)

        if job_id not in self._queue and len(self._queue) >= self._queue.capacity:
            raise HttpError(
                429,
                f"job queue at capacity ({self._queue.capacity})",
                {"Retry-After": f"{self._config.retry_after:g}"},
            )
        now = time.time()
        record = JobRecord(
            job_id=job_id,
            spec=spec.to_json(),
            state=JobState.QUEUED,
            priority=spec.priority,
            created_at=now,
            updated_at=now,
        )
        try:
            self._queue.push(job_id, spec.priority)
        except QueueFull as exc:
            raise HttpError(
                429, str(exc), {"Retry-After": f"{exc.retry_after:g}"}
            ) from exc
        try:
            record = await offload(store.submit, record)
        except Exception:
            self._queue.remove(job_id)
            raise
        self._work.set()
        self._metrics.counter("service.jobs_submitted").inc()
        return HttpResponse(202, {"job": record.public_view()})

    async def _submit_existing(self, existing: JobRecord) -> HttpResponse:
        """Dedupe: same content hash as a known job."""
        assert self._store is not None
        store = self._store
        if existing.state is JobState.DONE:
            self._metrics.counter("service.cache_hits").inc()
            record = await offload(store.note_duplicate, existing.job_id)
            view = record.public_view()
            result = await self._load_result(record)
            if result is not None:
                view["result"] = result
            return HttpResponse(200, {"job": view, "cached": True})
        if existing.state.active:
            self._metrics.counter("service.dedupe_attached").inc()
            record = await offload(store.note_duplicate, existing.job_id)
            return HttpResponse(
                202, {"job": record.public_view(), "attached": True}
            )
        # failed / cancelled: a resubmit is an explicit retry, resuming
        # from whatever checkpoint the failed attempt journaled.
        if len(self._queue) >= self._queue.capacity:
            raise HttpError(
                429,
                f"job queue at capacity ({self._queue.capacity})",
                {"Retry-After": f"{self._config.retry_after:g}"},
            )
        record = await offload(
            lambda: store.transition(existing.job_id, JobState.QUEUED)
        )
        self._queue.push(record.job_id, record.priority)
        self._work.set()
        self._metrics.counter("service.jobs_resubmitted").inc()
        return HttpResponse(202, {"job": record.public_view(), "retried": True})

    async def _load_result(self, record: JobRecord) -> Any | None:
        if record.result_path is None:
            return None
        path = Path(record.result_path)

        def read() -> Any | None:
            try:
                return json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                return None

        return await offload(read)

    async def _get_job(self, job_id: str) -> HttpResponse:
        assert self._store is not None
        record = await offload(self._store.get, job_id)
        if record is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        view = record.public_view()
        current = self._current
        if self._current_id == record.job_id and current is not None:
            view["trials_done"] = await offload(current.trials_done)
        if record.state is JobState.DONE:
            result = await self._load_result(record)
            if result is not None:
                view["result"] = result
        return HttpResponse(200, {"job": view})

    async def _list_jobs(self) -> HttpResponse:
        assert self._store is not None
        records = await offload(self._store.list_jobs)
        records.sort(key=lambda r: r.created_at)
        return HttpResponse(
            200,
            {
                "jobs": [r.public_view() for r in records],
                "queue_depth": len(self._queue),
                "draining": self._draining,
            },
        )

    async def _cancel(self, job_id: str) -> HttpResponse:
        assert self._store is not None
        store = self._store
        record = await offload(store.get, job_id)
        if record is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        if record.state.terminal:
            raise HttpError(
                409, f"job {job_id} is already {record.state.value}"
            )
        if self._queue.remove(job_id):
            record = await offload(
                lambda: store.transition(job_id, JobState.CANCELLED)
            )
            self._metrics.counter("service.jobs_cancelled").inc()
            return HttpResponse(200, {"job": record.public_view()})
        # Running (or about to be): ask the execution to stop at the next
        # chunk boundary; _apply_outcome turns the checkpoint into a
        # cancellation.
        self._cancel_requested.add(job_id)
        current = self._current
        if self._current_id == job_id and current is not None:
            current.request_stop()
        return HttpResponse(
            202, {"job": record.public_view(), "cancelling": True}
        )


async def _serve_async(
    config: ServiceConfig, announce: Callable[[str], None]
) -> int:
    service = SimulationService(config)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, service.begin_drain)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loops: rely on KeyboardInterrupt
    host, port = await service.start()
    announce(
        f"mlec-sim serve: listening on http://{host}:{port} "
        f"(state: {config.state_dir})"
    )
    try:
        await service.wait_drained()
    finally:
        await service.close()
    announce("mlec-sim serve: drained; all progress checkpointed")
    return 0


def serve(
    config: ServiceConfig,
    announce: Callable[[str], None] | None = None,
) -> int:
    """Blocking entry point for ``mlec-sim serve``.

    ``announce`` receives human-facing status lines; the CLI passes
    ``print``, library callers (and tests) can pass a collector or
    nothing.  Keeping presentation injected keeps this module clean
    under simlint SL007 (``no-print-in-library``) for real: the daemon
    itself never owns an output stream.
    """
    sink = announce if announce is not None else (lambda _line: None)
    try:
        return asyncio.run(_serve_async(config, sink))
    except KeyboardInterrupt:
        return 0
