"""Minimal asyncio HTTP/1.1 JSON server (stdlib only).

The service API is small (submit, poll, cancel, health, metrics) and the
repository takes no third-party web dependencies, so this module speaks
just enough HTTP/1.1 for robust machine clients: request line + headers,
``Content-Length``-framed bodies with a hard size cap, JSON in and out,
``Connection: close`` on every response (one request per connection --
no keep-alive state machine to get wrong).

Malformed requests are answered, not crashed on: a bad request line, an
oversized body, or invalid JSON each produce a 4xx with a diagnostic
body, and an exception escaping a handler produces a 500 while the
server keeps serving other connections.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from collections.abc import Awaitable, Callable, Mapping
from typing import Any
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "HttpRequest", "HttpResponse", "HttpServer"]

#: Submissions are small JSON specs; anything bigger is abuse or a bug.
MAX_BODY_BYTES = 1 << 20
#: Generous per-request read deadline so a stalled client cannot pin a
#: connection handler forever.
_READ_TIMEOUT = 30.0
_MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raise inside a handler to produce a specific HTTP error response."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


@dataclasses.dataclass(frozen=True)
class HttpRequest:
    """One parsed request, body already JSON-decoded when present."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: Any


@dataclasses.dataclass(frozen=True)
class HttpResponse:
    """A response: JSON-serialized ``payload``, unless it is ``bytes``.

    A ``bytes`` payload is sent verbatim with ``content_type`` -- the
    escape hatch the OpenMetrics endpoint needs (its exposition format
    is line-oriented text, not JSON).
    """

    status: int
    payload: Any
    headers: Mapping[str, str] = dataclasses.field(default_factory=dict)
    content_type: str = "application/json"


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


def _encode(
    status: int,
    payload: Any,
    headers: Mapping[str, str],
    content_type: str = "application/json",
) -> bytes:
    if isinstance(payload, bytes):
        body = payload
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in sorted(headers.items()))
    return "\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body


async def _read_request(reader: asyncio.StreamReader) -> HttpRequest:
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("client closed before sending a request")
    try:
        method, target, version = request_line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError) as exc:
        raise HttpError(400, f"malformed request line: {exc}") from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("ascii").partition(":")
        except UnicodeDecodeError as exc:
            raise HttpError(400, f"malformed header: {exc}") from exc
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")

    body: Any = None
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HttpError(400, f"bad Content-Length {raw_length!r}") from exc
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        raw = await reader.readexactly(length)
        if raw:
            try:
                body = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise HttpError(400, f"body is not valid JSON: {exc}") from exc

    parts = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        path=parts.path,
        query=dict(parse_qsl(parts.query)),
        headers=headers,
        body=body,
    )


class HttpServer:
    """Serve ``handler`` on an asyncio listener; one request per connection."""

    def __init__(
        self, handler: Handler, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = port
        self._server: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; resolves ``port=0`` to the real port."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader), timeout=_READ_TIMEOUT
                )
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                return
            except HttpError as exc:
                writer.write(
                    _encode(exc.status, {"error": str(exc)}, exc.headers)
                )
                await writer.drain()
                return
            try:
                response = await self._handler(request)
            except HttpError as exc:
                response = HttpResponse(
                    exc.status, {"error": str(exc)}, exc.headers
                )
            except Exception as exc:  # handler bug: report, keep serving
                response = HttpResponse(
                    500, {"error": f"internal error: {type(exc).__name__}"}
                )
            writer.write(
                _encode(
                    response.status,
                    response.payload,
                    response.headers,
                    response.content_type,
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
