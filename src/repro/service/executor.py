"""Job execution: one sweep, checkpointed, stoppable, artifact-writing.

A :class:`JobExecution` is the synchronous body of one job.  It always
runs off the event loop (the daemon dispatches it through
:func:`~repro.service.offload.offload` into a dedicated single-thread
pool), and it is the layer where the service's crash-safety promises
become mechanism:

* Every job runs under a :class:`~repro.runtime.ResilientRunner` whose
  checkpoint journal lives in the job's own directory.  ``kill -9`` at
  any instant loses at most the in-flight chunks; the next execution of
  the same job resumes from the journal and -- by the runner's
  determinism contract -- produces byte-identical artifacts.
* :meth:`JobExecution.request_stop` (the graceful-drain path) forwards
  to :meth:`ResilientRunner.request_stop`; the sweep raises
  :class:`~repro.runtime.SweepStopped` at the next chunk boundary and
  the outcome is ``checkpointed``, not ``failed``.
* Result artifacts are deterministic JSON written through
  :func:`~repro.core.atomic.atomic_write_text` -- no timestamps, no
  float formatting drift -- so the CI serve-smoke gate can ``cmp`` a
  crashed-and-resumed service run against an offline baseline.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from pathlib import Path
from typing import Any

from ..core.atomic import atomic_write_text
from ..obs import MetricsRegistry, TraceRecorder
from ..obs.progress import ProgressTracker
from ..runtime import (
    CheckpointError,
    ChunkExecutor,
    ResilientRunner,
    SweepStopped,
    TrialAggregate,
    TrialExecutionError,
)
from .spec import JobPlan, SweepSpec
from .store import JobRecord, JobState

__all__ = ["JobExecution", "JobOutcome"]

RESULT_FILENAME = "result.json"
CHECKPOINT_FILENAME = "checkpoint.jsonl"


@dataclasses.dataclass(frozen=True)
class JobOutcome:
    """What one execution attempt concluded (feeds the store transition)."""

    state: JobState
    error: str | None = None
    result_path: str | None = None
    trials_done: int = 0


def _summarize_burst(stats: TrialAggregate) -> dict[str, Any]:
    return {
        "kind": "burst",
        "trials": stats.trials,
        "pdl_mean": stats.mean,
        "ci95_halfwidth": stats.ci95_halfwidth,
        "loss_fraction": stats.loss_fraction,
        "losses": stats.losses,
        "minimum": stats.minimum,
        "maximum": stats.maximum,
    }


def _summarize_simulate(results: list[Any]) -> dict[str, Any]:
    return {
        "kind": "simulate",
        "trials": len(results),
        "loss_trials": sum(1 for r in results if r.lost_data),
        "data_loss_events": sum(len(r.data_loss_events) for r in results),
        "disk_failures": sum(r.n_disk_failures for r in results),
        "catastrophic_events": sum(r.n_catastrophic_events for r in results),
        "cross_rack_repair_bytes": sum(
            r.cross_rack_repair_bytes for r in results
        ),
        "local_repair_bytes": sum(r.local_repair_bytes for r in results),
    }


class JobExecution:
    """One blocking execution attempt of one job.

    Thread-safety contract: :meth:`run` executes on the job thread;
    :meth:`request_stop` and :meth:`progress` may be called concurrently
    from the event loop's offload threads.
    """

    def __init__(
        self,
        record: JobRecord,
        state_dir: Path,
        *,
        workers: int = 1,
        backend: ChunkExecutor | None = None,
    ) -> None:
        self._record = record
        self._job_dir = state_dir / "jobs" / record.job_id
        self._workers = workers
        self._backend = backend
        self._lock = threading.Lock()
        self._stop_requested = False
        self._runner: ResilientRunner | None = None
        self._tracker = ProgressTracker()

    @property
    def job_dir(self) -> Path:
        return self._job_dir

    @property
    def result_path(self) -> Path:
        return self._job_dir / RESULT_FILENAME

    @property
    def checkpoint_path(self) -> Path:
        return self._job_dir / CHECKPOINT_FILENAME

    def trials_done(self) -> int:
        """Progress for ``GET /jobs/<id>`` (salvaged trials included)."""
        return self._tracker.snapshot().trials_done

    def request_stop(self) -> None:
        """Checkpoint and stop at the next chunk boundary (drain path)."""
        with self._lock:
            self._stop_requested = True
            if self._runner is not None:
                self._runner.request_stop()

    # ------------------------------------------------------------------
    def _make_runner(self, plan: JobPlan) -> ResilientRunner:
        runner = ResilientRunner(
            workers=self._workers,
            chunk_size=plan.chunk,
            checkpoint=self.checkpoint_path,
            resume=self.checkpoint_path.exists(),
            backend=self._backend,
            batch=plan.batch,
        )
        runner.progress = self._tracker
        with self._lock:
            self._runner = runner
            # Stop can land between construction attempts; honor it so a
            # drain during runner setup still parks the job.
            if self._stop_requested:
                runner.request_stop()
        return runner

    def run(self) -> JobOutcome:
        """Execute (or resume) the job; never raises.

        Every failure mode is folded into a :class:`JobOutcome` because
        the scheduler must keep serving other jobs no matter how one
        sweep dies -- an escaping exception here would kill the job
        thread and wedge the queue.
        """
        try:
            return self._run_inner()
        except SweepStopped:
            return JobOutcome(
                state=JobState.CHECKPOINTED,
                trials_done=self.trials_done(),
            )
        except (TrialExecutionError, CheckpointError, ValueError, OSError) as exc:
            return JobOutcome(
                state=JobState.FAILED,
                error=f"{type(exc).__name__}: {exc}",
                trials_done=self.trials_done(),
            )
        except BaseException as exc:  # noqa: BLE001 - scheduler must survive
            return JobOutcome(
                state=JobState.FAILED,
                error=f"unexpected {type(exc).__name__}: {exc}",
                trials_done=self.trials_done(),
            )

    def _run_inner(self) -> JobOutcome:
        spec = SweepSpec.from_json(self._record.spec)
        plan = spec.resolve()
        self._job_dir.mkdir(parents=True, exist_ok=True)
        runner = self._make_runner(plan)
        metrics = MetricsRegistry() if plan.collect_metrics else None
        trace = TraceRecorder() if plan.collect_trace else None

        if spec.kind == "burst":
            stats = runner.run(
                plan.fn, plan.trials, seed=plan.seed, args=plan.args,
                metrics=metrics, trace=trace,
            )
            summary = _summarize_burst(stats)
        else:
            results = runner.map(
                plan.fn, plan.trials, seed=plan.seed, args=plan.args,
                metrics=metrics, trace=trace,
            )
            summary = _summarize_simulate(results)

        # Deterministic serialization: sorted keys, fixed separators, no
        # wall-clock fields.  This is what makes `cmp` a valid CI gate.
        atomic_write_text(
            self.result_path,
            json.dumps(summary, sort_keys=True, indent=2) + "\n",
        )
        if trace is not None:
            trace.write_jsonl(self._job_dir / "trace.jsonl")
        if metrics is not None:
            metrics.write_json(self._job_dir / "metrics.json")
        return JobOutcome(
            state=JobState.DONE,
            result_path=str(self.result_path),
            trials_done=self.trials_done(),
        )
