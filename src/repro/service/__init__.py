"""Simulation-as-a-service: the crash-safe ``mlec-sim serve`` daemon.

The paper's results are design-space sweeps -- hundreds of scheme x
config cells -- and the ROADMAP's north star serves those sweeps to many
users from a long-lived daemon rather than a fresh campaign per request.
This package is that daemon, built so that every robustness property is
load-bearing:

* **Durable job store** (:mod:`repro.service.store`): job metadata lives
  in a WAL-style JSONL file with the same fsync/atomic-write discipline
  as the :class:`~repro.runtime.ResilientRunner` checkpoint journal.  A
  job *is* a resumable checkpoint -- ``kill -9`` the daemon mid-job,
  restart it, and the job resumes from its last journaled chunk with
  byte-identical result artifacts.
* **Content-hash dedupe cache**: jobs are keyed by the sha256 of their
  resolved ``(fn, args, trials, seed)`` -- the same fingerprint the
  checkpoint journal header records -- so an identical resubmitted spec
  is served from the cache without executing a single trial, and a
  concurrent duplicate attaches to the in-flight job.
* **Bounded admission** (:mod:`repro.service.queue`): the priority queue
  sheds load explicitly (HTTP 429 + ``Retry-After``) instead of
  collapsing under it.
* **Graceful drain**: SIGTERM checkpoints the running job at the next
  chunk boundary (:class:`~repro.runtime.SweepStopped`), marks it
  ``checkpointed``, and exits; the next daemon picks it back up.

See ``docs/service.md`` for the HTTP API, the job state machine, and the
durability/trust model.
"""

from .daemon import ServiceConfig, SimulationService, serve
from .queue import BoundedJobQueue, QueueFull
from .spec import SpecError, SweepSpec
from .store import JobRecord, JobState, JobStore, JobStoreError

__all__ = [
    "BoundedJobQueue",
    "JobRecord",
    "JobState",
    "JobStore",
    "JobStoreError",
    "QueueFull",
    "ServiceConfig",
    "SimulationService",
    "SpecError",
    "SweepSpec",
    "serve",
]
