"""Durable job store: a WAL of job state transitions.

The store is the daemon's only memory.  Every job mutation -- submit,
state change, attempt count, error, result location -- is one fsynced
JSONL record appended through the same
:class:`~repro.runtime.resilience.JournalWriter` the checkpoint journal
uses, so the durability discipline (per-append fsync, directory fsync on
creation, torn-tail tolerance on replay) is shared code, not a parallel
reimplementation.

Replay folds records newest-wins per job id.  A crash at any instant
loses at most the torn final line; since a job's *trial progress* is
journaled separately by its own checkpoint file, the worst case after
``kill -9`` is a job whose last state record says ``running`` -- which
recovery treats exactly like ``checkpointed`` and re-queues.

Compaction rewrites the WAL as one snapshot record per job (via
:func:`~repro.core.atomic.atomic_write_text`, so compaction itself is
crash-safe) once the log grows past a threshold; without it a long-lived
daemon's WAL grows without bound.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import threading
import time
from pathlib import Path
from typing import Any

from ..core.atomic import atomic_write_text
from ..runtime.resilience import JournalWriter

__all__ = ["JobRecord", "JobState", "JobStore", "JobStoreError"]

#: Version stamp on every store record; mismatches fail loudly.
STORE_SCHEMA_VERSION = 1

#: Rewrite the WAL as a snapshot once it holds this many transition
#: records beyond the live-job count.
_COMPACT_SLACK = 512


class JobStoreError(RuntimeError):
    """The job store file is unreadable or from an incompatible schema."""


class JobState(enum.Enum):
    """Lifecycle of a job (see docs/service.md for the full machine).

    ``queued -> running -> (checkpointed ->) done | failed | cancelled``.
    ``checkpointed`` is the graceful-drain / crash-recovery parking
    state: progress is on disk, nothing is executing.
    """

    QUEUED = "queued"
    RUNNING = "running"
    CHECKPOINTED = "checkpointed"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

    @property
    def active(self) -> bool:
        """States a restarted daemon must pick back up."""
        return self in (JobState.QUEUED, JobState.RUNNING, JobState.CHECKPOINTED)


#: Legal transitions; anything else is a daemon bug worth crashing on.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.CHECKPOINTED, JobState.DONE, JobState.FAILED,
         JobState.CANCELLED}
    ),
    JobState.CHECKPOINTED: frozenset(
        {JobState.QUEUED, JobState.RUNNING, JobState.CANCELLED,
         JobState.FAILED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset({JobState.QUEUED}),  # resubmit retries
    JobState.CANCELLED: frozenset({JobState.QUEUED}),
}


@dataclasses.dataclass
class JobRecord:
    """Everything the daemon knows about one job."""

    job_id: str
    spec: dict[str, Any]
    state: JobState
    priority: int
    created_at: float
    updated_at: float
    attempts: int = 0
    error: str | None = None
    result_path: str | None = None
    trials_done: int = 0
    duplicates: int = 0

    def to_json(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out["state"] = self.state.value
        return out

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> JobRecord:
        data = dict(payload)
        try:
            data["state"] = JobState(data["state"])
            return cls(**data)
        except (KeyError, TypeError, ValueError) as exc:
            raise JobStoreError(f"malformed job record: {payload!r}") from exc

    def public_view(self) -> dict[str, Any]:
        """The shape ``GET /jobs/<id>`` returns."""
        view = self.to_json()
        view["terminal"] = self.state.terminal
        return view


class JobStore:
    """Thread-safe durable map of job id -> :class:`JobRecord`.

    All methods may be called from the event loop's offload thread and
    from the executor thread concurrently; a single lock serializes both
    the in-memory map and the WAL appends so replay order matches
    mutation order.
    """

    def __init__(self, state_dir: Path) -> None:
        self._dir = state_dir
        self._dir.mkdir(parents=True, exist_ok=True)
        self._path = state_dir / "jobs.jsonl"
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._dropped_tail = False
        self._appends = 0
        self._replay()
        self._writer = JournalWriter(self._path)

    # ------------------------------------------------------------------
    # Replay / compaction
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        lines = raw.split(b"\n")
        # A crash can tear the final line; everything before the last
        # newline must parse (same contract as the checkpoint journal).
        if lines and lines[-1] != b"":
            self._dropped_tail = True
        complete = lines[:-1]
        for lineno, line in enumerate(complete, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JobStoreError(
                    f"{self._path}:{lineno}: corrupt job record "
                    f"(mid-file corruption is not a torn tail): {exc}"
                ) from exc
            if record.get("schema") != STORE_SCHEMA_VERSION:
                raise JobStoreError(
                    f"{self._path}:{lineno}: schema "
                    f"{record.get('schema')!r} != {STORE_SCHEMA_VERSION}"
                )
            job = JobRecord.from_json(record["job"])
            self._jobs[job.job_id] = job
            self._appends += 1

    def compact_if_needed(self) -> bool:
        """Rewrite the WAL as one snapshot line per job when it has grown."""
        with self._lock:
            if self._appends <= len(self._jobs) + _COMPACT_SLACK:
                return False
            text = "".join(
                json.dumps(
                    {"schema": STORE_SCHEMA_VERSION, "job": job.to_json()},
                    separators=(",", ":"),
                )
                + "\n"
                for job in self._jobs.values()
            )
            self._writer.close()
            atomic_write_text(self._path, text)
            self._writer = JournalWriter(self._path)
            self._appends = len(self._jobs)
            return True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def dropped_tail(self) -> bool:
        """True when replay discarded a torn (crash-truncated) final line."""
        return self._dropped_tail

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            job = self._jobs.get(job_id)
            return dataclasses.replace(job) if job is not None else None

    def list_jobs(self) -> list[JobRecord]:
        with self._lock:
            return [dataclasses.replace(job) for job in self._jobs.values()]

    def active_jobs(self) -> list[JobRecord]:
        """Jobs a freshly restarted daemon must re-queue."""
        with self._lock:
            return [
                dataclasses.replace(job)
                for job in self._jobs.values()
                if job.state.active
            ]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _persist(self, job: JobRecord) -> None:
        self._writer.append(
            {"schema": STORE_SCHEMA_VERSION, "job": job.to_json()}
        )
        self._appends += 1

    def submit(self, job: JobRecord) -> JobRecord:
        """Insert a brand-new job (caller has already checked for dupes)."""
        with self._lock:
            if job.job_id in self._jobs:
                raise JobStoreError(f"job {job.job_id} already exists")
            self._jobs[job.job_id] = job
            self._persist(job)
            return dataclasses.replace(job)

    def transition(
        self,
        job_id: str,
        state: JobState,
        *,
        error: str | None = None,
        result_path: str | None = None,
        trials_done: int | None = None,
        bump_attempts: bool = False,
    ) -> JobRecord:
        """Move a job to ``state``, enforcing the lifecycle machine."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobStoreError(f"unknown job {job_id}")
            if state is not job.state and state not in _TRANSITIONS[job.state]:
                raise JobStoreError(
                    f"illegal transition {job.state.value} -> {state.value} "
                    f"for job {job_id}"
                )
            job.state = state
            job.updated_at = time.time()
            job.error = error
            if result_path is not None:
                job.result_path = result_path
            if trials_done is not None:
                job.trials_done = trials_done
            if bump_attempts:
                job.attempts += 1
            self._persist(job)
            return dataclasses.replace(job)

    def note_duplicate(self, job_id: str) -> JobRecord:
        """Record that a submission attached to this job (dedupe hit)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobStoreError(f"unknown job {job_id}")
            job.duplicates += 1
            job.updated_at = time.time()
            self._persist(job)
            return dataclasses.replace(job)

    def close(self) -> None:
        with self._lock:
            self._writer.close()
