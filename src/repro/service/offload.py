"""The one sanctioned bridge from async code to blocking code.

The daemon's HTTP handlers and scheduler run on an asyncio event loop;
the simulation stack (:class:`~repro.runtime.ResilientRunner`, the
executor backends, the fsynced job store) is synchronous and *slow* --
a single ``runner.run`` call blocks for the whole sweep, and even one
``fsync`` can stall the loop long enough to miss heartbeat deadlines.
Calling any of that inline from a coroutine freezes every connected
client for the duration.

``offload`` is the only approved crossing: it runs the blocking callable
on an executor thread and suspends the calling coroutine until the
result is back.  simlint rule SL017 (``blocking-call-in-async``)
enforces this boundary statically -- blocking calls inside ``async def``
bodies in this package are build failures, not code-review nits.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable
from concurrent.futures import Executor
from typing import Any, TypeVar

__all__ = ["offload"]

_T = TypeVar("_T")


async def offload(
    fn: Callable[..., _T],
    /,
    *args: Any,
    executor: Executor | None = None,
) -> _T:
    """Run blocking ``fn(*args)`` off-loop; await its result.

    ``executor=None`` uses the loop's default thread pool (fine for
    short store/IO work).  Long-running sweeps must pass the daemon's
    dedicated single-thread job executor so they queue behind each other
    instead of starving the shared pool.
    """
    loop = asyncio.get_running_loop()
    if args:
        return await loop.run_in_executor(executor, lambda: fn(*args))
    return await loop.run_in_executor(executor, fn)
