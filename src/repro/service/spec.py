"""Sweep specifications: the unit of work ``mlec-sim serve`` accepts.

A :class:`SweepSpec` is the validated, canonicalized form of a client's
JSON job submission.  Two properties carry the service's robustness
story and both live here:

* ``resolve()`` produces *exactly* the ``(fn, args, trials, seed)`` the
  offline CLI paths pass to the runner (``burst_pdl_stats`` internals
  for ``kind="burst"``, ``cmd_simulate`` internals for
  ``kind="simulate"``).  That makes a service job's checkpoint journal
  interchangeable with an offline run's -- same header fingerprint, same
  chunk records, byte-identical results.
* ``key()`` hashes that resolved form (via the same
  :func:`~repro.runtime.args_digest` the journal header records), so the
  dedupe cache key *is* the checkpoint identity: identical submissions
  collapse onto one job, and a restarted daemon re-associates a
  journal with its job without guesswork.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import re
from collections.abc import Callable, Mapping
from typing import Any

from ..core.config import YEAR, DatacenterConfig, MLECParams
from ..core.scheme import MLEC_SCHEME_NAMES, mlec_scheme_from_name
from ..core.types import RepairMethod
from ..runtime.resilience import args_digest

__all__ = ["JobPlan", "SpecError", "SweepSpec"]

_CODE_RE = re.compile(r"^\(?(\d+)\+(\d+)\)?/\(?(\d+)\+(\d+)\)?$")

_KINDS = ("burst", "simulate")
_BATCH_MODES = ("auto", "on", "off")

#: Submission fields every kind accepts, with defaults applied by
#: :meth:`SweepSpec.from_json`.  Anything outside this table (plus the
#: kind-specific table below) is rejected so typos fail loudly instead
#: of silently running a default sweep.
_COMMON_DEFAULTS: dict[str, Any] = {
    "scheme": "C/C",
    "code": "10+2/17+3",
    "trials": 100,
    "seed": 0,
    "batch": "auto",
    "collect_metrics": False,
    "collect_trace": False,
    "priority": 0,
    "chunk": None,
}

_KIND_DEFAULTS: dict[str, dict[str, Any]] = {
    "burst": {"failures": 4, "racks": 2},
    "simulate": {"months": 1, "afr": 0.02, "method": "RMIN"},
}


class SpecError(ValueError):
    """A job submission is malformed; maps to HTTP 400 at the API edge."""


def _parse_code(text: str) -> MLECParams:
    match = _CODE_RE.match(text.strip())
    if match is None:
        raise SpecError(
            f"code must look like 'kn+pn/kl+pl', e.g. '10+2/17+3'; got {text!r}"
        )
    k_n, p_n, k_l, p_l = (int(g) for g in match.groups())
    try:
        return MLECParams(k_n, p_n, k_l, p_l)
    except ValueError as exc:
        raise SpecError(f"invalid MLEC code {text!r}: {exc}") from exc


def _require_int(payload: Mapping[str, Any], field: str, minimum: int) -> int:
    value = payload[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{field} must be an integer, got {value!r}")
    if value < minimum:
        raise SpecError(f"{field} must be >= {minimum}, got {value}")
    return value


def _require_bool(payload: Mapping[str, Any], field: str) -> bool:
    value = payload[field]
    if not isinstance(value, bool):
        raise SpecError(f"{field} must be a boolean, got {value!r}")
    return value


@dataclasses.dataclass(frozen=True)
class JobPlan:
    """A spec resolved to concrete runner inputs (see module docstring)."""

    fn: Callable[..., Any]
    args: tuple[Any, ...]
    trials: int
    seed: int
    batch: str
    chunk: int | None
    collect_metrics: bool
    collect_trace: bool

    @property
    def fn_name(self) -> str:
        """``module:qualname`` -- the identity the journal header records."""
        return f"{self.fn.__module__}:{self.fn.__qualname__}"


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """One validated sweep request (burst PDL cell or full-system sim)."""

    kind: str
    scheme: str
    code: str
    trials: int
    seed: int
    batch: str
    collect_metrics: bool
    collect_trace: bool
    priority: int
    chunk: int | None
    # burst
    failures: int | None = None
    racks: int | None = None
    # simulate
    months: int | None = None
    afr: float | None = None
    method: str | None = None

    # ------------------------------------------------------------------
    # Construction / validation
    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, payload: Any) -> SweepSpec:
        """Validate a decoded JSON submission into a spec.

        Raises :class:`SpecError` on any malformed, missing, unknown, or
        out-of-range field -- the service turns that into HTTP 400 with
        the message as the body, so validation messages are user-facing.
        """
        if not isinstance(payload, Mapping):
            raise SpecError(f"job spec must be a JSON object, got {payload!r}")
        kind = payload.get("kind")
        if kind not in _KINDS:
            raise SpecError(f"kind must be one of {_KINDS}, got {kind!r}")
        allowed = {"kind", *_COMMON_DEFAULTS, *_KIND_DEFAULTS[kind]}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise SpecError(
                f"unknown field(s) for kind={kind!r}: {', '.join(unknown)}"
            )
        merged: dict[str, Any] = {
            **_COMMON_DEFAULTS,
            **_KIND_DEFAULTS[kind],
            **{k: v for k, v in payload.items() if k != "kind"},
        }

        scheme = merged["scheme"]
        if not isinstance(scheme, str):
            raise SpecError(f"scheme must be a string, got {scheme!r}")
        scheme = scheme.strip().upper()
        if scheme not in MLEC_SCHEME_NAMES:
            raise SpecError(
                f"scheme must be one of {MLEC_SCHEME_NAMES}, got {scheme!r}"
            )
        code = merged["code"]
        if not isinstance(code, str):
            raise SpecError(f"code must be a string, got {code!r}")
        _parse_code(code)  # validate now so submission fails, not execution

        batch = merged["batch"]
        if batch not in _BATCH_MODES:
            raise SpecError(f"batch must be one of {_BATCH_MODES}, got {batch!r}")

        chunk = merged["chunk"]
        if chunk is not None:
            if isinstance(chunk, bool) or not isinstance(chunk, int) or chunk < 1:
                raise SpecError(f"chunk must be a positive integer, got {chunk!r}")

        fields: dict[str, Any] = {
            "kind": kind,
            "scheme": scheme,
            "code": code.strip(),
            "trials": _require_int(merged, "trials", 1),
            "seed": _require_int(merged, "seed", 0),
            "batch": batch,
            "collect_metrics": _require_bool(merged, "collect_metrics"),
            "collect_trace": _require_bool(merged, "collect_trace"),
            "priority": _require_int(merged, "priority", 0),
            "chunk": chunk,
        }
        if kind == "burst":
            fields["failures"] = _require_int(merged, "failures", 1)
            fields["racks"] = _require_int(merged, "racks", 1)
        else:
            fields["months"] = _require_int(merged, "months", 1)
            afr = merged["afr"]
            if isinstance(afr, bool) or not isinstance(afr, (int, float)):
                raise SpecError(f"afr must be a number, got {afr!r}")
            afr = float(afr)
            if not math.isfinite(afr) or not 0.0 < afr < 1.0:
                raise SpecError(f"afr must be in (0, 1), got {afr!r}")
            fields["afr"] = afr
            method = merged["method"]
            try:
                fields["method"] = RepairMethod(method).value
            except ValueError as exc:
                raise SpecError(
                    f"method must be one of "
                    f"{[m.value for m in RepairMethod]}, got {method!r}"
                ) from exc
        return cls(**fields)

    # ------------------------------------------------------------------
    # Canonical form and identity
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """Canonical JSON form: defaults applied, ``None`` fields dropped.

        Canonicalization means clients that spell the same sweep
        differently (defaults omitted vs. spelled out, keys reordered)
        still land on the same stored spec.
        """
        out = dataclasses.asdict(self)
        return {k: v for k, v in sorted(out.items()) if v is not None}

    def resolve(self) -> JobPlan:
        """Build the exact runner inputs this spec denotes.

        Mirrors ``burst_pdl_stats`` (burst) and ``cmd_simulate``
        (simulate) argument construction line for line; drift here would
        silently fork service results from offline results, which the CI
        serve-smoke ``cmp`` gate exists to catch.
        """
        scheme = mlec_scheme_from_name(self.scheme, _parse_code(self.code))
        if self.kind == "burst":
            from ..sim.burst import MLECBurstEvaluator, _burst_trial

            evaluator = MLECBurstEvaluator(scheme)
            dc: DatacenterConfig = scheme.dc
            assert self.failures is not None and self.racks is not None
            fn: Callable[..., Any] = _burst_trial
            args: tuple[Any, ...] = (evaluator, self.failures, self.racks, dc)
        else:
            # Lazy: repro.cli imports this package only inside cmd_serve,
            # so this import is acyclic at call time.
            from ..cli import _simulate_trial

            assert self.months is not None and self.afr is not None
            assert self.method is not None
            mission_time = self.months / 12 * YEAR
            fn = _simulate_trial
            args = (
                scheme,
                RepairMethod(self.method),
                self.afr,
                mission_time,
                self.seed,
            )
        return JobPlan(
            fn=fn,
            args=args,
            trials=self.trials,
            seed=self.seed,
            batch=self.batch,
            chunk=self.chunk,
            collect_metrics=self.collect_metrics,
            collect_trace=self.collect_trace,
        )

    def key(self) -> str:
        """Content hash identifying this sweep's *results*.

        Hashes the resolved ``(fn, args, trials, seed)`` -- the same
        fingerprint the checkpoint journal header carries -- plus the
        collect flags (a traced run produces a different artifact set
        than an untraced one).  Deliberately excludes ``batch``,
        ``chunk``, and ``priority``: those change *how* a sweep runs,
        never a result byte, so they must not fracture the cache.
        """
        plan = self.resolve()
        ident = {
            "fn": plan.fn_name,
            "args": args_digest(plan.args),
            "trials": plan.trials,
            "seed": plan.seed,
            "collect_metrics": plan.collect_metrics,
            "collect_trace": plan.collect_trace,
        }
        blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def job_id(self) -> str:
        """Stable job id derived from :meth:`key` (dedupe-friendly)."""
        return f"j{self.key()[:16]}"
