"""Bounded priority admission queue for the service daemon.

Admission control is a robustness feature, not a scheduling nicety: an
unbounded queue converts overload into unbounded memory growth and
unbounded latency, and the failure shows up far from its cause.  This
queue has a hard capacity; when full, :meth:`BoundedJobQueue.push`
raises :class:`QueueFull` carrying a ``retry_after`` hint, which the
HTTP layer maps to ``429 Too Many Requests`` + ``Retry-After`` -- the
client learns *immediately* that the service is saturated instead of
discovering it by timeout.

The queue is deliberately not thread-safe: it is confined to the event
loop thread (submissions and scheduler pops both run there), so locking
would only paper over an architecture bug.
"""

from __future__ import annotations

import heapq
import itertools

__all__ = ["BoundedJobQueue", "QueueFull"]


class QueueFull(RuntimeError):
    """The admission queue is at capacity; retry after ``retry_after`` s."""

    def __init__(self, capacity: int, retry_after: float) -> None:
        super().__init__(
            f"job queue at capacity ({capacity}); retry in {retry_after:g}s"
        )
        self.capacity = capacity
        self.retry_after = retry_after


class BoundedJobQueue:
    """Max-priority queue of job ids with a hard admission bound.

    Ties break FIFO (a monotonic sequence number), so equal-priority
    jobs run in submission order -- re-queued recovered jobs are pushed
    first at startup and therefore resume before new arrivals at the
    same priority.
    """

    def __init__(self, capacity: int, retry_after: float = 5.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._retry_after = retry_after
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._members: set[str] = set()

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._members

    @property
    def capacity(self) -> int:
        return self._capacity

    def push(self, job_id: str, priority: int = 0) -> None:
        """Admit ``job_id`` or raise :class:`QueueFull`.

        Pushing an id already queued is a no-op: a duplicate submission
        attaches to the queued job rather than double-scheduling it.
        """
        if job_id in self._members:
            return
        if len(self._heap) >= self._capacity:
            raise QueueFull(self._capacity, self._retry_after)
        heapq.heappush(self._heap, (-priority, next(self._seq), job_id))
        self._members.add(job_id)

    def pop(self) -> str | None:
        """Highest-priority job id, or ``None`` when empty."""
        if not self._heap:
            return None
        _, _, job_id = heapq.heappop(self._heap)
        self._members.discard(job_id)
        return job_id

    def remove(self, job_id: str) -> bool:
        """Withdraw a queued job (cancellation); True if it was queued."""
        if job_id not in self._members:
            return False
        self._heap = [entry for entry in self._heap if entry[2] != job_id]
        heapq.heapify(self._heap)
        self._members.discard(job_id)
        return True
