"""OpenMetrics exposition: render, parse, and serve a MetricsRegistry.

Long campaigns should be scrape-able mid-flight.  This module turns any
:class:`~repro.obs.MetricsRegistry` snapshot into OpenMetrics text
exposition (:func:`to_openmetrics`), parses that text back
(:func:`parse_openmetrics` -- the round-trip is pinned in tests and CI),
and serves it over HTTP (:class:`MetricsExporter`, behind the CLI's
``--metrics-port`` flag).

Mapping conventions:

* Dotted metric names become underscored families
  (``runtime.chunk_retries`` -> ``runtime_chunk_retries``); the metric
  name grammar guarantees the result is a valid OpenMetrics name.
* Counters expose one ``<family>_total`` sample; gauges one bare
  sample; histograms cumulative ``_bucket{le="..."}`` samples (the
  registry's inclusive upper bounds map directly onto ``le``), a
  ``+Inf`` bucket, ``_count``, and ``_sum``.
* The exposition ends with the mandatory ``# EOF`` terminator.

Everything is stdlib-only, and the HTTP endpoint is read-only: one GET
of ``/metrics`` (or ``/``) returns the current exposition.  Scrapes are
served from a snapshot taken at request time, so a scrape observes the
campaign mid-flight without pausing it.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .metrics import MetricsRegistry

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "to_openmetrics",
    "parse_openmetrics",
    "MetricsExporter",
]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def _family(name: str) -> str:
    return name.replace(".", "_")


def _format_value(value: float) -> str:
    """Shortest float rendering that parses back to the same value."""
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def to_openmetrics(*registries: MetricsRegistry) -> str:
    """Render one or more registries as OpenMetrics text exposition.

    Later registries win on (unlikely) family collisions, mirroring
    :meth:`MetricsRegistry.merge` gauge semantics.  Families are emitted
    sorted within each section, so the exposition of a given snapshot is
    deterministic.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, Any]] = {}
    for registry in registries:
        snap = registry.snapshot()
        for name, value in snap["counters"].items():
            counters[_family(name)] = float(value)  # type: ignore[arg-type]
        for name, value in snap["gauges"].items():
            gauges[_family(name)] = float(value)  # type: ignore[arg-type]
        for name, hist in snap["histograms"].items():
            histograms[_family(name)] = dict(hist)  # type: ignore[arg-type]

    lines: list[str] = []
    for family in sorted(counters):
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_format_value(counters[family])}")
    for family in sorted(gauges):
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(gauges[family])}")
    for family in sorted(histograms):
        hist = histograms[family]
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += int(count)
            lines.append(
                f'{family}_bucket{{le="{_format_value(float(bound))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{family}_bucket{{le="+Inf"}} {int(hist["count"])}')
        lines.append(f"{family}_count {int(hist['count'])}")
        lines.append(f"{family}_sum {_format_value(float(hist['total']))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_number(text: str, where: str) -> float:
    special = {"NaN": float("nan"), "+Inf": float("inf"), "-Inf": float("-inf")}
    if text in special:
        return special[text]
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{where}: not a number: {text!r}") from None


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Parse OpenMetrics text back into a snapshot-shaped structure.

    Returns ``{"counters": {family: value}, "gauges": {family: value},
    "histograms": {family: {"buckets": [(le, cumulative), ...],
    "count": int, "sum": float}}}`` with underscored family names.
    Validates the structural rules this exporter (and any compliant
    producer) must follow: a ``# TYPE`` line before a family's samples,
    samples matching the declared type, and a final ``# EOF``.
    """
    types: dict[str, str] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, Any]] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        where = f"openmetrics:{lineno}"
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"{where}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError(
                        f"{where}: unsupported metric type {parts[3]!r}"
                    )
                types[parts[2]] = parts[3]
            continue  # HELP/UNIT and other comments are ignored
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"{where}: malformed sample line {line!r}")
        value = _parse_number(value_part, where)
        name, labels = _split_labels(name_part, where)
        family, kind = _resolve_family(name, types, where)
        if kind == "counter":
            counters[family] = value
        elif kind == "gauge":
            gauges[family] = value
        else:
            hist = histograms.setdefault(
                family, {"buckets": [], "count": 0, "sum": 0.0}
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ValueError(f"{where}: histogram bucket without le=")
                hist["buckets"].append((labels["le"], value))
            elif name.endswith("_count"):
                hist["count"] = int(value)
            elif name.endswith("_sum"):
                hist["sum"] = value
            else:
                raise ValueError(
                    f"{where}: unexpected histogram sample {name!r}"
                )
    if not saw_eof:
        raise ValueError("openmetrics: missing # EOF terminator")
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _split_labels(
    name_part: str, where: str
) -> tuple[str, dict[str, str]]:
    if "{" not in name_part:
        return name_part, {}
    name, _, rest = name_part.partition("{")
    if not rest.endswith("}"):
        raise ValueError(f"{where}: unterminated label set in {name_part!r}")
    labels: dict[str, str] = {}
    body = rest[:-1]
    if body:
        for item in body.split(","):
            key, eq, value = item.partition("=")
            if not eq or not (value.startswith('"') and value.endswith('"')):
                raise ValueError(f"{where}: malformed label {item!r}")
            labels[key.strip()] = value[1:-1]
    return name, labels


def _resolve_family(
    name: str, types: dict[str, str], where: str
) -> tuple[str, str]:
    """Map a sample name back to its declared family and type."""
    candidates = [name]
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            candidates.append(name[: -len(suffix)])
    for candidate in candidates:
        if candidate in types:
            return candidate, types[candidate]
    raise ValueError(f"{where}: sample {name!r} precedes its # TYPE line")


class _MetricsServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    render: Callable[[], str]


class _MetricsHandler(BaseHTTPRequestHandler):
    server: _MetricsServer

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "only /metrics is served")
            return
        try:
            body = self.server.render().encode("utf-8")
        except Exception as exc:  # scrape must not kill the campaign
            self.send_error(500, f"exposition failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silenced: scrapes must not interleave with campaign stderr."""


class MetricsExporter:
    """A pull endpoint serving live OpenMetrics from a source callback.

    ``source`` is called per scrape and returns the exposition text
    (typically ``lambda: to_openmetrics(runner.ops_metrics)``); it runs
    on the server thread, so it must only *read* shared state.  The
    registry mutation paths are single-writer and
    :meth:`~repro.obs.MetricsRegistry.snapshot` materializes its key
    lists up front, so a scrape racing a campaign sees a slightly stale
    but well-formed view.  Retries absorb the rare concurrent-resize
    window.
    """

    def __init__(
        self,
        source: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._source = source
        self._host = host
        self._port = port
        self._server: _MetricsServer | None = None
        self._thread: threading.Thread | None = None

    def _render(self) -> str:
        last: Exception | None = None
        for _ in range(3):
            try:
                return self._source()
            except RuntimeError as exc:  # dict resized during snapshot
                last = exc
        raise RuntimeError(f"metrics exposition failed: {last}")

    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns ``(host, port)``."""
        if self._server is not None:
            return self.address
        server = _MetricsServer((self._host, self._port), _MetricsHandler)
        server.render = self._render
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="mlec-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("exporter is not started")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
