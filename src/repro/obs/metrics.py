"""Mergeable metrics: counters, gauges, fixed-bucket histograms.

Naming convention (enforced): lowercase dotted namespaces,
``<layer>.<quantity>[_<unit>]`` -- e.g. ``sim.disk_failures``,
``sim.net_repair_hours``, ``runtime.chunk_seconds``.  The layer prefix is
the producing module family (``sim``, ``slec``, ``burst``, ``repair``,
``fault``, ``chaos``, ``runtime``); unit suffixes follow the unit-typed
aliases in :mod:`repro.core.types` (``_seconds``, ``_hours``, ``_bytes``).

Determinism contract: every mutation is a pure function of the producing
trial's inputs, and :meth:`MetricsRegistry.merge` folds registries in trial
order, so the merged snapshot is identical for any
:class:`~repro.runtime.TrialRunner` worker count.  Counter and histogram
merges are plain sums (order-free); gauges keep the *last written* value,
which merge replays by taking the right operand's value whenever it has
been written at all -- chunk boundaries therefore cannot change the
outcome.
"""

from __future__ import annotations

import bisect
import json
import math
import re
from pathlib import Path

from repro.core.atomic import atomic_write_text

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.fullmatch(name):
        raise ValueError(
            f"bad metric name {name!r}; expected lowercase dotted "
            "namespaces like 'sim.disk_failures'"
        )
    return name


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A last-written-value metric (plus a write count for mergeability)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin.

    ``bounds`` are strictly increasing inclusive upper bounds; a value
    lands in the first bucket whose bound is ``>= value``, or in the
    overflow bin past the last bound.  Fixed bounds make histograms
    mergeable by elementwise addition.
    """

    __slots__ = ("name", "bounds", "counts", "total")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing: {bounds}"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect.bisect_left(self.bounds, v)] += 1
        self.total += v

    @property
    def count(self) -> int:
        return sum(self.counts)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating the fixed buckets.

        The rank ``q * count`` is located in the cumulative counts and
        mapped linearly across its bucket ``(lower, upper]`` -- the
        standard fixed-bucket estimator (what a Prometheus
        ``histogram_quantile`` computes from the same data).  The first
        bucket interpolates from 0, and a rank landing in the overflow
        bin clamps to the last bound (there is no upper edge to
        interpolate toward).  Returns NaN for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        n = self.count
        if n == 0:
            return math.nan
        rank = q * n
        cumulative = 0.0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if count and cumulative + count >= rank:
                fraction = max(0.0, rank - cumulative) / count
                return lower + fraction * (bound - lower)
            cumulative += count
            lower = bound
        return self.bounds[-1]


class MetricsRegistry:
    """A namespace of metrics, one instance per producer.

    ``counter`` / ``gauge`` / ``histogram`` create on first use and return
    the existing instrument afterwards; asking for an existing name with a
    different instrument type (or different histogram bounds) is an error,
    because it would make merges ambiguous.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _check_free(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._check_free(_check_name(name), "counter")
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            self._check_free(_check_name(name), "gauge")
            existing = self._gauges[name] = Gauge(name)
        return existing

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            if bounds is None:
                raise ValueError(
                    f"histogram {name!r} does not exist yet; pass bounds"
                )
            self._check_free(_check_name(name), "histogram")
            existing = self._histograms[name] = Histogram(name, bounds)
        elif bounds is not None and tuple(bounds) != existing.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{existing.bounds}, not {tuple(bounds)}"
            )
        return existing

    # ------------------------------------------------------------------
    def merge(self, other: MetricsRegistry) -> None:
        """Fold ``other`` in; the right operand must be the *later* one."""
        for name, counter in other._counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other._gauges.items():
            mine = self.gauge(name)
            if gauge.updates:
                mine.value = gauge.value
            mine.updates += gauge.updates
        for name, hist in other._histograms.items():
            mine = self.histogram(name, hist.bounds)
            for i, c in enumerate(hist.counts):
                mine.counts[i] += c
            mine.total += hist.total

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, object]]:
        """A deterministic, JSON-serializable view (names sorted)."""
        counters = {
            name: self._counters[name].value for name in sorted(self._counters)
        }
        gauges = {
            name: self._gauges[name].value for name in sorted(self._gauges)
        }
        histograms: dict[str, object] = {}
        for name in sorted(self._histograms):
            hist = self._histograms[name]

            def finite(q: float, hist: Histogram = hist) -> float | None:
                value = hist.quantile(q)
                return None if math.isnan(value) else value

            histograms[name] = {
                "bounds": list(hist.bounds),
                "counts": list(hist.counts),
                "count": hist.count,
                "total": hist.total,
                "p50": finite(0.50),
                "p95": finite(0.95),
                "p99": finite(0.99),
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def write_json(self, path: str | Path) -> None:
        """Write the snapshot atomically (temp + fsync + rename)."""
        atomic_write_text(path, json.dumps(self.snapshot(), indent=2) + "\n")

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)
