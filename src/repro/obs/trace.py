"""Typed trace records: schema, recorder, JSONL round-trip.

A trace is a stream of flat JSON objects, one per line, every one shaped::

    {"v": 1, "ts": <seconds>, "kind": "<layer>.<event>",
     "trial": <int|null>, "pool": <int|null>, "data": {...}}

* ``v`` -- schema version (:data:`TRACE_SCHEMA_VERSION`).
* ``ts`` -- simulation time in seconds (not wall clock), ``>= 0``.
* ``kind`` -- dotted event type, same namespace convention as metrics
  (``sim.disk_failure``, ``sim.net_repair_complete``, ``repair.plan``, ...).
* ``trial`` -- Monte-Carlo trial index when the record was produced inside
  a :class:`~repro.runtime.TrialRunner` sweep, else ``null``.
* ``pool`` -- local-pool id the event concerns, else ``null``.
* ``data`` -- free-form but JSON-primitive payload (bytes moved, degraded
  flags, method names...).

Schema **v2** (:data:`SPAN_SCHEMA_VERSION`) extends v1 with *span*
records -- the hierarchical timing facts :mod:`repro.obs.spans` emits
into the runner-owned operational trace::

    {"v": 2, "ts": <start seconds>, "kind": "span.<name>",
     "trial": <int|null>, "pool": <int|null>,
     "span": "<16 hex>", "parent": "<16 hex|null>", "data": {...}}

``ts`` is the span's start on the producer's operational clock, ``span``
its deterministic id, ``parent`` the enclosing span's id (``null`` for a
root), and ``data`` carries ``dur_s`` plus attribution (host, chunk
range, attempt).  A single stream may mix v1 and v2 records: result
traces stay pure v1 (their bytes are compared across worker counts),
while ops traces interleave both.

Records are built with a fixed key order and serialized with stable
separators, so the JSONL bytes of a trial are identical for any worker
count -- the property ``tests/test_runtime.py`` pins down.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import Any

from repro.core.atomic import atomic_write_text

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SPAN_SCHEMA_VERSION",
    "TraceRecorder",
    "validate_record",
    "read_jsonl",
    "write_jsonl",
]

TRACE_SCHEMA_VERSION = 1
#: Schema version of span records (v1 plus ``span``/``parent`` keys).
SPAN_SCHEMA_VERSION = 2

_RECORD_KEYS = ("v", "ts", "kind", "trial", "pool", "data")
_SPAN_KEYS = ("v", "ts", "kind", "trial", "pool", "span", "parent", "data")
_PRIMITIVES = (str, int, float, bool, type(None))
_HEX_DIGITS = frozenset("0123456789abcdef")


def _check_span_id(value: object, field: str) -> None:
    if (
        not isinstance(value, str)
        or not 8 <= len(value) <= 64
        or not set(value) <= _HEX_DIGITS
    ):
        raise ValueError(
            f"trace {field} must be an 8-64 char lowercase hex id, got {value!r}"
        )


def validate_record(obj: object) -> dict[str, Any]:
    """Check one parsed record against the schema; returns it, or raises.

    Accepts v1 event records and v2 span records.  Raises
    :class:`ValueError` naming the first violated constraint, so a
    corrupt trace fails loudly in CI rather than skewing a report.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace record must be an object, got {type(obj).__name__}")
    version = obj.get("v")
    if version not in (TRACE_SCHEMA_VERSION, SPAN_SCHEMA_VERSION):
        raise ValueError(
            f"unsupported trace schema version {version!r} "
            f"(this reader understands {TRACE_SCHEMA_VERSION} and "
            f"{SPAN_SCHEMA_VERSION})"
        )
    expected = _SPAN_KEYS if version == SPAN_SCHEMA_VERSION else _RECORD_KEYS
    if set(obj) != set(expected):
        raise ValueError(
            f"trace record keys must be {sorted(expected)} for schema "
            f"v{version}, got {sorted(obj)}"
        )
    if version == SPAN_SCHEMA_VERSION:
        _check_span_id(obj["span"], "span")
        if obj["parent"] is not None:
            _check_span_id(obj["parent"], "parent")
    ts = obj["ts"]
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        raise ValueError(f"trace ts must be a non-negative number, got {ts!r}")
    kind = obj["kind"]
    if not isinstance(kind, str) or "." not in kind:
        raise ValueError(
            f"trace kind must be a dotted string like 'sim.disk_failure', "
            f"got {kind!r}"
        )
    for field in ("trial", "pool"):
        value = obj[field]
        bad_int = not isinstance(value, int) or isinstance(value, bool)
        if value is not None and bad_int:
            raise ValueError(f"trace {field} must be an int or null, got {value!r}")
    data = obj["data"]
    if not isinstance(data, dict):
        raise ValueError(f"trace data must be an object, got {data!r}")
    for key, value in data.items():
        if not isinstance(key, str):
            raise ValueError(f"trace data keys must be strings, got {key!r}")
        if isinstance(value, (list, tuple)):
            if not all(isinstance(v, _PRIMITIVES) for v in value):
                raise ValueError(
                    f"trace data[{key!r}] list entries must be JSON primitives"
                )
        elif not isinstance(value, _PRIMITIVES):
            raise ValueError(
                f"trace data[{key!r}] must be a JSON primitive or flat list, "
                f"got {type(value).__name__}"
            )
    return obj


class TraceRecorder:
    """Collects trace records in memory; writing JSONL is a separate step.

    One recorder per producer: simulators and trial functions append to a
    private recorder, and the parent process concatenates per-trial record
    lists in trial order (see :class:`~repro.runtime.TrialRunner`), which
    keeps the stream deterministic for any worker count.
    """

    __slots__ = ("trial", "records")

    def __init__(self, trial: int | None = None) -> None:
        self.trial = trial
        self.records: list[dict[str, Any]] = []

    def event(
        self, ts: float, kind: str, pool: int | None = None, **data: object
    ) -> None:
        """Append one record; ``data`` values must be JSON primitives."""
        self.records.append({
            "v": TRACE_SCHEMA_VERSION,
            "ts": float(ts),
            "kind": kind,
            "trial": self.trial,
            "pool": pool,
            "data": data,
        })

    def span_record(
        self,
        ts: float,
        kind: str,
        span: str,
        parent: str | None,
        pool: int | None = None,
        **data: object,
    ) -> None:
        """Append one schema-v2 span record (see :mod:`repro.obs.spans`).

        ``ts`` is the span's *start*; callers put the duration in
        ``data["dur_s"]``.  Only the runner-owned ops trace carries span
        records -- result traces stay pure v1.
        """
        self.records.append({
            "v": SPAN_SCHEMA_VERSION,
            "ts": float(ts),
            "kind": kind,
            "trial": self.trial,
            "pool": pool,
            "span": span,
            "parent": parent,
            "data": data,
        })

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Append already-built records (merging worker chunks in order)."""
        self.records.extend(dict(r) for r in records)

    def write_jsonl(self, path: str | Path) -> None:
        write_jsonl(path, self.records)

    def __len__(self) -> int:
        return len(self.records)


def write_jsonl(path: str | Path, records: Iterable[Mapping[str, Any]]) -> None:
    """Serialize records to JSONL with deterministic byte layout.

    The write is atomic (temp + fsync + rename): an interrupted run
    leaves either the previous complete file or the new one, never a
    truncated trace that would poison ``read_jsonl``/CI comparisons.
    """
    atomic_write_text(
        path,
        "".join(
            json.dumps(record, separators=(",", ":")) + "\n" for record in records
        ),
    )


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read and schema-validate a JSONL trace; raises ValueError on corruption."""
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            try:
                records.append(validate_record(parsed))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return records
