"""Typed trace records: schema, recorder, JSONL round-trip.

A trace is a stream of flat JSON objects, one per line, every one shaped::

    {"v": 1, "ts": <seconds>, "kind": "<layer>.<event>",
     "trial": <int|null>, "pool": <int|null>, "data": {...}}

* ``v`` -- schema version (:data:`TRACE_SCHEMA_VERSION`).
* ``ts`` -- simulation time in seconds (not wall clock), ``>= 0``.
* ``kind`` -- dotted event type, same namespace convention as metrics
  (``sim.disk_failure``, ``sim.net_repair_complete``, ``repair.plan``, ...).
* ``trial`` -- Monte-Carlo trial index when the record was produced inside
  a :class:`~repro.runtime.TrialRunner` sweep, else ``null``.
* ``pool`` -- local-pool id the event concerns, else ``null``.
* ``data`` -- free-form but JSON-primitive payload (bytes moved, degraded
  flags, method names...).

Records are built with a fixed key order and serialized with stable
separators, so the JSONL bytes of a trial are identical for any worker
count -- the property ``tests/test_runtime.py`` pins down.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import Any

from repro.core.atomic import atomic_write_text

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "validate_record",
    "read_jsonl",
    "write_jsonl",
]

TRACE_SCHEMA_VERSION = 1

_RECORD_KEYS = ("v", "ts", "kind", "trial", "pool", "data")
_PRIMITIVES = (str, int, float, bool, type(None))


def validate_record(obj: object) -> dict[str, Any]:
    """Check one parsed record against the schema; returns it, or raises.

    Raises :class:`ValueError` naming the first violated constraint, so a
    corrupt trace fails loudly in CI rather than skewing a report.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace record must be an object, got {type(obj).__name__}")
    if set(obj) != set(_RECORD_KEYS):
        raise ValueError(
            f"trace record keys must be {sorted(_RECORD_KEYS)}, "
            f"got {sorted(obj)}"
        )
    if obj["v"] != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {obj['v']!r} "
            f"(this reader understands {TRACE_SCHEMA_VERSION})"
        )
    ts = obj["ts"]
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        raise ValueError(f"trace ts must be a non-negative number, got {ts!r}")
    kind = obj["kind"]
    if not isinstance(kind, str) or "." not in kind:
        raise ValueError(
            f"trace kind must be a dotted string like 'sim.disk_failure', "
            f"got {kind!r}"
        )
    for field in ("trial", "pool"):
        value = obj[field]
        bad_int = not isinstance(value, int) or isinstance(value, bool)
        if value is not None and bad_int:
            raise ValueError(f"trace {field} must be an int or null, got {value!r}")
    data = obj["data"]
    if not isinstance(data, dict):
        raise ValueError(f"trace data must be an object, got {data!r}")
    for key, value in data.items():
        if not isinstance(key, str):
            raise ValueError(f"trace data keys must be strings, got {key!r}")
        if isinstance(value, (list, tuple)):
            if not all(isinstance(v, _PRIMITIVES) for v in value):
                raise ValueError(
                    f"trace data[{key!r}] list entries must be JSON primitives"
                )
        elif not isinstance(value, _PRIMITIVES):
            raise ValueError(
                f"trace data[{key!r}] must be a JSON primitive or flat list, "
                f"got {type(value).__name__}"
            )
    return obj


class TraceRecorder:
    """Collects trace records in memory; writing JSONL is a separate step.

    One recorder per producer: simulators and trial functions append to a
    private recorder, and the parent process concatenates per-trial record
    lists in trial order (see :class:`~repro.runtime.TrialRunner`), which
    keeps the stream deterministic for any worker count.
    """

    __slots__ = ("trial", "records")

    def __init__(self, trial: int | None = None) -> None:
        self.trial = trial
        self.records: list[dict[str, Any]] = []

    def event(
        self, ts: float, kind: str, pool: int | None = None, **data: object
    ) -> None:
        """Append one record; ``data`` values must be JSON primitives."""
        self.records.append({
            "v": TRACE_SCHEMA_VERSION,
            "ts": float(ts),
            "kind": kind,
            "trial": self.trial,
            "pool": pool,
            "data": data,
        })

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Append already-built records (merging worker chunks in order)."""
        self.records.extend(dict(r) for r in records)

    def write_jsonl(self, path: str | Path) -> None:
        write_jsonl(path, self.records)

    def __len__(self) -> int:
        return len(self.records)


def write_jsonl(path: str | Path, records: Iterable[Mapping[str, Any]]) -> None:
    """Serialize records to JSONL with deterministic byte layout.

    The write is atomic (temp + fsync + rename): an interrupted run
    leaves either the previous complete file or the new one, never a
    truncated trace that would poison ``read_jsonl``/CI comparisons.
    """
    atomic_write_text(
        path,
        "".join(
            json.dumps(record, separators=(",", ":")) + "\n" for record in records
        ),
    )


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read and schema-validate a JSONL trace; raises ValueError on corruption."""
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            try:
                records.append(validate_record(parsed))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return records
