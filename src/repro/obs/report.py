"""Trace summarization: the engine behind ``mlec-sim trace-report``.

Turns a validated record stream into the questions a PDL discrepancy
investigation asks first:

* *what happened* -- record counts by kind (top-N table);
* *how long did repairs take* -- a histogram of network-stage repair
  durations (``sim.net_repair_complete`` records), split by whether the
  repair ran degraded;
* *who lost data* -- per-pool attribution of ``sim.data_loss`` /
  ``slec.data_loss`` records, plus the byte totals that crossed racks;

and, for *operational* traces written via ``--ops-trace``:

* *what did recovery cost* -- checkpoint writes, chunk retries, pool
  rebuilds, steals, and worker deaths, summarized instead of bucketed as
  anonymous kinds;
* *where did the wall-clock go* -- the schema-v2 span tree
  (:func:`summarize_spans`): hierarchy with durations, the critical
  path, a per-phase time breakdown, and a per-host utilization timeline.

Everything here is stdlib-only string formatting so traces can be
inspected on machines without the numeric stack installed.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections.abc import Mapping, Sequence
from typing import Any

from .metrics import Histogram
from .trace import SPAN_SCHEMA_VERSION

__all__ = ["summarize_trace", "summarize_spans", "REPAIR_HOURS_BUCKETS"]

#: Bucket upper bounds (hours) for repair-duration histograms -- shared by
#: the simulator's metrics instrumentation and this report so the two views
#: of the same run always bin identically.
REPAIR_HOURS_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

_HOUR = 3600.0


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _bar(count: int, peak: int, width: int = 30) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if count else 0, round(width * count / peak))


def _histogram_lines(hist: Histogram, unit: str) -> list[str]:
    peak = max(hist.counts)
    lines = []
    lower = 0.0
    for bound, count in zip(hist.bounds, hist.counts):
        lines.append(
            f"  {lower:>7.1f} - {bound:>7.1f} {unit} | "
            f"{count:>6d} {_bar(count, peak)}"
        )
        lower = bound
    overflow = hist.counts[-1]
    lines.append(
        f"  {'>':>7} {hist.bounds[-1]:>9.1f} {unit} | "
        f"{overflow:>6d} {_bar(overflow, peak)}"
    )
    return lines


# ----------------------------------------------------------------------
# Operational (PR-5/6) event kinds: recovery and scheduling facts the
# resilient runner and executor backends emit into the ops trace.
# ----------------------------------------------------------------------
_OPS_KIND_LABELS = {
    "checkpoint.write": "journal appends",
    "checkpoint.salvage": "sweeps salvaged from journal",
    "chunk.retry": "chunk retries",
    "chunk.steal": "chunk leases stolen",
    "chunk.duplicate": "duplicate completions (steal losers)",
    "pool.rebuild": "pool/backend rebuilds",
    "worker.death": "worker deaths",
    "worker.join": "worker joins",
    "backend.fallback": "local-fallback engagements",
}


def _ops_section(records: Sequence[Mapping[str, Any]]) -> str | None:
    """Summarize recovery/scheduling events, or None when there are none."""
    tally = TallyCounter(
        str(r["kind"]) for r in records if str(r["kind"]) in _OPS_KIND_LABELS
    )
    if not tally:
        return None
    rows: list[list[object]] = []
    for kind in _OPS_KIND_LABELS:
        count = tally.get(kind, 0)
        if not count:
            continue
        note = _OPS_KIND_LABELS[kind]
        if kind == "checkpoint.write":
            by_record = TallyCounter(
                str(r["data"].get("record", "?"))
                for r in records
                if r["kind"] == kind
            )
            detail = ", ".join(
                f"{n} {rec}" for rec, n in sorted(by_record.items())
            )
            note += f" ({detail})"
        elif kind == "chunk.retry":
            reasons = {
                str(r["data"].get("reason", ""))[:40]
                for r in records
                if r["kind"] == kind
            }
            note += f" ({len(reasons)} distinct reason(s))"
        rows.append([kind, count, note])
    return "recovery & scheduling events:\n" + _table(
        ["kind", "count", "what"], rows
    )


# ----------------------------------------------------------------------
# Span analysis (schema-v2 records)
# ----------------------------------------------------------------------
def _span_duration(record: Mapping[str, Any]) -> float:
    try:
        return max(0.0, float(record["data"].get("dur_s", 0.0)))
    except (TypeError, ValueError):
        return 0.0


def _span_end(record: Mapping[str, Any]) -> float:
    return float(record["ts"]) + _span_duration(record)


def _span_label(record: Mapping[str, Any], duration: float) -> str:
    data = record["data"]
    bits = [str(record["kind"]), f"{duration:.3f}s"]
    for field in ("host", "lo", "hi", "attempt", "status"):
        if field in data and data[field] is not None:
            bits.append(f"{field}={data[field]}")
    return "  ".join(bits)


def _render_span_tree(
    roots: list[dict[str, Any]],
    children: dict[str, list[dict[str, Any]]],
    top: int,
) -> list[str]:
    lines: list[str] = []
    seen: set[str] = set()

    def walk(record: dict[str, Any], depth: int) -> None:
        span_id = str(record["span"])
        if span_id in seen:  # defensive: a corrupt trace could cycle
            return
        seen.add(span_id)
        lines.append("  " * depth + _span_label(record, _span_duration(record)))
        kids = sorted(children.get(span_id, ()), key=lambda r: (r["ts"], r["span"]))
        for kid in kids[:top]:
            walk(kid, depth + 1)
        if len(kids) > top:
            lines.append(
                "  " * (depth + 1) + f"... ({len(kids) - top} more sibling(s))"
            )

    for root in roots:
        walk(root, 1)
    return lines


def _critical_path(
    root: dict[str, Any], children: dict[str, list[dict[str, Any]]]
) -> list[dict[str, Any]]:
    """Follow the last-finishing child from the root down to a leaf."""
    path = [root]
    seen = {str(root["span"])}
    node = root
    while True:
        kids = [
            k
            for k in children.get(str(node["span"]), ())
            if str(k["span"]) not in seen
        ]
        if not kids:
            return path
        node = max(kids, key=_span_end)
        seen.add(str(node["span"]))
        path.append(node)


def _host_timeline(
    spans: Sequence[Mapping[str, Any]], width: int = 40
) -> list[str]:
    """ASCII busy/idle strip per host from host-attributed spans."""
    by_host: dict[str, list[tuple[float, float]]] = {}
    for record in spans:
        host = record["data"].get("host")
        if not isinstance(host, str):
            continue
        by_host.setdefault(host, []).append(
            (float(record["ts"]), _span_end(record))
        )
    if not by_host:
        return []
    t0 = min(start for spans_ in by_host.values() for start, _ in spans_)
    t1 = max(end for spans_ in by_host.values() for _, end in spans_)
    window = max(t1 - t0, 1e-9)
    lines = [f"per-host utilization over [{t0:.3f}s, {t1:.3f}s]:"]
    name_w = max(len(h) for h in by_host)
    for host in sorted(by_host):
        cells = [" "] * width
        busy = 0.0
        for start, end in by_host[host]:
            busy += max(0.0, end - start)
            first = int((start - t0) / window * width)
            last = max(first, int(min((end - t0) / window * width, width - 1)))
            for i in range(max(0, first), min(width, last + 1)):
                cells[i] = "#"
        share = min(1.0, busy / window)
        lines.append(
            f"  {host.ljust(name_w)} |{''.join(cells)}| "
            f"busy {busy:.3f}s ({share:.0%})"
        )
    return lines


def summarize_spans(
    records: Sequence[Mapping[str, Any]], top: int = 10
) -> str | None:
    """Span tree, critical path, phase breakdown, host timeline; or None.

    Consumes the schema-v2 records of an operational trace.  Returns
    ``None`` when the stream holds no span records, so
    :func:`summarize_trace` can include this section only when it
    applies.
    """
    spans = [dict(r) for r in records if r.get("v") == SPAN_SCHEMA_VERSION]
    if not spans:
        return None
    by_id = {str(r["span"]): r for r in spans}
    children: dict[str, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for record in spans:
        parent = record["parent"]
        if parent is not None and str(parent) in by_id:
            children.setdefault(str(parent), []).append(record)
        else:
            roots.append(record)
    roots.sort(key=lambda r: (r["ts"], r["span"]))
    sections: list[str] = []

    # -------------------------------------------------------------- tree
    wall = max(_span_end(r) for r in spans) - min(float(r["ts"]) for r in spans)
    sections.append(
        f"span tree ({len(spans)} spans, {len(roots)} root(s), "
        f"{wall:.3f}s wall):\n"
        + "\n".join(_render_span_tree(roots, children, top))
    )

    # ----------------------------------------------------- critical path
    main_root = max(roots, key=_span_duration)
    path = _critical_path(main_root, children)
    lines = [
        f"critical path ({_span_duration(main_root):.3f}s root, "
        f"{len(path)} hop(s)):"
    ]
    for record in path:
        lines.append(
            f"  {float(record['ts']):>9.3f}s  "
            + _span_label(record, _span_duration(record))
        )
    sections.append("\n".join(lines))

    # ----------------------------------------------------- phase breakdown
    by_kind: dict[str, tuple[int, float]] = {}
    for record in spans:
        count, total = by_kind.get(str(record["kind"]), (0, 0.0))
        by_kind[str(record["kind"])] = (count + 1, total + _span_duration(record))
    denom = _span_duration(main_root) or wall or 1.0
    rows = [
        [kind, count, f"{total:.3f}", f"{total / denom:.0%}"]
        for kind, (count, total) in sorted(
            by_kind.items(), key=lambda item: -item[1][1]
        )
    ]
    sections.append(
        "time by span kind (cumulative; nested spans overlap):\n"
        + _table(["kind", "spans", "total s", "of root"], rows)
    )

    # ------------------------------------------------------- host timeline
    timeline = _host_timeline(spans)
    if timeline:
        sections.append("\n".join(timeline))

    return "\n\n".join(sections)


def summarize_trace(
    records: Sequence[Mapping[str, Any]], top: int = 10
) -> str:
    """Human-readable summary of a validated trace record stream."""
    sections: list[str] = []
    trials = {r["trial"] for r in records if r["trial"] is not None}
    header = f"trace summary: {len(records)} records"
    if trials:
        header += f" from {len(trials)} trial(s)"
    sections.append(header)

    # ------------------------------------------------------------- kinds
    by_kind = TallyCounter(str(r["kind"]) for r in records)
    rows = [[kind, count] for kind, count in by_kind.most_common(top)]
    remainder = len(by_kind) - len(rows)
    sections.append(
        f"top event kinds ({len(by_kind)} distinct"
        + (f", showing {top}" if remainder > 0 else "")
        + "):\n"
        + _table(["kind", "records"], rows)
    )

    # ----------------------------------------------------- repair timing
    repairs = [r for r in records if r["kind"] == "sim.net_repair_complete"]
    if repairs:
        hist = Histogram("sim.net_repair_hours", REPAIR_HOURS_BUCKETS)
        degraded = 0
        for r in repairs:
            hist.observe(float(r["data"].get("seconds", 0.0)) / _HOUR)
            degraded += bool(r["data"].get("degraded", False))
        mean_h = hist.total / hist.count if hist.count else 0.0
        lines = [
            f"network-stage repair times ({hist.count} repairs, "
            f"mean {mean_h:.1f} h, {degraded} finished degraded):"
        ]
        lines.extend(_histogram_lines(hist, "h"))
        sections.append("\n".join(lines))

    # ----------------------------------------------------- loss attribution
    loss_by_pool: TallyCounter[int] = TallyCounter()
    n_losses = 0
    for r in records:
        if r["kind"] == "sim.data_loss":
            n_losses += 1
            for pool in r["data"].get("pools", ()):
                loss_by_pool[int(pool)] += 1
        elif r["kind"] == "slec.data_loss":
            n_losses += 1
            if r["pool"] is not None:
                loss_by_pool[int(r["pool"])] += 1
    if n_losses:
        rows = [
            [pool, count] for pool, count in loss_by_pool.most_common(top)
        ]
        sections.append(
            f"data loss attribution ({n_losses} loss events):\n"
            + _table(["pool", "loss events"], rows)
        )
    else:
        sections.append("data loss attribution: no loss events recorded")

    # ----------------------------------------------------------- traffic
    cross = sum(
        float(r["data"].get("cross_rack_bytes", 0.0))
        for r in records
        if r["kind"] == "sim.catastrophe"
    )
    if cross:
        sections.append(f"cross-rack repair traffic: {cross / 1e12:.3f} TB")

    # ------------------------------------------- ops & span sections
    ops = _ops_section(records)
    if ops is not None:
        sections.append(ops)
    spans = summarize_spans(records, top=top)
    if spans is not None:
        sections.append(spans)

    return "\n\n".join(sections)
