"""Trace summarization: the engine behind ``mlec-sim trace-report``.

Turns a validated record stream into the three questions a PDL
discrepancy investigation asks first:

* *what happened* -- record counts by kind (top-N table);
* *how long did repairs take* -- a histogram of network-stage repair
  durations (``sim.net_repair_complete`` records), split by whether the
  repair ran degraded;
* *who lost data* -- per-pool attribution of ``sim.data_loss`` /
  ``slec.data_loss`` records, plus the byte totals that crossed racks.

Everything here is stdlib-only string formatting so traces can be
inspected on machines without the numeric stack installed.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections.abc import Mapping, Sequence
from typing import Any

from .metrics import Histogram

__all__ = ["summarize_trace", "REPAIR_HOURS_BUCKETS"]

#: Bucket upper bounds (hours) for repair-duration histograms -- shared by
#: the simulator's metrics instrumentation and this report so the two views
#: of the same run always bin identically.
REPAIR_HOURS_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

_HOUR = 3600.0


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _bar(count: int, peak: int, width: int = 30) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if count else 0, round(width * count / peak))


def _histogram_lines(hist: Histogram, unit: str) -> list[str]:
    peak = max(hist.counts)
    lines = []
    lower = 0.0
    for bound, count in zip(hist.bounds, hist.counts):
        lines.append(
            f"  {lower:>7.1f} - {bound:>7.1f} {unit} | "
            f"{count:>6d} {_bar(count, peak)}"
        )
        lower = bound
    overflow = hist.counts[-1]
    lines.append(
        f"  {'>':>7} {hist.bounds[-1]:>9.1f} {unit} | "
        f"{overflow:>6d} {_bar(overflow, peak)}"
    )
    return lines


def summarize_trace(
    records: Sequence[Mapping[str, Any]], top: int = 10
) -> str:
    """Human-readable summary of a validated trace record stream."""
    sections: list[str] = []
    trials = {r["trial"] for r in records if r["trial"] is not None}
    header = f"trace summary: {len(records)} records"
    if trials:
        header += f" from {len(trials)} trial(s)"
    sections.append(header)

    # ------------------------------------------------------------- kinds
    by_kind = TallyCounter(str(r["kind"]) for r in records)
    rows = [[kind, count] for kind, count in by_kind.most_common(top)]
    remainder = len(by_kind) - len(rows)
    sections.append(
        f"top event kinds ({len(by_kind)} distinct"
        + (f", showing {top}" if remainder > 0 else "")
        + "):\n"
        + _table(["kind", "records"], rows)
    )

    # ----------------------------------------------------- repair timing
    repairs = [r for r in records if r["kind"] == "sim.net_repair_complete"]
    if repairs:
        hist = Histogram("sim.net_repair_hours", REPAIR_HOURS_BUCKETS)
        degraded = 0
        for r in repairs:
            hist.observe(float(r["data"].get("seconds", 0.0)) / _HOUR)
            degraded += bool(r["data"].get("degraded", False))
        mean_h = hist.total / hist.count if hist.count else 0.0
        lines = [
            f"network-stage repair times ({hist.count} repairs, "
            f"mean {mean_h:.1f} h, {degraded} finished degraded):"
        ]
        lines.extend(_histogram_lines(hist, "h"))
        sections.append("\n".join(lines))

    # ----------------------------------------------------- loss attribution
    loss_by_pool: TallyCounter[int] = TallyCounter()
    n_losses = 0
    for r in records:
        if r["kind"] == "sim.data_loss":
            n_losses += 1
            for pool in r["data"].get("pools", ()):
                loss_by_pool[int(pool)] += 1
        elif r["kind"] == "slec.data_loss":
            n_losses += 1
            if r["pool"] is not None:
                loss_by_pool[int(r["pool"])] += 1
    if n_losses:
        rows = [
            [pool, count] for pool, count in loss_by_pool.most_common(top)
        ]
        sections.append(
            f"data loss attribution ({n_losses} loss events):\n"
            + _table(["pool", "loss events"], rows)
        )
    else:
        sections.append("data loss attribution: no loss events recorded")

    # ----------------------------------------------------------- traffic
    cross = sum(
        float(r["data"].get("cross_rack_bytes", 0.0))
        for r in records
        if r["kind"] == "sim.catastrophe"
    )
    if cross:
        sections.append(f"cross-rack repair traffic: {cross / 1e12:.3f} TB")

    return "\n\n".join(sections)
