"""repro.obs: structured observability for the simulation stack.

Every layer of the simulator can explain *why* it produced a number --
which failure burst opened a network repair, how many bytes crossed racks,
where the wall-clock went -- through three stdlib-only primitives:

* :class:`MetricsRegistry` -- named counters, gauges, and fixed-bucket
  histograms.  Registries are picklable and mergeable, and merging per-chunk
  registries in trial order reproduces the single-process result exactly,
  so metrics inherit the runtime's any-worker-count determinism.
* :class:`TraceRecorder` -- an append-only stream of schema-versioned
  span/event records (disk failure -> repair plan -> network stage ->
  completion) serialized to JSONL.  Records are plain dicts with a fixed
  key order, so a trial's trace bytes are identical for any worker count.
* :class:`Timers` / :class:`Stopwatch` -- wall-clock accounting for hot
  paths and whole runs.  A disabled :class:`Timers` costs one attribute
  read and one branch per guarded section; :class:`Stopwatch` is the single
  source of elapsed/throughput numbers for the CLI and the benchmark
  harness, so the two can never drift apart.

On top of these, the *distributed campaign* layer (all operational --
never folded into result artifacts):

* :class:`SpanTracer` (:mod:`repro.obs.spans`) -- hierarchical span
  tracing (campaign -> sweep -> chunk -> attempt) with deterministic
  ids, recorded as schema-v2 records in the runner-owned ops trace.
* :class:`ProgressReporter` (:mod:`repro.obs.progress`) -- streaming
  trials/sec, ETA, and per-host utilization, rendered as a throttled
  status line and a ``--progress-jsonl`` stream.
* :func:`to_openmetrics` / :class:`MetricsExporter`
  (:mod:`repro.obs.export`) -- OpenMetrics text exposition of any
  registry plus the ``--metrics-port`` pull endpoint.

See ``docs/observability.md`` for the record schemas, the metric naming
conventions, and measured overhead.
"""

from __future__ import annotations

from .export import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsExporter,
    parse_openmetrics,
    to_openmetrics,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .progress import ProgressReporter, ProgressSnapshot, ProgressTracker
from .report import summarize_spans, summarize_trace
from .spans import Span, SpanTracer, derive_id
from .timing import DISABLED_TIMERS, Stopwatch, Timers
from .trace import (
    SPAN_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_jsonl,
    validate_record,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRecorder",
    "TRACE_SCHEMA_VERSION",
    "SPAN_SCHEMA_VERSION",
    "read_jsonl",
    "write_jsonl",
    "validate_record",
    "Timers",
    "DISABLED_TIMERS",
    "Stopwatch",
    "summarize_trace",
    "summarize_spans",
    "Span",
    "SpanTracer",
    "derive_id",
    "ProgressTracker",
    "ProgressReporter",
    "ProgressSnapshot",
    "MetricsExporter",
    "to_openmetrics",
    "parse_openmetrics",
    "OPENMETRICS_CONTENT_TYPE",
]
