"""repro.obs: structured observability for the simulation stack.

Every layer of the simulator can explain *why* it produced a number --
which failure burst opened a network repair, how many bytes crossed racks,
where the wall-clock went -- through three stdlib-only primitives:

* :class:`MetricsRegistry` -- named counters, gauges, and fixed-bucket
  histograms.  Registries are picklable and mergeable, and merging per-chunk
  registries in trial order reproduces the single-process result exactly,
  so metrics inherit the runtime's any-worker-count determinism.
* :class:`TraceRecorder` -- an append-only stream of schema-versioned
  span/event records (disk failure -> repair plan -> network stage ->
  completion) serialized to JSONL.  Records are plain dicts with a fixed
  key order, so a trial's trace bytes are identical for any worker count.
* :class:`Timers` / :class:`Stopwatch` -- wall-clock accounting for hot
  paths and whole runs.  A disabled :class:`Timers` costs one attribute
  read and one branch per guarded section; :class:`Stopwatch` is the single
  source of elapsed/throughput numbers for the CLI and the benchmark
  harness, so the two can never drift apart.

See ``docs/observability.md`` for the record schema, the metric naming
conventions, and measured overhead.
"""

from __future__ import annotations

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import summarize_trace
from .timing import DISABLED_TIMERS, Stopwatch, Timers
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_jsonl,
    validate_record,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRecorder",
    "TRACE_SCHEMA_VERSION",
    "read_jsonl",
    "write_jsonl",
    "validate_record",
    "Timers",
    "DISABLED_TIMERS",
    "Stopwatch",
    "summarize_trace",
]
