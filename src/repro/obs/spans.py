"""Hierarchical span tracing for distributed campaigns (schema v2).

Long Monte Carlo campaigns spread their wall-clock across sweeps,
chunks, retries, checkpoint writes, and remote hosts; flat v1 events
cannot answer "where did the time go".  A *span* is a named interval
with a parent, recorded into the runner-owned operational trace as a
schema-v2 record (see :mod:`repro.obs.trace`) once it is complete:

* ``span.campaign`` -> ``span.sweep`` -> ``span.chunk`` ->
  ``span.attempt`` is the execution hierarchy; ``span.checkpoint_write``,
  ``span.pool_rebuild``, and ``span.steal`` hang off the sweep.
* Ids are **deterministic**: :func:`derive_id` hashes the tracer's trace
  id (seeded from the checkpoint journal's ``fn``/``args_sha256``
  fingerprint) with the span kind and a structural key such as the chunk
  ordinal -- the same sweep yields the same chunk/attempt span ids on
  any host, so cross-host traces can be joined offline.
* Worker-side execution is attributed by host: chunk payloads carry the
  ``hostname/pid`` label of wherever :func:`~repro.runtime.executors.base.run_chunk`
  ran, the TCP frames echo the trace id, and the coordinator folds both
  into attempt spans.

Discipline: scoped spans (sweeps, checkpoint writes, rebuilds) must go
through the :meth:`SpanTracer.span` context manager so no span is left
open on an error path -- simlint SL016 enforces this on runner/executor
code.  Retrospective facts (a chunk attempt whose duration arrives with
its payload) use :meth:`SpanTracer.emit`, which records a completed span
in one call and therefore cannot leak.

Span records live **only** in ops telemetry.  Result trace/metrics
artifacts never contain spans, which is what keeps them byte-identical
at any worker or host count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from .trace import TraceRecorder

__all__ = ["Span", "SpanTracer", "derive_id"]

#: Hex digits kept from the sha256 digest; 64 bits is plenty for the
#: thousands of spans a campaign produces and keeps records compact.
_ID_HEX_CHARS = 16


def derive_id(*parts: object) -> str:
    """Deterministic 16-hex id from structural parts (no RNG, no clock)."""
    text = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_ID_HEX_CHARS]


@dataclasses.dataclass
class Span:
    """One open span: identity plus its start on the operational clock."""

    kind: str
    span_id: str
    parent_id: str | None
    began: float
    data: dict[str, Any]


class SpanTracer:
    """Builds the span tree of one runner and records it as v2 records.

    ``clock`` is the runner's operational clock (seconds since the
    runner was born, ``>= 0``); it is injectable so tests can pin exact
    timings.  ``recorder`` is the runner-owned ops
    :class:`~repro.obs.trace.TraceRecorder` -- never a result sink.

    The trace id starts unseeded and is fixed by the first
    :meth:`seed_trace` call (the chaos campaign seeds it from its
    config, a resilient sweep from the journal's fn/args fingerprint);
    later calls are ignored so the outermost owner wins.
    """

    __slots__ = ("_recorder", "_clock", "_trace_id", "_seeded", "_stack", "_seq")

    def __init__(
        self,
        recorder: TraceRecorder,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._recorder = recorder
        if clock is None:
            born = time.perf_counter()
            clock = lambda: time.perf_counter() - born  # noqa: E731
        self._clock = clock
        self._trace_id = derive_id("unseeded")
        self._seeded = False
        self._stack: list[Span] = []
        self._seq = 0

    # ------------------------------------------------------------------
    @property
    def trace_id(self) -> str:
        return self._trace_id

    def seed_trace(self, *parts: object) -> str:
        """Fix the trace id from structural facts; first seeding wins."""
        if not self._seeded:
            self._trace_id = derive_id(*parts)
            self._seeded = True
        return self._trace_id

    def span_id(self, kind: str, *key: object) -> str:
        """The deterministic id the span ``(kind, key)`` has in this trace.

        Lets producers parent a span under another one *before* that
        parent's record exists (chunk spans are recorded at completion,
        after their attempt spans).
        """
        return derive_id(self._trace_id, kind, *key)

    def _next_key(self) -> tuple[object, ...]:
        self._seq += 1
        return ("seq", self._seq)

    def _current_parent(self) -> str | None:
        return self._stack[-1].span_id if self._stack else None

    # ------------------------------------------------------------------
    def begin_span(
        self,
        kind: str,
        *,
        key: tuple[object, ...] | None = None,
        parent: str | None = None,
        **data: Any,
    ) -> Span:
        """Open a span; the caller **must** guarantee :meth:`end_span`.

        Prefer :meth:`span` -- on runner/executor paths a bare
        ``begin_span`` is a simlint SL016 finding because an exception
        between begin and end silently loses the span.
        """
        if key is None:
            key = self._next_key()
        if parent is None:
            parent = self._current_parent()
        return Span(
            kind=kind,
            span_id=self.span_id(kind, *key),
            parent_id=parent,
            began=max(0.0, self._clock()),
            data=dict(data),
        )

    def end_span(self, span: Span, **data: Any) -> None:
        """Close ``span`` and record it (duration measured on the clock)."""
        now = max(span.began, self._clock())
        merged = dict(span.data)
        merged.update(data)
        merged["dur_s"] = now - span.began
        self._recorder.span_record(
            span.began, span.kind, span.span_id, span.parent_id, **merged
        )

    @contextmanager
    def span(
        self,
        kind: str,
        *,
        key: tuple[object, ...] | None = None,
        parent: str | None = None,
        **data: Any,
    ) -> Iterator[Span]:
        """Scoped span: opened on entry, recorded on exit, error-safe.

        Children opened inside the block default their parent to this
        span.  An exception (including generator close) records the span
        with ``status="error"`` before propagating.
        """
        opened = self.begin_span(kind, key=key, parent=parent, **data)
        self._stack.append(opened)
        try:
            yield opened
        except BaseException:
            self._stack.pop()
            self.end_span(opened, status="error")
            raise
        else:
            self._stack.pop()
            self.end_span(opened, status="ok")

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        *,
        start: float,
        duration: float,
        key: tuple[object, ...] | None = None,
        parent: str | None = None,
        **data: Any,
    ) -> str:
        """Record an already-completed span in one call; returns its id.

        This is the retrospective path for intervals observed after the
        fact -- a chunk attempt whose execution time arrives with its
        payload, a steal the backend reports on drain.  Nothing is left
        open, so it is exempt from the context-manager discipline.
        """
        if key is None:
            key = self._next_key()
        if parent is None:
            parent = self._current_parent()
        span_id = self.span_id(kind, *key)
        self._recorder.span_record(
            max(0.0, start),
            kind,
            span_id,
            parent,
            **dict(data, dur_s=max(0.0, duration)),
        )
        return span_id
