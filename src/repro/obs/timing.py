"""Wall-clock accounting: hot-path timers and run stopwatches.

:class:`Timers` accumulates (call count, total seconds) per named section.
The contract for hot paths is that a *disabled* timer costs one attribute
read and one branch per guarded call -- the simulator and trial runner
check ``timers.enabled`` before touching ``perf_counter`` at all, so
profiling is free when off (measured <1% on the event loop; see
``docs/observability.md``).

:class:`Stopwatch` is the one way elapsed wall-clock and trials/sec are
computed anywhere user-facing: ``mlec-sim simulate``, ``mlec-sim chaos``,
and the benchmark harness all format their throughput through
:meth:`Stopwatch.summary`, so the numbers cannot drift between surfaces.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["Timers", "DISABLED_TIMERS", "Stopwatch"]


class Timers:
    """Named wall-clock accumulators with a cheap disabled state."""

    __slots__ = ("enabled", "_calls", "_seconds")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        """Record one timed call (callers guard on :attr:`enabled`)."""
        self._calls[name] = self._calls.get(name, 0) + 1
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a block; a disabled timer yields immediately."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def merge(self, other: Timers) -> None:
        for name, calls in other._calls.items():
            self._calls[name] = self._calls.get(name, 0) + calls
            self._seconds[name] = (
                self._seconds.get(name, 0.0) + other._seconds[name]
            )

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{section: {"calls": n, "seconds": total}}``, names sorted."""
        return {
            name: {
                "calls": float(self._calls[name]),
                "seconds": self._seconds[name],
            }
            for name in sorted(self._calls)
        }

    def __bool__(self) -> bool:
        return bool(self._calls)


#: Shared no-op sink for code paths that were not handed a live Timers.
#: Never accumulates (every guarded site checks ``enabled`` first).
DISABLED_TIMERS = Timers(enabled=False)


class Stopwatch:
    """Measures one run's wall clock; single source of throughput strings."""

    __slots__ = ("_start", "_stop")

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._stop: float | None = None

    def stop(self) -> float:
        """Freeze the clock (idempotent); returns elapsed seconds."""
        if self._stop is None:
            self._stop = time.perf_counter()
        return self._stop - self._start

    @property
    def seconds(self) -> float:
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start

    def throughput(self, items: int) -> float:
        """Items per second (0.0 for a zero-length interval)."""
        elapsed = self.seconds
        return items / elapsed if elapsed > 0 else 0.0

    def summary(self, items: int | None = None, unit: str = "trials") -> str:
        """``"1.23 s"`` or ``"1.23 s (26.0 trials/s)"``."""
        elapsed = self.seconds
        if items is None:
            return f"{elapsed:.2f} s"
        return f"{elapsed:.2f} s ({self.throughput(items):.1f} {unit}/s)"
