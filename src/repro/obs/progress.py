"""Streaming campaign progress: trials/sec, ETA, per-host utilization.

The runners report chunk-granular facts (sweep started, chunk done on
host H after S seconds, retry/steal/death) to an attached *progress
sink*; :class:`ProgressTracker` folds them into a running
:class:`ProgressSnapshot` and :class:`ProgressReporter` renders that as

* a throttled single-line status on a stream (the CLI passes stderr, so
  stdout stays byte-identical to an unobserved run), and
* a machine-readable JSONL stream (``--progress-jsonl PATH``): one
  schema-versioned snapshot object per emission, append-written and
  flushed so a supervisor -- or the future ``mlec-sim serve`` -- can
  tail a live campaign.

Everything here is operational telemetry: wall-clock rates and ETAs are
inherently nondeterministic and never touch result artifacts.

Design notes
------------
* **Clock monotonicity.**  The tracker clamps its injectable clock so
  elapsed time never decreases, even if the underlying clock steps
  backwards; rates and ETAs therefore never go negative.
* **Salvage-aware rates.**  Chunks salvaged from a checkpoint arrive
  "instantly" at sweep start; they count toward completion but are
  excluded from the live trial rate, so a resumed campaign's ETA
  reflects actual execution speed rather than journal replay.
* **Multi-sweep totals.**  ``begin_sweep`` accumulates: a chaos campaign
  or split-AFR study running several sweeps against one runner reports
  campaign-wide progress, not per-sweep resets.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections.abc import Callable
from pathlib import Path
from typing import IO, Any

__all__ = [
    "PROGRESS_SCHEMA_VERSION",
    "HostStats",
    "ProgressSnapshot",
    "ProgressTracker",
    "ProgressReporter",
]

#: Version stamp on every ``--progress-jsonl`` record.
PROGRESS_SCHEMA_VERSION = 1


@dataclasses.dataclass
class HostStats:
    """Per-host execution facts (host = ``hostname/pid`` chunk label)."""

    chunks: int = 0
    busy_s: float = 0.0


@dataclasses.dataclass(frozen=True)
class ProgressSnapshot:
    """One consistent view of campaign progress at ``elapsed_s``."""

    elapsed_s: float
    trials_done: int
    trials_total: int
    chunks_done: int
    chunks_total: int
    salvaged_trials: int
    rate_trials_per_s: float
    eta_s: float | None
    retries: int
    steals: int
    worker_deaths: int
    hosts: dict[str, HostStats]

    @property
    def fraction(self) -> float:
        if self.trials_total <= 0:
            return 0.0
        return min(1.0, self.trials_done / self.trials_total)

    def utilization(self, host: str) -> float:
        """Fraction of the elapsed wall-clock ``host`` spent executing."""
        stats = self.hosts.get(host)
        if stats is None or self.elapsed_s <= 0:
            return 0.0
        return min(1.0, stats.busy_s / self.elapsed_s)

    def status_line(self) -> str:
        """The one-line human rendering used for the stderr ticker."""
        if self.eta_s is None:
            eta = "--"
        elif self.eta_s >= 3600:
            eta = f"{self.eta_s / 3600:.1f}h"
        elif self.eta_s >= 60:
            eta = f"{self.eta_s / 60:.1f}m"
        else:
            eta = f"{self.eta_s:.0f}s"
        parts = [
            f"{self.trials_done}/{self.trials_total} trials"
            f" ({self.fraction:.0%})",
            f"{self.rate_trials_per_s:.1f} trials/s",
            f"ETA {eta}",
        ]
        if self.hosts:
            parts.append(f"{len(self.hosts)} host(s)")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.steals:
            parts.append(f"{self.steals} steals")
        if self.worker_deaths:
            parts.append(f"{self.worker_deaths} worker deaths")
        return "progress: " + " | ".join(parts)

    def to_record(self) -> dict[str, Any]:
        """The JSONL form (fixed key order, flat JSON values)."""
        return {
            "v": PROGRESS_SCHEMA_VERSION,
            "elapsed_s": round(self.elapsed_s, 6),
            "done": self.trials_done,
            "total": self.trials_total,
            "chunks_done": self.chunks_done,
            "chunks_total": self.chunks_total,
            "salvaged": self.salvaged_trials,
            "rate": round(self.rate_trials_per_s, 6),
            "eta_s": None if self.eta_s is None else round(self.eta_s, 6),
            "retries": self.retries,
            "steals": self.steals,
            "worker_deaths": self.worker_deaths,
            "hosts": {
                host: {
                    "chunks": stats.chunks,
                    "busy_s": round(stats.busy_s, 6),
                }
                for host, stats in sorted(self.hosts.items())
            },
        }


class ProgressTracker:
    """Folds chunk-granular runner events into progress snapshots."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._start: float | None = None
        self._last = 0.0
        self.trials_total = 0
        self.trials_done = 0
        self.chunks_total = 0
        self.chunks_done = 0
        self.salvaged_trials = 0
        self.retries = 0
        self.steals = 0
        self.worker_deaths = 0
        self.hosts: dict[str, HostStats] = {}

    def _elapsed(self) -> float:
        """Monotonic elapsed seconds since the first sweep began."""
        if self._start is None:
            return 0.0
        now = self._clock()
        # Clamp: a clock stepping backwards must never shrink elapsed
        # time (rates and ETAs would go negative).
        self._last = max(self._last, now - self._start)
        return self._last

    # ------------------------------------------------------------------
    # The progress-sink protocol the runners call.
    # ------------------------------------------------------------------
    def begin_sweep(
        self,
        trials: int,
        chunks: int,
        *,
        salvaged_trials: int = 0,
        salvaged_chunks: int = 0,
    ) -> None:
        if self._start is None:
            self._start = self._clock()
        self.trials_total += trials
        self.chunks_total += chunks
        self.trials_done += salvaged_trials
        self.chunks_done += salvaged_chunks
        self.salvaged_trials += salvaged_trials

    def chunk_done(
        self, trials: int, *, host: str | None = None, busy_s: float = 0.0
    ) -> None:
        self.trials_done += trials
        self.chunks_done += 1
        if host is not None:
            stats = self.hosts.setdefault(host, HostStats())
            stats.chunks += 1
            stats.busy_s += max(0.0, busy_s)

    def note_retry(self) -> None:
        self.retries += 1

    def note_steal(self) -> None:
        self.steals += 1

    def note_worker_death(self) -> None:
        self.worker_deaths += 1

    def end_sweep(self) -> None:
        """Sweep finished -- a no-op fold point (reporters force a render)."""

    # ------------------------------------------------------------------
    def snapshot(self) -> ProgressSnapshot:
        elapsed = self._elapsed()
        live_done = self.trials_done - self.salvaged_trials
        rate = live_done / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.trials_total - self.trials_done)
        eta: float | None
        if remaining == 0:
            eta = 0.0
        elif rate > 0:
            eta = remaining / rate
        else:
            eta = None  # nothing completed live yet: no basis for an ETA
        return ProgressSnapshot(
            elapsed_s=elapsed,
            trials_done=self.trials_done,
            trials_total=self.trials_total,
            chunks_done=self.chunks_done,
            chunks_total=self.chunks_total,
            salvaged_trials=self.salvaged_trials,
            rate_trials_per_s=rate,
            eta_s=eta,
            retries=self.retries,
            steals=self.steals,
            worker_deaths=self.worker_deaths,
            hosts={h: dataclasses.replace(s) for h, s in self.hosts.items()},
        )


class ProgressReporter(ProgressTracker):
    """A tracker that renders: throttled status line + JSONL stream.

    ``min_interval`` throttles *both* sinks: under fast completion
    (thousands of chunks/second) at most one emission per interval goes
    out, plus a forced final one on :meth:`close`, so a tight sweep
    cannot flood stderr or the JSONL file.  ``stream=None`` disables the
    status line; ``jsonl_path=None`` disables the stream.
    """

    def __init__(
        self,
        *,
        stream: IO[str] | None = None,
        jsonl_path: str | Path | None = None,
        min_interval: float = 0.5,
        clock: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(clock=clock)
        if min_interval < 0:
            raise ValueError(f"min_interval must be >= 0, got {min_interval}")
        self._stream = stream
        self._min_interval = min_interval
        self._last_emit: float | None = None
        self._line_open = False
        self._jsonl: IO[str] | None = None
        if jsonl_path is not None:
            # Append + per-record flush (WAL-style, like the checkpoint
            # journal): tailers see every emission as soon as it happens.
            self._jsonl = open(jsonl_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def begin_sweep(
        self,
        trials: int,
        chunks: int,
        *,
        salvaged_trials: int = 0,
        salvaged_chunks: int = 0,
    ) -> None:
        super().begin_sweep(
            trials,
            chunks,
            salvaged_trials=salvaged_trials,
            salvaged_chunks=salvaged_chunks,
        )
        self._emit(force=self._last_emit is None)

    def chunk_done(
        self, trials: int, *, host: str | None = None, busy_s: float = 0.0
    ) -> None:
        super().chunk_done(trials, host=host, busy_s=busy_s)
        self._emit()

    def note_retry(self) -> None:
        super().note_retry()
        self._emit()

    def note_steal(self) -> None:
        super().note_steal()
        self._emit()

    def note_worker_death(self) -> None:
        super().note_worker_death()
        self._emit()

    def end_sweep(self) -> None:
        self._emit(force=True)

    # ------------------------------------------------------------------
    def _emit(self, force: bool = False) -> None:
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self._min_interval
        ):
            return
        self._last_emit = now
        snap = self.snapshot()
        if self._stream is not None:
            line = snap.status_line()
            if getattr(self._stream, "isatty", lambda: False)():
                self._stream.write("\r\x1b[2K" + line)
                self._line_open = True
            else:
                self._stream.write(line + "\n")
            self._stream.flush()
        if self._jsonl is not None and not self._jsonl.closed:
            self._jsonl.write(
                json.dumps(snap.to_record(), separators=(",", ":")) + "\n"
            )
            self._jsonl.flush()

    def close(self) -> None:
        """Force a final emission and release the JSONL handle."""
        self._emit(force=True)
        if self._line_open and self._stream is not None:
            self._stream.write("\n")
            self._stream.flush()
            self._line_open = False
        if self._jsonl is not None and not self._jsonl.closed:
            self._jsonl.close()
