"""Execution runtime: parallel, deterministic Monte Carlo sweeps.

The paper's evaluation is Monte Carlo end to end; this package provides
the shared trial engine (:class:`TrialRunner`) that the burst grids,
durability campaigns, and chaos sweeps all fan out through.
"""

from .runner import (
    RunTelemetry,
    TrialAggregate,
    TrialContext,
    TrialExecutionError,
    TrialRunner,
)

__all__ = [
    "RunTelemetry",
    "TrialAggregate",
    "TrialContext",
    "TrialExecutionError",
    "TrialRunner",
]
