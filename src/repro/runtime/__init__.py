"""Execution runtime: parallel, deterministic Monte Carlo sweeps.

The paper's evaluation is Monte Carlo end to end; this package provides
the shared trial engine (:class:`TrialRunner`) that the burst grids,
durability campaigns, and chaos sweeps all fan out through, plus the
fault-tolerant wrapper (:class:`ResilientRunner`) that journals chunk
results to a resumable checkpoint and retries crashed workers under a
deterministic :class:`RetryPolicy`.

*Where* chunks run is pluggable: the :mod:`~repro.runtime.executors`
package defines the :class:`ChunkExecutor` protocol with a single-host
:class:`LocalProcessBackend` and a multi-host
:class:`TcpWorkQueueBackend` whose remote workers
(``mlec-sim workers``) survive host death, stragglers, and partitions
without changing a result byte.
"""

from .executors import (
    BackendEvent,
    BackendUnavailable,
    ChunkExecutor,
    LocalProcessBackend,
    TcpWorkQueueBackend,
    make_backend,
    parse_backend_spec,
)
from .resilience import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    ResilientRunner,
    RetryPolicy,
    SweepStopped,
    args_digest,
    read_checkpoint_argv,
)
from .runner import (
    RunTelemetry,
    TrialAggregate,
    TrialContext,
    TrialExecutionError,
    TrialRunner,
)

__all__ = [
    "BackendEvent",
    "BackendUnavailable",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "ChunkExecutor",
    "LocalProcessBackend",
    "ResilientRunner",
    "RetryPolicy",
    "RunTelemetry",
    "SweepStopped",
    "TcpWorkQueueBackend",
    "TrialAggregate",
    "TrialContext",
    "TrialExecutionError",
    "TrialRunner",
    "args_digest",
    "make_backend",
    "parse_backend_spec",
    "read_checkpoint_argv",
]
