"""Execution runtime: parallel, deterministic Monte Carlo sweeps.

The paper's evaluation is Monte Carlo end to end; this package provides
the shared trial engine (:class:`TrialRunner`) that the burst grids,
durability campaigns, and chaos sweeps all fan out through, plus the
fault-tolerant wrapper (:class:`ResilientRunner`) that journals chunk
results to a resumable checkpoint and retries crashed workers under a
deterministic :class:`RetryPolicy`.
"""

from .resilience import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    ResilientRunner,
    RetryPolicy,
    read_checkpoint_argv,
)
from .runner import (
    RunTelemetry,
    TrialAggregate,
    TrialContext,
    TrialExecutionError,
    TrialRunner,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "ResilientRunner",
    "RetryPolicy",
    "RunTelemetry",
    "TrialAggregate",
    "TrialContext",
    "TrialExecutionError",
    "TrialRunner",
    "read_checkpoint_argv",
]
