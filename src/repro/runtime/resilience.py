"""Fault-tolerant campaign execution: checkpoint/resume, retry, salvage.

The headline figures of the paper come from Monte Carlo campaigns that
run for hours at realistic trial counts, and the plain
:class:`~repro.runtime.TrialRunner` is all-or-nothing: one OOM-killed
worker, one flaky trial, or one Ctrl-C discards the whole sweep.  Real
erasure-coded storage systems treat recovery-under-failure as the normal
operating mode, and the harness that simulates them should too.  This
module wraps the runner in exactly that machinery:

* **Checkpointing.**  Completed chunk results are journaled to a
  WAL-style JSONL file as they arrive (schema-versioned, one fsynced
  record per line, following the :mod:`repro.obs.trace` serialization
  conventions).  A crash at any instant leaves at worst one torn final
  line, which recovery drops; every earlier chunk is durable.
* **Retry with backoff.**  Failed or crashed chunks are retried under a
  :class:`RetryPolicy` -- exponential backoff with *deterministic*
  per-attempt jitter derived from the chunk index, never from a wall
  clock or fresh RNG.  A ``BrokenProcessPool`` tears the executor down,
  rebuilds it, and reschedules only the chunk ranges still missing;
  completed chunks are never re-run.
* **Salvage + resume.**  On unrecoverable failure the raised
  :class:`~repro.runtime.TrialExecutionError` carries the partial
  results, and ``mlec-sim resume <checkpoint>`` re-executes the original
  command with the journal preloaded.  Because trial ``i`` always owns
  the ``i``-th spawned ``SeedSequence`` and results are folded in chunk
  order *after* execution, a resumed sweep is bitwise identical to an
  uninterrupted one at any worker count.

Recovery behavior is observable through the runner's *operational*
telemetry (:attr:`ResilientRunner.ops_metrics` /
:attr:`ResilientRunner.ops_trace`: ``runtime.chunk_retries``,
``runtime.pool_rebuilds``, ``runtime.chunks_salvaged`` counters and
``checkpoint.write`` / ``chunk.retry`` trace events).  Operational
telemetry is deliberately kept out of the result ``metrics``/``trace``
sinks: those must stay bitwise identical whether or not a sweep was
interrupted, so recovery facts -- like wall-clock facts -- live apart.

.. warning:: **Checkpoints are trusted input.**  Chunk payloads are
   pickled (trial values, metrics, and trace records are arbitrary
   Python objects, so no restricted encoding can represent them), and
   unpickling attacker-controlled bytes executes arbitrary code.  The
   corruption checks validate JSON structure and schema version; they
   cannot make pickle safe.  Only resume journals your own runs wrote,
   with the same trust you would give the simulation code itself.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import threading
import time
import warnings
from collections import deque
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.context import BaseContext
from pathlib import Path
from typing import Any, TextIO

import numpy as np

from ..core.atomic import fsync_dir
from ..obs import MetricsRegistry, TraceRecorder
from .executors.base import BackendUnavailable, ChunkExecutor, ChunkJob
from .executors.local import LocalProcessBackend
from .runner import (
    RunTelemetry,
    TrialAggregate,
    TrialExecutionError,
    TrialRunner,
    _ChunkError,
    _ChunkPayload,
    _run_chunk,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "JournalWriter",
    "RetryPolicy",
    "ResilientRunner",
    "SweepStopped",
    "args_digest",
    "read_checkpoint_argv",
]

#: Version stamp carried by every journal record; bumped on any change to
#: the record shapes below so old journals fail loudly instead of subtly.
CHECKPOINT_SCHEMA_VERSION = 1

_Bounds = tuple[int, int]


class CheckpointError(RuntimeError):
    """A checkpoint journal is missing, corrupt, or from a different run."""


class SweepStopped(RuntimeError):
    """A sweep was stopped cooperatively via :meth:`ResilientRunner.request_stop`.

    Not a failure: every chunk completed before the stop is journaled (when
    a checkpoint is configured), so the sweep resumes from where it left
    off -- this is how ``mlec-sim serve`` checkpoints running jobs during a
    graceful drain instead of discarding their progress.
    """


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a chunk unrecoverable.

    ``max_attempts`` counts *total* attempts (first try included), so
    ``max_attempts=1`` disables retries.  Backoff before attempt ``k+1``
    is ``backoff_base * backoff_factor**(k-1)`` capped at
    ``backoff_max``, shrunk by up to ``jitter_fraction`` using a hash of
    ``(chunk_index, attempt)`` -- deterministic, so two runs of the same
    failing sweep pause identically (no ``random()``-style scheduling
    nondeterminism sneaks into the harness).
    """

    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {self.backoff_max}")
        if not 0 <= self.jitter_fraction <= 1:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )

    def backoff_seconds(self, attempt: int, chunk_index: int) -> float:
        """Delay before retrying ``chunk_index`` after ``attempt`` failures."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        digest = hashlib.sha256(f"{chunk_index}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return delay * (1.0 - self.jitter_fraction * fraction)


# ----------------------------------------------------------------------
# Checkpoint journal (WAL-style JSONL)
# ----------------------------------------------------------------------
#
# Record shapes (fixed key order, compact separators, one per line):
#
#   {"v": 1, "kind": "meta",  "data": {"argv": [...] | null,
#                                      "created_unix": <float>}}
#   {"v": 1, "kind": "sweep", "sweep": <int>, "data": {<sweep header>}}
#   {"v": 1, "kind": "chunk", "sweep": <int>, "lo": <int>, "hi": <int>,
#    "payload": "<base64 pickle of the worker chunk payload>"}
#
# A runner may execute several sweeps against one journal (e.g. stage-1
# splitting runs one map() per accelerated AFR); sweeps are identified by
# their call ordinal and validated against the recorded header on resume.


def _encode_payload(payload: _ChunkPayload) -> str:
    return base64.b64encode(pickle.dumps(payload, protocol=4)).decode("ascii")


def _decode_payload(text: str, where: str) -> _ChunkPayload:
    # pickle.loads on untrusted bytes is arbitrary code execution; see
    # the module-level trust warning.  Journals are as trusted as code.
    try:
        obj = pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise CheckpointError(f"{where}: undecodable chunk payload: {exc}") from exc
    if not isinstance(obj, _ChunkPayload):
        raise CheckpointError(
            f"{where}: chunk payload decoded to {type(obj).__name__}, "
            "not a chunk result"
        )
    return obj


def args_digest(args: tuple[Any, ...]) -> str:
    """Stable fingerprint of a sweep's args tuple for resume validation.

    The same digest keys the ``mlec-sim serve`` dedupe cache: two sweep
    submissions with identical ``(fn, args, trials, seed)`` hash to the
    same journal header and therefore the same cache entry.
    """
    try:
        blob = pickle.dumps(args, protocol=4)
    except Exception:
        blob = repr(args).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclasses.dataclass
class _LoadedCheckpoint:
    """Everything recoverable from an existing journal file."""

    argv: list[str] | None
    sweeps: dict[int, dict[str, Any]]
    chunks: dict[int, dict[_Bounds, _ChunkPayload]]
    dropped_tail: bool
    #: Byte offset just past the last complete (newline-terminated)
    #: record; everything beyond it is the torn tail.
    valid_bytes: int


def _load_checkpoint(path: Path) -> _LoadedCheckpoint:
    """Parse a journal; strict except for a torn (crash-truncated) tail.

    Every newline-terminated line must be a valid, schema-versioned
    record -- corruption in the journal body is rejected loudly rather
    than silently skewing a resumed sweep.  A final line without its
    terminating newline is the expected signature of a writer killed
    mid-append and is dropped (its chunk simply re-runs).
    """
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not raw:
        raise CheckpointError(f"{path} is empty; not a checkpoint journal")
    segments = raw.split(b"\n")
    dropped_tail = segments[-1] != b""
    valid_bytes = len(raw) - len(segments[-1])
    lines = segments[:-1]
    if not lines:
        raise CheckpointError(
            f"{path} holds no complete records; not a checkpoint journal"
        )

    argv: list[str] | None = None
    sweeps: dict[int, dict[str, Any]] = {}
    chunks: dict[int, dict[_Bounds, _ChunkPayload]] = {}
    for lineno, line in enumerate(lines, start=1):
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{where}: not a valid record: {exc}") from exc
        if not isinstance(record, dict):
            raise CheckpointError(f"{where}: record must be an object")
        if record.get("v") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"{where}: unsupported checkpoint schema version "
                f"{record.get('v')!r} (this reader understands "
                f"{CHECKPOINT_SCHEMA_VERSION})"
            )
        kind = record.get("kind")
        if lineno == 1 and kind != "meta":
            raise CheckpointError(
                f"{where}: first record must be 'meta'; not a checkpoint journal"
            )
        if kind == "meta":
            data = record.get("data")
            if not isinstance(data, dict):
                raise CheckpointError(f"{where}: meta record has no data object")
            recorded_argv = data.get("argv")
            if recorded_argv is not None:
                if not isinstance(recorded_argv, list) or not all(
                    isinstance(a, str) for a in recorded_argv
                ):
                    raise CheckpointError(f"{where}: meta argv must be strings")
                argv = list(recorded_argv)
        elif kind == "sweep":
            sweep = record.get("sweep")
            data = record.get("data")
            if not isinstance(sweep, int) or not isinstance(data, dict):
                raise CheckpointError(f"{where}: malformed sweep record")
            sweeps[sweep] = data
        elif kind == "chunk":
            sweep = record.get("sweep")
            lo, hi = record.get("lo"), record.get("hi")
            text = record.get("payload")
            if (
                not isinstance(sweep, int)
                or not isinstance(lo, int)
                or not isinstance(hi, int)
                or not isinstance(text, str)
                or not 0 <= lo < hi
            ):
                raise CheckpointError(f"{where}: malformed chunk record")
            if sweep not in sweeps:
                raise CheckpointError(
                    f"{where}: chunk for sweep {sweep} precedes its sweep header"
                )
            chunks.setdefault(sweep, {})[(lo, hi)] = _decode_payload(text, where)
        else:
            raise CheckpointError(f"{where}: unknown record kind {kind!r}")
    return _LoadedCheckpoint(
        argv=argv,
        sweeps=sweeps,
        chunks=chunks,
        dropped_tail=dropped_tail,
        valid_bytes=valid_bytes,
    )


def _truncate_torn_tail(path: Path, loaded: _LoadedCheckpoint) -> None:
    """Cut a torn final line off the journal before any further append.

    The journal writer opens in append mode, so a partial record left by
    a killed writer must be removed first -- otherwise the resumed run's
    first record would be concatenated onto it, rendering the journal
    permanently unloadable.
    """
    if not loaded.dropped_tail:
        return
    with open(path, "r+b") as fh:
        fh.truncate(loaded.valid_bytes)
        fh.flush()
        os.fsync(fh.fileno())
    loaded.dropped_tail = False


def read_checkpoint_argv(path: str | Path) -> list[str]:
    """The ``mlec-sim`` argv recorded in a checkpoint (for ``resume``)."""
    loaded = _load_checkpoint(Path(path))
    if loaded.argv is None:
        raise CheckpointError(
            f"{path} does not record a command line; it was written by a "
            "library run and can only be resumed programmatically"
        )
    return loaded.argv


class JournalWriter:
    """Append fsynced JSONL records; durability is the whole point.

    Creating the journal also fsyncs its parent directory: the file's
    bytes are made durable by the per-append fsync, but the directory
    entry naming the file is not -- without the directory fsync a power
    cut just after creation can leave a fully-fsynced journal that no
    longer has a name.  (The service job store reuses this writer for
    its own WAL, so the discipline is shared.)
    """

    def __init__(self, path: Path) -> None:
        self._path = path
        fresh = not path.exists()
        self._fh: TextIO = open(path, "a", encoding="utf-8")
        if fresh:
            fsync_dir(path.parent)

    def append(self, record: Mapping[str, Any]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


# ----------------------------------------------------------------------
# The resilient runner
# ----------------------------------------------------------------------
class ResilientRunner(TrialRunner):
    """A :class:`TrialRunner` that survives crashes, retries, and resumes.

    Drop-in compatible with every campaign entry point that accepts a
    runner (``burst_pdl_stats`` / ``burst_pdl_grid``,
    ``stage1_pool_rate``, :class:`~repro.faults.ChaosCampaign`, the CLI
    subcommands): :meth:`run` and :meth:`map` keep the base signatures
    and the bitwise any-worker-count determinism contract.

    Parameters (beyond :class:`TrialRunner`'s)
    ------------------------------------------
    checkpoint:
        Path of the JSONL journal.  ``None`` disables checkpointing
        (retry/salvage still apply).
    resume:
        Continue from an existing journal at ``checkpoint``.  Without
        this flag an existing journal is refused rather than clobbered.
    policy:
        :class:`RetryPolicy` governing per-chunk retries.
    chunk_timeout:
        Seconds one dispatched chunk may run before its pool is torn
        down and the chunk is retried (pool path only; the in-process
        path cannot preempt a running chunk).
    argv:
        Command line to record in the journal so ``mlec-sim resume``
        can re-execute the producing command.
    backend:
        Optional :class:`~repro.runtime.executors.ChunkExecutor`
        deciding where chunks run (see :class:`TrialRunner`).  The
        checkpoint journal records *chunk ranges*, never hosts, so a
        sweep journaled under one backend (or host count) resumes
        byte-identically under any other.
    """

    def __init__(
        self,
        workers: int | None = 1,
        chunk_size: int | None = None,
        mp_context: BaseContext | None = None,
        *,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        policy: RetryPolicy | None = None,
        chunk_timeout: float | None = None,
        argv: Sequence[str] | None = None,
        backend: ChunkExecutor | None = None,
        batch: str = "auto",
    ) -> None:
        super().__init__(workers, chunk_size, mp_context, backend, batch)
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError(f"chunk_timeout must be > 0, got {chunk_timeout}")
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        self.policy = policy if policy is not None else RetryPolicy()
        self.chunk_timeout = chunk_timeout
        self.checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        # Recovery counters/events go to the base class's ops_metrics /
        # ops_trace sinks -- operational telemetry, kept apart from the
        # result metrics/trace sinks, which must stay bitwise identical
        # whether or not the sweep was ever interrupted.
        self._argv = list(argv) if argv is not None else None
        self._loaded: _LoadedCheckpoint | None = None
        self._writer: JournalWriter | None = None
        self._sweep = -1
        self._stop = threading.Event()
        if self.checkpoint_path is not None:
            if self.checkpoint_path.exists():
                if not resume:
                    raise CheckpointError(
                        f"checkpoint {self.checkpoint_path} already exists; "
                        "pass resume=True / --resume (or run `mlec-sim resume "
                        f"{self.checkpoint_path}`) to continue it, or remove it"
                    )
                self._loaded = _load_checkpoint(self.checkpoint_path)
                _truncate_torn_tail(self.checkpoint_path, self._loaded)
            elif resume:
                raise CheckpointError(
                    f"cannot resume: no checkpoint at {self.checkpoint_path}"
                )

    # ------------------------------------------------------------------
    # Public API (drop-in for TrialRunner)
    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        trials: int,
        seed: int = 0,
        args: tuple[Any, ...] = (),
        timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> TrialAggregate:
        values = self._execute("run", fn, trials, seed, args, timeout, metrics, trace)
        agg = TrialAggregate()
        for value in values:
            agg.add(value)
        return agg

    def map(
        self,
        fn: Callable[..., Any],
        trials: int,
        seed: int = 0,
        args: tuple[Any, ...] = (),
        timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> list[Any]:
        return self._execute("map", fn, trials, seed, args, timeout, metrics, trace)

    def close(self) -> None:
        """Flush and close the journal (safe to call repeatedly).

        :meth:`run` / :meth:`map` already close the journal on every
        exit path (the next sweep reopens it in append mode), so library
        callers need no explicit cleanup; ``close()`` and the context
        manager remain for belt-and-braces use.
        """
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "ResilientRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request_stop(self) -> None:
        """Ask the running sweep to stop at the next chunk boundary.

        Thread-safe and idempotent.  The sweep raises
        :class:`SweepStopped` once every in-flight chunk has either
        completed (and been journaled) or been abandoned; chunks are
        never torn mid-trial, so a stopped sweep resumes byte-identically
        from its checkpoint.  This is the graceful-drain primitive the
        service daemon uses on SIGTERM.
        """
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        """Whether :meth:`request_stop` has been called for this sweep."""
        return self._stop.is_set()

    def clear_stop(self) -> None:
        """Re-arm a stopped runner so a later sweep can run."""
        self._stop.clear()

    def _check_stop(self, payloads: dict[_Bounds, _ChunkPayload]) -> None:
        if self._stop.is_set():
            raise SweepStopped(
                f"sweep stopped on request ({self._salvage_note(payloads)})"
            )

    def recovery_summary(self) -> str:
        """One human line of recovery facts, for the CLI to print."""
        counters = self.ops_metrics.snapshot()["counters"]

        def count(name: str) -> int:
            value = counters.get(name, 0)
            return int(value) if isinstance(value, (int, float)) else 0

        salvaged = count("runtime.chunks_salvaged")
        retries = count("runtime.chunk_retries")
        rebuilds = count("runtime.pool_rebuilds")
        steals = count("runtime.steals")
        deaths = count("runtime.worker_deaths")
        written = count("checkpoint.chunk_writes")
        if self.checkpoint_path is None:
            parts = ["no journal"]
        else:
            parts = [f"{written} chunk(s) journaled"]
        parts.append(f"{salvaged} salvaged from checkpoint")
        parts.append(f"{retries} chunk retries")
        parts.append(f"{rebuilds} pool rebuilds")
        if steals:
            parts.append(f"{steals} chunk steals")
        if deaths:
            parts.append(f"{deaths} worker deaths")
        return "resilience: " + ", ".join(parts)

    # ------------------------------------------------------------------
    # Core scheduling
    # ------------------------------------------------------------------
    def _execute(
        self,
        mode: str,
        fn: Callable[..., Any],
        trials: int,
        seed: int,
        args: tuple[Any, ...],
        timeout: float | None,
        metrics: MetricsRegistry | None,
        trace: TraceRecorder | None,
    ) -> list[Any]:
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        self._sweep += 1
        sweep = self._sweep
        fn_module = getattr(fn, "__module__", "?")
        fn_name = getattr(fn, "__qualname__", getattr(fn, "__name__", "?"))
        header: dict[str, Any] = {
            "mode": mode,
            "trials": trials,
            "seed": seed,
            "chunk": self._resolved_chunk(trials),
            "fn": f"{fn_module}:{fn_name}",
            "args_sha256": args_digest(args),
            "collect_metrics": metrics is not None,
            "collect_trace": trace is not None,
        }
        # Deterministic trace identity: the same fingerprint that guards
        # resume validation, so a resumed run's spans join the original
        # run's trace.  First seeding wins (an enclosing campaign's).
        self.spans.seed_trace(
            header["fn"], header["args_sha256"], trials, seed
        )
        try:
            with self.spans.span(
                "span.sweep",
                key=("sweep", sweep),
                trials=trials,
                seed=seed,
                mode=mode,
                backend=self.backend_name,
            ):
                payloads = self._begin_sweep(sweep, header, trials)
                chunk = int(header["chunk"])
                bounds = [
                    (lo, min(lo + chunk, trials)) for lo in range(0, trials, chunk)
                ]
                stray = set(payloads) - set(bounds)
                if stray:
                    raise CheckpointError(
                        f"checkpoint sweep {sweep} holds chunk ranges "
                        f"{sorted(stray)} that do not align with the recorded "
                        f"chunking ({chunk} trials/chunk); the journal is "
                        "inconsistent"
                    )
                if payloads:
                    self.ops_metrics.counter("runtime.chunks_salvaged").inc(
                        len(payloads)
                    )
                    self.ops_trace.event(
                        self._elapsed(),
                        "checkpoint.salvage",
                        sweep=sweep,
                        chunks=len(payloads),
                    )
                pending = [
                    (i, b) for i, b in enumerate(bounds) if b not in payloads
                ]
                self.ops_metrics.counter("runtime.trials_planned").inc(trials)
                if self.progress is not None:
                    self.progress.begin_sweep(
                        trials,
                        len(bounds),
                        salvaged_trials=sum(
                            len(p.values) for p in payloads.values()
                        ),
                        salvaged_chunks=len(payloads),
                    )

                began = time.perf_counter()
                deadline = None if timeout is None else time.monotonic() + timeout
                children = np.random.SeedSequence(seed).spawn(trials)
                collect = (metrics is not None, trace is not None)
                if pending:
                    if self.backend is not None or (
                        self.workers > 1 and len(pending) > 1
                    ):
                        self._execute_pooled(
                            fn,
                            children,
                            args,
                            collect,
                            pending,
                            payloads,
                            sweep,
                            deadline,
                            timeout,
                        )
                    remaining = [(i, b) for i, b in pending if b not in payloads]
                    if remaining:
                        self._execute_serial(
                            fn,
                            children,
                            args,
                            collect,
                            remaining,
                            payloads,
                            sweep,
                            deadline,
                            timeout,
                        )
                if self.progress is not None:
                    self.progress.end_sweep()
        finally:
            # Chunks journaled so far are durable (each append is
            # fsynced).  Close the journal whether the sweep completed,
            # failed, or was interrupted: library callers must not leak
            # the handle across sweeps, and a killed run must always be
            # resumable.  The next sweep reopens it in append mode.
            self.close()

        self.last_telemetry = RunTelemetry(
            trials=trials,
            chunks=len(bounds),
            workers=self.workers,
            wall_seconds=time.perf_counter() - began,
            worker_seconds=sum(p.seconds for p in payloads.values()),
        )
        # Deterministic fold: chunk order == trial order, independent of
        # completion order, retries, and how much came from the journal.
        out: list[Any] = []
        for b in bounds:
            payload = payloads[b]
            if metrics is not None and payload.metrics is not None:
                metrics.merge(payload.metrics)
            if trace is not None:
                trace.extend(payload.records)
            self._absorb_batch_stats(payload)
            out.extend(payload.values)
        return out

    def _resolved_chunk(self, trials: int) -> int:
        bounds = self._chunk_bounds(trials)
        return bounds[0][1] - bounds[0][0]

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _ensure_writer(self) -> JournalWriter | None:
        if self.checkpoint_path is None:
            return None
        if self._writer is None:
            fresh = not self.checkpoint_path.exists()
            self._writer = JournalWriter(self.checkpoint_path)
            if fresh:
                self._writer.append(
                    {
                        "v": CHECKPOINT_SCHEMA_VERSION,
                        "kind": "meta",
                        "data": {"argv": self._argv, "created_unix": time.time()},
                    }
                )
        return self._writer

    def _begin_sweep(
        self, sweep: int, header: dict[str, Any], trials: int
    ) -> dict[_Bounds, _ChunkPayload]:
        loaded = self._loaded
        if loaded is not None and sweep in loaded.sweeps:
            recorded = loaded.sweeps[sweep]
            for key in (
                "mode",
                "trials",
                "seed",
                "fn",
                "args_sha256",
                "collect_metrics",
                "collect_trace",
            ):
                if recorded.get(key) != header[key]:
                    raise CheckpointError(
                        f"checkpoint sweep {sweep} was recorded with "
                        f"{key}={recorded.get(key)!r} but this run uses "
                        f"{header[key]!r}; refusing to mix results from "
                        "different sweeps"
                    )
            if not isinstance(recorded.get("chunk"), int) or recorded["chunk"] < 1:
                raise CheckpointError(
                    f"checkpoint sweep {sweep} records no valid chunk size"
                )
            # Reuse the recorded chunking so journaled ranges stay
            # aligned even if --workers changed between runs.
            header["chunk"] = int(recorded["chunk"])
            return dict(loaded.chunks.get(sweep, {}))
        writer = self._ensure_writer()
        if writer is not None:
            writer.append(
                {
                    "v": CHECKPOINT_SCHEMA_VERSION,
                    "kind": "sweep",
                    "sweep": sweep,
                    "data": header,
                }
            )
            self.ops_trace.event(
                self._elapsed(), "checkpoint.write", record="sweep", sweep=sweep
            )
        return {}

    def _record_chunk(
        self, sweep: int, bounds: _Bounds, payload: _ChunkPayload
    ) -> None:
        writer = self._ensure_writer()
        if writer is None:
            return
        lo, hi = bounds
        with self.spans.span(
            "span.checkpoint_write", key=("ckpt", sweep, lo, hi), lo=lo, hi=hi
        ):
            writer.append(
                {
                    "v": CHECKPOINT_SCHEMA_VERSION,
                    "kind": "chunk",
                    "sweep": sweep,
                    "lo": lo,
                    "hi": hi,
                    "payload": _encode_payload(payload),
                }
            )
        self.ops_metrics.counter("checkpoint.chunk_writes").inc()
        self.ops_trace.event(
            self._elapsed(),
            "checkpoint.write",
            record="chunk",
            sweep=sweep,
            lo=lo,
            hi=hi,
        )

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------
    def _salvage_values(
        self, payloads: dict[_Bounds, _ChunkPayload]
    ) -> tuple[list[Any], int]:
        values: list[Any] = []
        for b in sorted(payloads):
            values.extend(payloads[b].values)
        return values, len(values)

    def _salvage_note(self, payloads: dict[_Bounds, _ChunkPayload]) -> str:
        _values, n = self._salvage_values(payloads)
        note = f"salvaged {n} completed trials"
        if self.checkpoint_path is not None:
            note += f"; journaled to {self.checkpoint_path}"
        return note

    def _sweep_timeout_error(
        self, timeout: float | None, payloads: dict[_Bounds, _ChunkPayload]
    ) -> TrialExecutionError:
        values, _n = self._salvage_values(payloads)
        limit = f"{timeout:g}s" if timeout is not None else "its deadline"
        return TrialExecutionError(
            f"trial sweep timed out after {limit} "
            f"({self._salvage_note(payloads)})",
            partial_values=values,
        )

    def _note_chunk_failure(
        self,
        index: int,
        bounds: _Bounds,
        attempts: dict[int, int],
        payloads: dict[_Bounds, _ChunkPayload],
        reason: str,
        worker_traceback: str | None = None,
        duration: float = 0.0,
    ) -> float:
        """Charge one failure against a chunk.

        ``duration`` is how long the failed attempt ran on the
        coordinator's clock when known (the pool path tracks dispatch
        times; a worker-reported failure arrives without one).  Returns
        the backoff delay before the next attempt, or raises
        :class:`TrialExecutionError` (with salvage attached) once the
        policy is exhausted.
        """
        lo, hi = bounds
        failures = attempts.get(index, 0) + 1
        attempts[index] = failures
        if failures >= self.policy.max_attempts:
            values, _n = self._salvage_values(payloads)
            message = (
                f"chunk [{lo}, {hi}) failed {failures} time(s) and the retry "
                f"policy allows {self.policy.max_attempts} attempt(s); "
                f"last failure: {reason} ({self._salvage_note(payloads)})"
            )
            if worker_traceback:
                message += f"\n--- worker traceback ---\n{worker_traceback}"
            raise TrialExecutionError(message, partial_values=values)
        self.ops_metrics.counter("runtime.chunk_retries").inc()
        self.ops_trace.event(
            self._elapsed(),
            "chunk.retry",
            lo=lo,
            hi=hi,
            attempt=failures,
            reason=reason[:200],
        )
        # The failed attempt as a span, parented under the chunk whose
        # record will exist once some attempt finally succeeds (ids are
        # deterministic, so the parent link resolves retroactively).
        self.spans.emit(
            "span.attempt",
            start=max(0.0, self._elapsed() - max(0.0, duration)),
            duration=max(0.0, duration),
            key=(self._sweep, index, failures),
            parent=self.spans.span_id("span.chunk", self._sweep, index),
            lo=lo,
            hi=hi,
            attempt=failures,
            host=None,
            status="error",
        )
        if self.progress is not None:
            self.progress.note_retry()
        return self.policy.backoff_seconds(failures, index)

    # ------------------------------------------------------------------
    # Pool path (any ChunkExecutor backend)
    # ------------------------------------------------------------------
    def _acquire_backend(self, n_pending: int) -> tuple[ChunkExecutor | None, bool]:
        """The backend to dispatch on, plus whether this runner owns it."""
        if self.backend is not None:
            executor: ChunkExecutor = self.backend
            owns = False
        else:
            executor = LocalProcessBackend(
                max_workers=min(self.workers, n_pending),
                mp_context=self.mp_context,
            )
            owns = True
        try:
            executor.start()
        except BackendUnavailable as exc:  # sandboxes without semaphores
            warnings.warn(
                f"{exc}; running trials in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            return None, owns
        return executor, owns

    def _rebuild_backend(
        self,
        executor: ChunkExecutor,
        inflight: dict[Future[Any], tuple[int, _Bounds, float]],
        queue: deque[tuple[int, _Bounds]],
    ) -> bool:
        """Requeue collateral chunks and rebuild the backend's compute.

        Chunks still in flight when the backend dies are *collateral*:
        they are rescheduled without an attempt charge (the chunk that
        caused the teardown was charged by the caller and sits in its
        backoff window already).
        """
        for index, bounds, _started in inflight.values():
            queue.append((index, bounds))
        inflight.clear()
        self.ops_metrics.counter("runtime.pool_rebuilds").inc()
        rebuilds = int(self.ops_metrics.counter("runtime.pool_rebuilds").value)
        self.ops_trace.event(
            self._elapsed(),
            "pool.rebuild",
            pending=len(queue),
            backend=executor.name,
        )
        with self.spans.span(
            "span.pool_rebuild",
            key=("rebuild", rebuilds),
            backend=executor.name,
            pending=len(queue),
        ):
            rebuilt = executor.rebuild()
        if rebuilt:
            return True
        warnings.warn(
            f"{executor.name} backend cannot be rebuilt; "
            "running remaining trials in-process",
            RuntimeWarning,
            stacklevel=2,
        )
        return False

    def _drain_backend_events(self, executor: ChunkExecutor) -> None:
        """Fold backend facts (steals, worker deaths) into ops telemetry.

        Accounting contract: a steal charges exactly one retry (the
        straggler's lease expired -- that *is* the retry); a worker
        death charges one retry per lease it forfeited; a duplicate
        completion (steal loser finishing late) charges nothing and is
        recorded only as a trace event, which is what "losers uncharged,
        at-most-once aggregation" means in numbers.  Backend-internal
        requeues never consume the runner's ``RetryPolicy`` attempt
        budget -- that budget is for chunks that *failed*, not chunks a
        dying host happened to hold.
        """
        for event in executor.drain_events():
            data = dict(event.data)
            if event.kind == "steal":
                self.ops_metrics.counter("runtime.steals").inc()
                self.ops_metrics.counter("runtime.chunk_retries").inc()
                self.ops_trace.event(self._elapsed(), "chunk.steal", **data)
                # Instantaneous span: the steal decision itself (the
                # stolen chunk's execution shows up as attempt spans).
                self.spans.emit(
                    "span.steal",
                    start=self._elapsed(),
                    duration=0.0,
                    **{k: v for k, v in data.items() if k != "dur_s"},
                )
                if self.progress is not None:
                    self.progress.note_steal()
            elif event.kind == "worker_death":
                requeued = int(data.get("requeued", 0))
                self.ops_metrics.counter("runtime.worker_deaths").inc()
                if requeued:
                    self.ops_metrics.counter("runtime.chunk_retries").inc(requeued)
                self.ops_trace.event(self._elapsed(), "worker.death", **data)
                if self.progress is not None:
                    self.progress.note_worker_death()
            elif event.kind == "duplicate":
                self.ops_trace.event(self._elapsed(), "chunk.duplicate", **data)
            elif event.kind == "worker_join":
                self.ops_trace.event(self._elapsed(), "worker.join", **data)
            elif event.kind == "fallback":
                self.ops_trace.event(self._elapsed(), "backend.fallback", **data)
            else:
                self.ops_trace.event(
                    self._elapsed(), f"backend.{event.kind}", **data
                )

    def _next_wakeup(
        self,
        inflight: dict[Future[Any], tuple[int, _Bounds, float]],
        retry_at: dict[int, tuple[float, _Bounds]],
        deadline: float | None,
    ) -> float:
        """Longest safe wait() timeout before some timer needs service."""
        now = time.monotonic()
        horizons = [0.5]
        if self.chunk_timeout is not None and inflight:
            oldest = min(started for _i, _b, started in inflight.values())
            horizons.append(oldest + self.chunk_timeout - now)
        if retry_at:
            horizons.append(min(t for t, _b in retry_at.values()) - now)
        if deadline is not None:
            horizons.append(deadline - now)
        return max(0.0, min(horizons))

    def _execute_pooled(
        self,
        fn: Callable[..., Any],
        children: Sequence[np.random.SeedSequence],
        args: tuple[Any, ...],
        collect: tuple[bool, bool],
        pending: list[tuple[int, _Bounds]],
        payloads: dict[_Bounds, _ChunkPayload],
        sweep: int,
        deadline: float | None,
        timeout: float | None,
    ) -> None:
        """Run pending chunks on a pool, retrying and rebuilding as needed.

        Completed chunks land in ``payloads`` (and the journal) the
        moment they arrive, in *completion* order -- determinism is
        restored by the caller's chunk-ordered fold.  If the backend
        cannot be (re)built, remaining chunks are left for the serial
        fallback.
        """
        executor, owns_backend = self._acquire_backend(len(pending))
        if executor is None:
            return
        queue: deque[tuple[int, _Bounds]] = deque(pending)
        retry_at: dict[int, tuple[float, _Bounds]] = {}
        inflight: dict[Future[Any], tuple[int, _Bounds, float]] = {}
        attempts: dict[int, int] = {}
        try:
            while queue or inflight or retry_at:
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    raise self._sweep_timeout_error(timeout, payloads)
                # Chunk-boundary stop point: everything journaled so far
                # is durable; in-flight chunks are abandoned (the finally
                # clause resets the backend) and simply re-run on resume.
                self._check_stop(payloads)
                for index in [i for i, (t, _b) in retry_at.items() if t <= now]:
                    _due, bounds = retry_at.pop(index)
                    queue.append((index, bounds))
                while queue and len(inflight) < max(1, executor.capacity()):
                    index, (lo, hi) = queue.popleft()
                    future = executor.submit(
                        ChunkJob(
                            index=index,
                            lo=lo,
                            hi=hi,
                            fn=fn,
                            children=tuple(children[lo:hi]),
                            args=args,
                            collect=collect,
                            batch=self.batch,
                            trace_id=self.spans.trace_id,
                        )
                    )
                    inflight[future] = (index, (lo, hi), time.monotonic())
                if not inflight:
                    # Everything is waiting out a backoff window.
                    pause = self._next_wakeup(inflight, retry_at, deadline)
                    if pause > 0:
                        time.sleep(pause)
                    continue
                done, _still_running = wait(
                    set(inflight),
                    timeout=self._next_wakeup(inflight, retry_at, deadline),
                    return_when=FIRST_COMPLETED,
                )
                self._drain_backend_events(executor)
                broken = False
                for future in done:
                    index, bounds, started = inflight.pop(future)
                    ran = max(0.0, time.monotonic() - started)
                    try:
                        result = future.result()
                    except (BrokenProcessPool, RuntimeError, OSError) as exc:
                        # One crash breaks the whole pool, so every
                        # in-flight future resolves with this error at
                        # once.  Charge only the first -- the rest are
                        # collateral chunks that never got to finish and
                        # are rescheduled without an attempt charge.
                        if broken:
                            queue.append((index, bounds))
                            continue
                        broken = True
                        delay = self._note_chunk_failure(
                            index,
                            bounds,
                            attempts,
                            payloads,
                            f"worker process crashed ({type(exc).__name__}: {exc})",
                            duration=ran,
                        )
                        retry_at[index] = (time.monotonic() + delay, bounds)
                        continue
                    if isinstance(result, _ChunkError):
                        delay = self._note_chunk_failure(
                            index,
                            bounds,
                            attempts,
                            payloads,
                            f"trial {result.index} raised {result.message}",
                            worker_traceback=result.worker_traceback,
                            duration=ran,
                        )
                        retry_at[index] = (time.monotonic() + delay, bounds)
                    else:
                        payloads[bounds] = result
                        self._record_chunk(sweep, bounds, result)
                        self._note_chunk_done(
                            sweep,
                            index,
                            bounds[0],
                            bounds[1],
                            result,
                            attempt=attempts.get(index, 0) + 1,
                        )
                if broken:
                    if not self._rebuild_backend(executor, inflight, queue):
                        return  # serial fallback finishes the remainder
                    continue
                # Watchdog: runs every iteration, not just when wait()
                # comes back empty -- a hung chunk must be detected even
                # while other chunks keep completing around it.
                if self.chunk_timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        (future, entry)
                        for future, entry in inflight.items()
                        if now - entry[2] >= self.chunk_timeout
                    ]
                    if expired:
                        for future, (index, bounds, _started) in expired:
                            del inflight[future]
                            delay = self._note_chunk_failure(
                                index,
                                bounds,
                                attempts,
                                payloads,
                                f"chunk exceeded the {self.chunk_timeout:g}s "
                                "chunk timeout",
                                duration=self.chunk_timeout,
                            )
                            retry_at[index] = (time.monotonic() + delay, bounds)
                        if not self._rebuild_backend(executor, inflight, queue):
                            return
        finally:
            self._drain_backend_events(executor)
            if inflight or queue or retry_at:
                # Abnormal exit: workers may be stuck mid-trial.
                executor.reset()
            if owns_backend:
                executor.shutdown(wait=not (inflight or queue or retry_at))

    # ------------------------------------------------------------------
    # Serial path (workers=1, single chunk, or pool unavailable)
    # ------------------------------------------------------------------
    def _execute_serial(
        self,
        fn: Callable[..., Any],
        children: Sequence[np.random.SeedSequence],
        args: tuple[Any, ...],
        collect: tuple[bool, bool],
        pending: list[tuple[int, _Bounds]],
        payloads: dict[_Bounds, _ChunkPayload],
        sweep: int,
        deadline: float | None,
        timeout: float | None,
    ) -> None:
        attempts: dict[int, int] = {}
        for index, (lo, hi) in pending:
            while True:
                if deadline is not None and time.monotonic() >= deadline:
                    raise self._sweep_timeout_error(timeout, payloads)
                self._check_stop(payloads)
                result = _run_chunk(
                    fn, lo, children[lo:hi], args, *collect, batch=self.batch
                )
                if isinstance(result, _ChunkPayload):
                    payloads[(lo, hi)] = result
                    self._record_chunk(sweep, (lo, hi), result)
                    self._note_chunk_done(
                        sweep,
                        index,
                        lo,
                        hi,
                        result,
                        attempt=attempts.get(index, 0) + 1,
                    )
                    break
                delay = self._note_chunk_failure(
                    index,
                    (lo, hi),
                    attempts,
                    payloads,
                    f"trial {result.index} raised {result.message}",
                    worker_traceback=result.worker_traceback,
                )
                if delay > 0:
                    time.sleep(delay)
