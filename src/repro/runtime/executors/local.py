"""Local process-pool backend: the single-host executor.

Wraps :class:`concurrent.futures.ProcessPoolExecutor` behind the
:class:`~repro.runtime.executors.ChunkExecutor` protocol.  This is the
only module in the codebase allowed to construct a process pool
directly (simlint SL009 ``executor-bypass`` enforces that); every other
layer reaches compute through the protocol.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing.context import BaseContext

from .base import BackendEvent, BackendUnavailable, ChunkFuture, ChunkJob, run_chunk

__all__ = ["LocalProcessBackend"]


class LocalProcessBackend:
    """A :class:`ChunkExecutor` over a local ``ProcessPoolExecutor``.

    ``start`` raises :class:`BackendUnavailable` when the host cannot
    spawn worker processes (sandboxes, resource limits), which callers
    translate into the in-process fallback.  ``rebuild`` replaces a
    broken pool after a worker crash; ``reset`` tears everything down
    without waiting (abnormal sweep exit).

    Host attribution needs no plumbing here: :func:`run_chunk` stamps
    the executing process's ``hostname/pid`` label into every payload,
    so the runner's attempt spans are attributed identically whether a
    chunk ran in-process, in this pool, or on a remote TCP worker.
    """

    name = "local"

    def __init__(
        self, max_workers: int, mp_context: BaseContext | None = None
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None

    def start(self) -> None:
        if self._pool is not None:
            return
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=self.mp_context
            )
        except Exception as exc:
            raise BackendUnavailable(f"process pool unavailable ({exc!r})") from exc

    def submit(self, job: ChunkJob) -> ChunkFuture:
        if self._pool is None:
            self.start()
        assert self._pool is not None
        return self._pool.submit(
            run_chunk, job.fn, job.lo, job.children, job.args, *job.collect,
            batch=job.batch,
        )

    def capacity(self) -> int:
        return self.max_workers

    def drain_events(self) -> list[BackendEvent]:
        return []

    def rebuild(self) -> bool:
        """Replace a broken pool; False when the host cannot spawn workers."""
        self._terminate()
        try:
            self.start()
        except BackendUnavailable:
            return False
        return True

    def reset(self) -> None:
        self._terminate()

    def shutdown(self, wait: bool = True) -> None:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def _terminate(self) -> None:
        """Kill the pool without waiting: crashed/hung workers won't drain."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)
