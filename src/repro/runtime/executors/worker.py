"""Worker-side client for the TCP work queue (``mlec-sim workers``).

A worker connects to a coordinator, announces itself, then loops:
receive a lease, execute the chunk with the same :func:`run_chunk`
primitive every other backend uses, ship the result back.  A sidecar
thread heartbeats on the same socket even while a chunk is running, so
the coordinator can tell "busy" from "dead".

Workers are deliberately stateless: all scheduling, retry, and
checkpoint state lives on the coordinator, which is what lets any
number of workers join, die, or straggle without touching the journal
format or the result bytes.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from multiprocessing.context import BaseContext

from .base import ChunkResult, run_chunk
from .tcp import decode_blob, encode_blob, recv_frame, send_frame

__all__ = ["run_worker", "run_worker_fleet"]


def _connect_with_retry(
    host: str, port: int, timeout: float
) -> socket.socket | None:
    """Dial the coordinator, retrying until ``timeout`` elapses.

    Retrying matters operationally: it lets workers be started before
    the coordinator (or ride out a coordinator restart at boot).
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.2)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        try:
            send_frame(sock, {"t": "heartbeat"}, send_lock)
        except (OSError, ValueError):
            return


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    heartbeat_interval: float = 2.0,
    connect_timeout: float = 30.0,
) -> int:
    """Serve chunk leases from ``host:port`` until the coordinator goes away.

    Returns a process exit code: ``0`` on a clean finish (coordinator
    shut down or closed the connection), ``2`` when the coordinator was
    never reachable within ``connect_timeout``.
    """
    if heartbeat_interval <= 0:
        raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
    label = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    sock = _connect_with_retry(host, port, connect_timeout)
    if sock is None:
        return 2
    sock.settimeout(None)
    send_lock = threading.Lock()
    stop = threading.Event()
    try:
        send_frame(sock, {"t": "hello", "worker": label}, send_lock)
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(sock, send_lock, heartbeat_interval, stop),
            name="mlec-heartbeat",
            daemon=True,
        )
        beat.start()
        while True:
            try:
                frame = recv_frame(sock)
            except ValueError:
                return 1
            if frame is None or frame.get("t") == "shutdown":
                return 0
            if frame.get("t") != "lease":
                continue
            try:
                task_id = int(frame["task"])
                job = decode_blob(str(frame["job"]))
                # Pre-batch coordinators ship 4-tuples; tolerate both.
                fn, children, args, collect = job[:4]
                batch = job[4] if len(job) > 4 else "off"
            except (KeyError, TypeError, ValueError):
                return 1
            result: ChunkResult = run_chunk(
                fn, int(frame["lo"]), children, args, *collect, batch=batch
            )
            try:
                send_frame(
                    sock,
                    {
                        "t": "result",
                        "task": task_id,
                        # Echo the lease's span-trace context so both
                        # directions of the wire carry the trace id
                        # (pre-span coordinators simply omit it).
                        "trace": frame.get("trace"),
                        "payload": encode_blob(result),
                    },
                    send_lock,
                )
            except (OSError, ValueError):
                return 0  # coordinator gone; its lease machinery recovers
    except OSError:
        return 0
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def _fleet_entry(
    host: str,
    port: int,
    worker_id: str,
    heartbeat_interval: float,
    connect_timeout: float,
) -> None:
    raise SystemExit(
        run_worker(
            host,
            port,
            worker_id=worker_id,
            heartbeat_interval=heartbeat_interval,
            connect_timeout=connect_timeout,
        )
    )


def run_worker_fleet(
    host: str,
    port: int,
    *,
    processes: int,
    heartbeat_interval: float = 2.0,
    connect_timeout: float = 30.0,
    mp_context: BaseContext | None = None,
) -> int:
    """Run ``processes`` worker processes against one coordinator.

    Each process owns a private connection (one lease slot each), so
    the coordinator sees -- and survives the death of -- each process
    independently.  Returns the worst child exit code.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return run_worker(
            host,
            port,
            heartbeat_interval=heartbeat_interval,
            connect_timeout=connect_timeout,
        )
    ctx: BaseContext = mp_context or multiprocessing.get_context()
    procs = []
    base = f"{socket.gethostname()}-{os.getpid()}"
    for slot in range(processes):
        proc = ctx.Process(
            target=_fleet_entry,
            args=(host, port, f"{base}.{slot}", heartbeat_interval, connect_timeout),
            daemon=False,
        )
        proc.start()
        procs.append(proc)
    worst = 0
    for proc in procs:
        proc.join()
        code = proc.exitcode
        if code is None:
            code = 1
        worst = max(worst, abs(code))
    return worst
