"""Worker-side client for the TCP work queue (``mlec-sim workers``).

A worker connects to a coordinator, announces itself, then loops:
receive a lease, execute the chunk with the same :func:`run_chunk`
primitive every other backend uses, ship the result back.  A sidecar
thread heartbeats on the same socket even while a chunk is running, so
the coordinator can tell "busy" from "dead".

Workers are deliberately stateless: all scheduling, retry, and
checkpoint state lives on the coordinator, which is what lets any
number of workers join, die, or straggle without touching the journal
format or the result bytes.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from multiprocessing.context import BaseContext

from .base import ChunkResult, run_chunk
from .tcp import decode_blob, encode_blob, recv_frame, send_frame

__all__ = ["run_worker", "run_worker_fleet"]


def _connect_with_retry(
    host: str, port: int, timeout: float | None, backoff_max: float = 5.0
) -> socket.socket | None:
    """Dial the coordinator, retrying until ``timeout`` elapses.

    Retrying matters operationally: it lets workers be started before
    the coordinator (or ride out a coordinator restart at boot).
    Retries back off exponentially from 0.2 s up to ``backoff_max`` so a
    long-lived ``--stay`` fleet waiting out a daemon restart does not
    spin-dial the dead address.  ``timeout=None`` retries forever.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    pause = 0.2
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(pause)
            pause = min(backoff_max, pause * 2)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        try:
            send_frame(sock, {"t": "heartbeat"}, send_lock)
        except (OSError, ValueError):
            return


def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    heartbeat_interval: float = 2.0,
    connect_timeout: float = 30.0,
    stay: bool = False,
    max_sessions: int | None = None,
) -> int:
    """Serve chunk leases from ``host:port`` until the coordinator goes away.

    Returns a process exit code: ``0`` on a clean finish (coordinator
    shut down or closed the connection), ``2`` when the coordinator was
    never reachable within ``connect_timeout``.

    With ``stay=True`` the worker never treats a coordinator departure as
    final: on clean shutdown, EOF, or connect failure it re-enters the
    retry-connect loop (exponential backoff capped at 5 s) and serves the
    next coordinator that binds the address.  That is the fleet mode for
    ``mlec-sim serve`` -- the daemon restarting (including ``kill -9``)
    must not orphan its workers.  A ``stay`` worker runs until the
    process is signalled; ``max_sessions`` bounds the number of
    coordinator sessions served (testing hook).
    """
    if heartbeat_interval <= 0:
        raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
    label = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    sessions = 0
    while True:
        sock = _connect_with_retry(
            host, port, None if stay else connect_timeout
        )
        if sock is None:
            return 2
        code = _serve_coordinator(sock, label, heartbeat_interval)
        sessions += 1
        if not stay:
            return code
        if max_sessions is not None and sessions >= max_sessions:
            return code


def _serve_coordinator(
    sock: socket.socket, label: str, heartbeat_interval: float
) -> int:
    """Serve one coordinator connection until it goes away."""
    sock.settimeout(None)
    send_lock = threading.Lock()
    stop = threading.Event()
    try:
        send_frame(sock, {"t": "hello", "worker": label}, send_lock)
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(sock, send_lock, heartbeat_interval, stop),
            name="mlec-heartbeat",
            daemon=True,
        )
        beat.start()
        while True:
            try:
                frame = recv_frame(sock)
            except ValueError:
                return 1
            if frame is None or frame.get("t") == "shutdown":
                return 0
            if frame.get("t") != "lease":
                continue
            try:
                task_id = int(frame["task"])
                job = decode_blob(str(frame["job"]))
                # Pre-batch coordinators ship 4-tuples; tolerate both.
                fn, children, args, collect = job[:4]
                batch = job[4] if len(job) > 4 else "off"
            except (KeyError, TypeError, ValueError):
                return 1
            result: ChunkResult = run_chunk(
                fn, int(frame["lo"]), children, args, *collect, batch=batch
            )
            try:
                send_frame(
                    sock,
                    {
                        "t": "result",
                        "task": task_id,
                        # Echo the lease's span-trace context so both
                        # directions of the wire carry the trace id
                        # (pre-span coordinators simply omit it).
                        "trace": frame.get("trace"),
                        "payload": encode_blob(result),
                    },
                    send_lock,
                )
            except (OSError, ValueError):
                return 0  # coordinator gone; its lease machinery recovers
    except OSError:
        return 0
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def _fleet_entry(
    host: str,
    port: int,
    worker_id: str,
    heartbeat_interval: float,
    connect_timeout: float,
    stay: bool,
) -> None:
    # Fork-started children inherit the fleet parent's _stop_fleet
    # handler, which only makes sense in the parent (it touches the
    # parent's Process handles).  Restore the default disposition so
    # terminate() kills the child instead of re-entering the handler.
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, signal.SIG_DFL)
    raise SystemExit(
        run_worker(
            host,
            port,
            worker_id=worker_id,
            heartbeat_interval=heartbeat_interval,
            connect_timeout=connect_timeout,
            stay=stay,
        )
    )


def run_worker_fleet(
    host: str,
    port: int,
    *,
    processes: int,
    heartbeat_interval: float = 2.0,
    connect_timeout: float = 30.0,
    mp_context: BaseContext | None = None,
    stay: bool = False,
) -> int:
    """Run ``processes`` worker processes against one coordinator.

    Each process owns a private connection (one lease slot each), so
    the coordinator sees -- and survives the death of -- each process
    independently.  Returns the worst child exit code.  ``stay`` makes
    every process outlive coordinator departures (see :func:`run_worker`).

    SIGTERM/SIGINT on the fleet parent tears the children down too and
    counts as a clean stop (exit 0): a ``--stay`` fleet retries its
    coordinator forever, so operator signals are the *only* way it ever
    stops, and ``kill <fleet-pid>`` must not strand orphans mid-retry.
    """
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if processes == 1:
        return run_worker(
            host,
            port,
            heartbeat_interval=heartbeat_interval,
            connect_timeout=connect_timeout,
            stay=stay,
        )
    ctx: BaseContext = mp_context or multiprocessing.get_context()
    procs = []
    stopping = False

    def _stop_fleet(_signum: int, _frame: object) -> None:
        nonlocal stopping
        stopping = True
        for proc in procs:
            if proc.is_alive():
                proc.terminate()

    previous = {}
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _stop_fleet)
    except ValueError:
        previous = {}  # not the main thread: the caller owns signals
    try:
        base = f"{socket.gethostname()}-{os.getpid()}"
        for slot in range(processes):
            proc = ctx.Process(
                target=_fleet_entry,
                args=(
                    host,
                    port,
                    f"{base}.{slot}",
                    heartbeat_interval,
                    connect_timeout,
                    stay,
                ),
                daemon=False,
            )
            proc.start()
            procs.append(proc)
        worst = 0
        for proc in procs:
            proc.join()
            code = proc.exitcode
            if code is None:
                code = 1
            if stopping and code == -signal.SIGTERM:
                continue  # we asked for that death; not a failure
            worst = max(worst, abs(code))
        return worst
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
