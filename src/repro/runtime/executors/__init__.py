"""Executor backends: pluggable answers to *where chunks run*.

The runners own determinism (seed spawning, chunk boundaries, in-order
folds) and resilience policy (retries, checkpoints); backends own
compute placement.  See :mod:`~repro.runtime.executors.base` for the
protocol, :mod:`~repro.runtime.executors.local` for the single-host
pool, and :mod:`~repro.runtime.executors.tcp` /
:mod:`~repro.runtime.executors.worker` for the multi-host work queue.
"""

from .base import (
    BackendEvent,
    BackendUnavailable,
    ChunkExecutor,
    ChunkFailure,
    ChunkFuture,
    ChunkJob,
    ChunkPayload,
    ChunkResult,
    make_backend,
    parse_backend_spec,
    run_chunk,
    worker_label,
)
from .local import LocalProcessBackend
from .tcp import TcpWorkQueueBackend
from .worker import run_worker, run_worker_fleet

__all__ = [
    "BackendEvent",
    "BackendUnavailable",
    "ChunkExecutor",
    "ChunkFailure",
    "ChunkFuture",
    "ChunkJob",
    "ChunkPayload",
    "ChunkResult",
    "LocalProcessBackend",
    "TcpWorkQueueBackend",
    "make_backend",
    "parse_backend_spec",
    "run_chunk",
    "run_worker",
    "run_worker_fleet",
    "worker_label",
]
