"""The chunk-executor protocol: where trial chunks actually run.

The trial runners (:class:`~repro.runtime.TrialRunner`,
:class:`~repro.runtime.ResilientRunner`) decide *what* runs -- chunk
boundaries, retry budgets, checkpointing, the deterministic fold -- while
a :class:`ChunkExecutor` backend decides *where*: a local process pool
(:class:`~repro.runtime.executors.LocalProcessBackend`) or a fleet of
remote hosts pulling work over TCP
(:class:`~repro.runtime.executors.TcpWorkQueueBackend`).  The contract
every backend must honor is the determinism invariant the runners were
built on: a chunk is a pure function of ``(fn, lo, children, args)``, so
*which* backend (and which host) executed it can never change a result --
only wall-clock facts and operational telemetry.

This module holds the pieces shared by every backend:

* :func:`run_chunk` -- the chunk execution primitive (runs in a pool
  worker, a remote worker process, or in-process).
* :class:`ChunkPayload` / :class:`ChunkFailure` -- its result types,
  shipped back as data so they survive any transport (pipe, socket,
  checkpoint journal).
* :class:`ChunkJob` -- one dispatchable unit of work.
* :class:`ChunkExecutor` -- the backend protocol.
* :class:`BackendEvent` -- operational facts (steals, worker deaths)
  backends surface for the runner's ops telemetry.
* :func:`parse_backend_spec` / :func:`make_backend` -- the CLI-facing
  backend factory (``local`` | ``tcp://HOST:PORT``).
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
import traceback
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import Future
from multiprocessing.context import BaseContext
from typing import TYPE_CHECKING, Any, Protocol, Union

import numpy as np

from repro.obs import MetricsRegistry, TraceRecorder

if TYPE_CHECKING:
    from .tcp import TcpWorkQueueBackend

__all__ = [
    "BackendEvent",
    "BackendUnavailable",
    "ChunkExecutor",
    "ChunkFailure",
    "ChunkFuture",
    "ChunkJob",
    "ChunkPayload",
    "ChunkResult",
    "make_backend",
    "parse_backend_spec",
    "run_chunk",
    "worker_label",
]


class BackendUnavailable(RuntimeError):
    """An executor backend cannot be brought up (or has gone away).

    Subclasses ``RuntimeError`` deliberately: the resilient runner's
    worker-crash handling already treats ``RuntimeError`` from a chunk
    future as a retryable infrastructure failure, so backend loss flows
    through the same retry/teardown/serial-fallback machinery.
    """


@dataclasses.dataclass(frozen=True)
class ChunkFailure:
    """Worker-side trial failure, shipped back as data (always picklable)."""

    index: int
    message: str
    worker_traceback: str


@dataclasses.dataclass(frozen=True)
class ChunkPayload:
    """One chunk's results plus its telemetry, shipped back from a worker.

    ``batch`` is ``(batched, demoted)`` trial counts from the batch
    engine (``(0, 0)`` for a scalar chunk).  ``host`` is the
    :func:`worker_label` of wherever the chunk executed -- purely
    operational attribution for the runner's attempt spans, never part
    of result artifacts.  Payloads unpickled from journals written
    before either field exist lack the attribute entirely; readers go
    through ``getattr(payload, "batch", (0, 0))`` /
    ``getattr(payload, "host", None)``.
    """

    values: list[Any]
    seconds: float
    metrics: MetricsRegistry | None
    records: list[dict[str, Any]]
    batch: tuple[int, int] = (0, 0)
    host: str | None = None


_worker_label_cache: tuple[int, str] | None = None


def worker_label() -> str:
    """``hostname/pid`` of this process -- the chunk attribution label.

    Cached per pid (a forked pool worker inherits the parent's module
    globals, so the cache is keyed on ``os.getpid()``).
    """
    global _worker_label_cache
    pid = os.getpid()
    if _worker_label_cache is None or _worker_label_cache[0] != pid:
        _worker_label_cache = (pid, f"{socket.gethostname()}/{pid}")
    return _worker_label_cache[1]


#: What a dispatched chunk resolves to: results or an in-trial failure.
ChunkResult = Union[ChunkPayload, ChunkFailure]
#: The future type every backend's ``submit`` returns.
ChunkFuture = Future[ChunkResult]


def run_chunk(
    fn: Callable[..., Any],
    start: int,
    children: Sequence[np.random.SeedSequence],
    args: tuple[Any, ...],
    collect_metrics: bool = False,
    collect_trace: bool = False,
    batch: str = "off",
) -> ChunkResult:
    """Run one contiguous chunk of trials; runs wherever the backend puts it.

    Trial ``start + i`` receives ``children[i]`` as its private seed
    stream, so the result is a pure function of the arguments -- identical
    on a pool worker, a remote TCP worker, or in-process.

    ``batch`` (``auto``/``on``/``off``) selects the vectorized batch
    engine for trial functions that have one registered
    (:mod:`repro.sim.batch`).  The batch attempt is all-or-nothing: on
    any error its partial state is discarded and the chunk re-runs
    through this scalar loop, so failure semantics (a
    :class:`ChunkFailure` naming the exact trial) are unchanged.
    """
    began = time.perf_counter()
    if batch != "off":
        batched = _run_chunk_batched(
            fn, start, children, args, collect_metrics, collect_trace,
            batch, began,
        )
        if batched is not None:
            return batched
    metrics = MetricsRegistry() if collect_metrics else None
    records: list[dict[str, Any]] = []
    out: list[Any] = []
    for offset, child in enumerate(children):
        trace = TraceRecorder(trial=start + offset) if collect_trace else None
        ctx = _trial_context(start + offset, child, metrics, trace)
        try:
            out.append(fn(ctx, *args))
        except Exception as exc:  # surfaced as TrialExecutionError upstream
            return ChunkFailure(
                index=ctx.index,
                message=f"{type(exc).__name__}: {exc}",
                worker_traceback=traceback.format_exc(),
            )
        if trace is not None:
            records.extend(trace.records)
    return ChunkPayload(
        values=out,
        seconds=time.perf_counter() - began,
        metrics=metrics,
        records=records,
        host=worker_label(),
    )


def _run_chunk_batched(
    fn: Callable[..., Any],
    start: int,
    children: Sequence[np.random.SeedSequence],
    args: tuple[Any, ...],
    collect_metrics: bool,
    collect_trace: bool,
    mode: str,
    began: float,
) -> ChunkPayload | None:
    """One all-or-nothing batch attempt at a chunk; ``None`` falls back.

    The attempt works on its own registry and recorders, so a failed
    attempt leaves nothing behind -- the scalar loop then recomputes the
    chunk from the same seed streams, which re-derives every draw.
    """
    try:
        from repro.sim.batch import batch_impl_for, resolve_batch_mode

        if not resolve_batch_mode(mode, fn, len(children)):
            return None
        impl = batch_impl_for(fn)
        assert impl is not None  # resolve_batch_mode checked the registry
        metrics = MetricsRegistry() if collect_metrics else None
        traces = [
            TraceRecorder(trial=start + offset) if collect_trace else None
            for offset in range(len(children))
        ]
        contexts = [
            _trial_context(start + offset, child, metrics, traces[offset])
            for offset, child in enumerate(children)
        ]
        values, stats = impl(fn, contexts, args)
        if len(values) != len(children):
            return None
        records: list[dict[str, Any]] = []
        for trace in traces:
            if trace is not None:
                records.extend(trace.records)
        return ChunkPayload(
            values=values,
            seconds=time.perf_counter() - began,
            metrics=metrics,
            records=records,
            batch=(stats.batched, stats.demoted),
            host=worker_label(),
        )
    except Exception:
        return None  # any batch-path error: discard and go scalar


def _trial_context(
    index: int,
    child: np.random.SeedSequence,
    metrics: MetricsRegistry | None,
    trace: TraceRecorder | None,
) -> Any:
    # Imported late: runner.py imports this module, and TrialContext
    # lives next to the runner.
    from ..runner import TrialContext

    return TrialContext(
        index=index, seed_sequence=child, metrics=metrics, trace=trace
    )


@dataclasses.dataclass(frozen=True)
class ChunkJob:
    """One dispatchable unit: a contiguous range of trials of a sweep.

    ``index`` is the chunk ordinal within the sweep (stable across
    retries); ``[lo, hi)`` the trial range; ``children`` the spawned
    per-trial seed streams; ``collect`` the ``(metrics, trace)``
    telemetry flags.  ``trace_id`` is the sweep's deterministic span
    trace id (see :mod:`repro.obs.spans`) -- observability context only,
    propagated in the TCP lease frames so a wire capture can be joined
    with the coordinator's ops trace; it never influences execution.
    Everything here must be picklable: the local backend ships jobs over
    a pipe, the TCP backend over a socket.
    """

    index: int
    lo: int
    hi: int
    fn: Callable[..., Any]
    children: tuple[np.random.SeedSequence, ...]
    args: tuple[Any, ...]
    collect: tuple[bool, bool]
    batch: str = "off"
    trace_id: str | None = None

    def run(self) -> ChunkResult:
        """Execute the job in the calling process (fallback/serial path)."""
        return run_chunk(
            self.fn, self.lo, self.children, self.args, *self.collect,
            batch=self.batch,
        )


@dataclasses.dataclass(frozen=True)
class BackendEvent:
    """One operational fact a backend surfaces (steal, worker death, ...).

    ``kind`` is one of ``"steal"``, ``"worker_death"``, ``"duplicate"``,
    ``"fallback"``, ``"worker_join"``; ``data`` holds JSON-compatible
    scalars only, so the runner can fold events straight into its
    operational trace.  Events never carry results -- results travel
    exclusively through chunk futures, which is what keeps the
    at-most-once aggregation contract auditable.
    """

    kind: str
    data: Mapping[str, Any]


class ChunkExecutor(Protocol):
    """Where chunks run.  Implementations: local pool, TCP work queue.

    Lifecycle: ``start()`` brings the backend up (idempotent; raises
    :class:`BackendUnavailable` when the environment cannot support it),
    ``submit()`` dispatches a job and returns its future, ``rebuild()``
    replaces wedged compute after a charged failure, ``reset()``
    abandons all outstanding work (abnormal sweep exit), ``shutdown()``
    releases everything.  ``drain_events()`` hands the runner the
    operational facts (steals, worker deaths) accumulated since the
    last drain; ``capacity()`` is how many chunks the runner should
    keep in flight.
    """

    @property
    def name(self) -> str:
        """Short backend identifier (``"local"``, ``"tcp"``) for telemetry."""
        ...

    def start(self) -> None: ...

    def submit(self, job: ChunkJob) -> ChunkFuture: ...

    def capacity(self) -> int: ...

    def drain_events(self) -> list[BackendEvent]: ...

    def rebuild(self) -> bool: ...

    def reset(self) -> None: ...

    def shutdown(self, wait: bool = True) -> None: ...


# ----------------------------------------------------------------------
# Backend factory (the CLI's --backend flag)
# ----------------------------------------------------------------------
def parse_backend_spec(spec: str) -> tuple[str, tuple[str, int] | None]:
    """Parse ``local`` or ``tcp://HOST:PORT`` into ``(kind, address)``.

    Raises ``ValueError`` with a one-line diagnostic on anything else,
    so the CLI surfaces a clear error instead of silently diverging.
    """
    text = spec.strip()
    if text == "local":
        return ("local", None)
    for prefix in ("tcp://", "tcp:"):
        if text.startswith(prefix):
            host, port = _parse_hostport(text[len(prefix):], spec)
            return ("tcp", (host, port))
    raise ValueError(
        f"unknown executor backend {spec!r}; expected 'local' or "
        "'tcp://HOST:PORT'"
    )


def _parse_hostport(text: str, spec: str) -> tuple[str, int]:
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"backend spec {spec!r} needs HOST:PORT (e.g. tcp://127.0.0.1:9123)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"backend spec {spec!r} has a non-numeric port {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"backend spec {spec!r} port out of range: {port}")
    return host, port


def make_backend(
    spec: str,
    *,
    workers: int = 1,
    mp_context: BaseContext | None = None,
    lease_timeout: float | None = None,
) -> "TcpWorkQueueBackend | None":
    """Build the executor backend a ``--backend`` spec names.

    ``"local"`` returns ``None`` -- the runners' built-in local path,
    which preserves the ``workers=1`` never-touches-multiprocessing
    contract.  ``"tcp://HOST:PORT"`` returns a coordinator that binds
    that address; ``workers`` sizes its local fallback pool (used when
    no remote worker connects).
    """
    kind, address = parse_backend_spec(spec)
    if kind == "local":
        return None
    from .tcp import TcpWorkQueueBackend

    assert address is not None
    host, port = address
    kwargs: dict[str, Any] = {}
    if lease_timeout is not None:
        kwargs["lease_timeout"] = lease_timeout
    return TcpWorkQueueBackend(
        host, port, fallback_workers=workers, mp_context=mp_context, **kwargs
    )
