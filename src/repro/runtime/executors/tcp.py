"""Pull-based TCP work queue: a chunk coordinator for multi-host campaigns.

The coordinator (:class:`TcpWorkQueueBackend`) listens on a TCP address;
worker processes started with ``mlec-sim workers --connect HOST:PORT``
(see :mod:`~repro.runtime.executors.worker`) connect, announce
themselves, and *pull* chunk leases one at a time.  Pull scheduling is
what makes host loss survivable: the coordinator owns the work queue,
so a dead worker forfeits only its current lease, never a partition of
the sweep.

Robustness machinery, in the order it fires:

* **Death by disconnect** -- a SIGKILLed worker's socket closes; the
  reader thread reaps it immediately and requeues its lease.
* **Death by silence** -- workers heartbeat every few seconds (even
  mid-chunk, from a sidecar thread); a worker silent for
  ``heartbeat_timeout`` is declared dead and its lease requeued.  This
  is the network-partition path: the TCP connection may look alive
  long after the far host stopped answering.
* **Straggler stealing** -- a lease older than ``lease_timeout`` is
  *speculatively* re-queued for another worker (the original keeps
  running).  First result wins; the loser's duplicate completion is
  discarded at the task table, so aggregation stays at-most-once and
  the loser is never charged a retry.
* **Graceful degradation** -- if no worker has connected within
  ``connect_grace`` seconds (or all of them died), queued chunks are
  handed to an embedded local process pool sized by
  ``fallback_workers``, so a campaign never deadlocks on an empty
  fleet.

Wire format: length-prefixed (4-byte big-endian) JSON frames.  Chunk
jobs and results are pickled and base64-wrapped inside frames -- the
same encoding the checkpoint journal uses.

.. warning::
   Leases carry **pickled callables**: a worker executes whatever the
   coordinator sends, and the coordinator unpickles whatever a worker
   returns.  Run coordinator and workers only on hosts and networks you
   trust, exactly like the checkpoint-journal trust model.  The default
   bind address is loopback.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import pickle
import socket
import struct
import threading
import time
from concurrent.futures import Future, InvalidStateError
from multiprocessing.context import BaseContext
from typing import Any

from .base import (
    BackendEvent,
    BackendUnavailable,
    ChunkFailure,
    ChunkFuture,
    ChunkJob,
    ChunkPayload,
)
from .local import LocalProcessBackend

__all__ = [
    "MAX_FRAME_BYTES",
    "TcpWorkQueueBackend",
    "decode_blob",
    "encode_blob",
    "recv_frame",
    "send_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's JSON body; a corrupt length prefix must not
#: make the receiver try to allocate gigabytes.
MAX_FRAME_BYTES = 512 * 1024 * 1024


# ----------------------------------------------------------------------
# Wire helpers (shared by coordinator and worker client)
# ----------------------------------------------------------------------
def encode_blob(obj: Any) -> str:
    """Pickle + base64 an object for embedding in a JSON frame."""
    return base64.b64encode(pickle.dumps(obj, protocol=4)).decode("ascii")


def decode_blob(text: str) -> Any:
    """Inverse of :func:`encode_blob`.  Unpickles: trusted peers only."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def send_frame(
    sock: socket.socket,
    obj: dict[str, Any],
    lock: threading.Lock | None = None,
) -> None:
    """Write one length-prefixed JSON frame (atomically, if a lock is given)."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    data = _HEADER.pack(len(body)) + body
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on EOF/timeout/reset (peer is gone)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    obj = json.loads(body.decode("utf-8"))
    if not isinstance(obj, dict):
        raise ValueError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        try:
            piece = sock.recv(n - len(buf))
        except OSError:
            return None
        if not piece:
            return None
        buf += piece
    return bytes(buf)


# ----------------------------------------------------------------------
# Coordinator bookkeeping
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Lease:
    """One worker currently (believed to be) executing a task."""

    worker: str
    started: float  # monotonic
    stolen: bool = False  # a speculative copy has been queued for it


@dataclasses.dataclass
class _Task:
    """Coordinator-side record of one submitted chunk job."""

    job: ChunkJob
    future: ChunkFuture
    leases: dict[str, _Lease] = dataclasses.field(default_factory=dict)
    queued: int = 1  # entries currently sitting in the dispatch queue
    steals: int = 0
    fallback: bool = False  # running on the embedded local pool
    done: bool = False


class _WorkerConn:
    """One connected worker: a socket, a liveness clock, and one lease slot."""

    __slots__ = ("id", "conn", "send_lock", "last_seen", "task", "dead")

    def __init__(self, worker_id: str, conn: socket.socket) -> None:
        self.id = worker_id
        self.conn = conn
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.task: int | None = None
        self.dead = False


class TcpWorkQueueBackend:
    """A :class:`ChunkExecutor` that leases chunks to remote TCP workers.

    Results are bitwise-identical to the local backend by construction:
    the coordinator resolves each chunk future exactly once (first
    result wins) and the runner folds chunks in order, so host count,
    steals, and worker deaths can only change wall-clock time and
    operational telemetry -- never an artifact byte.
    """

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        fallback_workers: int = 1,
        mp_context: BaseContext | None = None,
        lease_timeout: float = 300.0,
        heartbeat_timeout: float = 15.0,
        connect_grace: float = 10.0,
        poll_interval: float = 0.05,
    ) -> None:
        if fallback_workers < 1:
            raise ValueError(f"fallback_workers must be >= 1, got {fallback_workers}")
        for label, value in (
            ("lease_timeout", lease_timeout),
            ("heartbeat_timeout", heartbeat_timeout),
            ("poll_interval", poll_interval),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be > 0, got {value}")
        if connect_grace < 0:
            raise ValueError(f"connect_grace must be >= 0, got {connect_grace}")
        self._host = host
        self._port = port
        self._fallback_workers = fallback_workers
        self._mp_context = mp_context
        self._lease_timeout = lease_timeout
        self._heartbeat_timeout = heartbeat_timeout
        self._connect_grace = connect_grace
        self._poll_interval = poll_interval
        self._io_timeout = max(2.0 * heartbeat_timeout, 30.0)

        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._tasks: dict[int, _Task] = {}
        self._queue: list[int] = []
        self._workers: dict[str, _WorkerConn] = {}
        self._events: list[BackendEvent] = []
        self._next_task_id = 0
        self._server: socket.socket | None = None
        self._bound: tuple[str, int] | None = None
        self._threads: list[threading.Thread] = []
        self._closed = False
        self._started_at = 0.0
        self._ever_connected = False
        self._fallback: LocalProcessBackend | None = None
        self._fallback_failed = False
        self._fallback_announced = False

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; resolves ``port=0`` to the real port."""
        if self._bound is None:
            raise BackendUnavailable("backend not started; no bound address")
        return self._bound

    def start(self) -> None:
        with self._lock:
            if self._closed:
                raise BackendUnavailable("backend is shut down")
            if self._server is not None:
                return
            try:
                server = socket.create_server((self._host, self._port), backlog=64)
            except OSError as exc:
                raise BackendUnavailable(
                    f"cannot listen on {self._host}:{self._port} ({exc})"
                ) from exc
            self._server = server
            self._bound = server.getsockname()[:2]
            self._started_at = time.monotonic()
            accept = threading.Thread(
                target=self._accept_loop, name="mlec-accept", daemon=True
            )
            dispatch = threading.Thread(
                target=self._dispatch_loop, name="mlec-dispatch", daemon=True
            )
            self._threads += [accept, dispatch]
        accept.start()
        dispatch.start()

    def submit(self, job: ChunkJob) -> ChunkFuture:
        future: ChunkFuture = Future()
        with self._wake:
            if self._closed:
                raise BackendUnavailable("backend is shut down")
            task_id = self._next_task_id
            self._next_task_id += 1
            self._tasks[task_id] = _Task(job=job, future=future)
            self._queue.append(task_id)
            self._wake.notify_all()
        return future

    def capacity(self) -> int:
        with self._lock:
            alive = sum(1 for w in self._workers.values() if not w.dead)
            return alive if alive else self._fallback_workers

    def drain_events(self) -> list[BackendEvent]:
        with self._lock:
            events, self._events = self._events, []
            return events

    def rebuild(self) -> bool:
        """Abandon outstanding work after a charged failure; keep listening.

        The runner requeues its in-flight chunks itself and resubmits
        them as fresh tasks, so everything still pending here is stale.
        Returns ``False`` only when the backend has no way to execute
        anything (no live workers *and* the fallback pool cannot spawn),
        which tells the runner to go serial in-process.
        """
        with self._wake:
            self._abandon_tasks_locked()
            if self._fallback is not None:
                self._fallback.reset()
            self._fallback_failed = False
            alive = any(not w.dead for w in self._workers.values())
            self._wake.notify_all()
        if alive:
            return True
        fallback = self._ensure_fallback()
        return fallback is not None

    def reset(self) -> None:
        """Abandon all outstanding work (abnormal sweep exit)."""
        with self._wake:
            self._abandon_tasks_locked()
            if self._fallback is not None:
                self._fallback.reset()
            self._wake.notify_all()

    def shutdown(self, wait: bool = True) -> None:
        with self._wake:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._abandon_tasks_locked()
            self._wake.notify_all()
        server = self._server
        if server is not None:
            # shutdown() before close(): close() alone does not abort the
            # accept() blocked in the accept-loop thread (the in-flight
            # syscall keeps the listening socket alive on Linux), so a
            # worker that reconnects the instant it sees our shutdown
            # frame would still complete a handshake against the corpse.
            try:
                server.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                server.close()
            except OSError:
                pass
        for worker in workers:
            try:
                send_frame(worker.conn, {"t": "shutdown"}, worker.send_lock)
            except (OSError, ValueError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        if self._fallback is not None:
            self._fallback.shutdown(wait=wait)
        if wait:
            for thread in self._threads:
                thread.join(timeout=2.0)

    def __enter__(self) -> "TcpWorkQueueBackend":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- coordinator internals ----------------------------------------
    def _abandon_tasks_locked(self) -> None:
        for task in self._tasks.values():
            if not task.done:
                task.done = True
                task.leases.clear()
                task.future.cancel()
        self._queue.clear()

    def _accept_loop(self) -> None:
        server = self._server
        assert server is not None
        while True:
            try:
                conn, addr = server.accept()
            except OSError:
                return
            if self._closed:
                try:
                    conn.close()
                except OSError:
                    pass
                return
            reader = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"mlec-worker-{addr[0]}:{addr[1]}",
                daemon=True,
            )
            with self._lock:
                self._threads.append(reader)
            reader.start()

    def _serve_connection(self, conn: socket.socket, addr: tuple[str, int]) -> None:
        conn.settimeout(self._io_timeout)
        try:
            hello = recv_frame(conn)
        except ValueError:
            hello = None
        if hello is None or hello.get("t") != "hello":
            try:
                conn.close()
            except OSError:
                pass
            return
        label = str(hello.get("worker", "worker"))
        worker_id = f"{label}@{addr[0]}:{addr[1]}"
        worker = _WorkerConn(worker_id, conn)
        with self._wake:
            if self._closed:
                conn.close()
                return
            self._workers[worker_id] = worker
            self._ever_connected = True
            self._events.append(BackendEvent("worker_join", {"worker": worker_id}))
            self._wake.notify_all()
        try:
            self._reader_loop(worker)
        finally:
            with self._wake:
                if not worker.dead:
                    self._bury_locked(worker, "connection lost")
                self._wake.notify_all()

    def _reader_loop(self, worker: _WorkerConn) -> None:
        while True:
            try:
                frame = recv_frame(worker.conn)
            except ValueError:
                return
            if frame is None:
                return
            kind = frame.get("t")
            if kind == "heartbeat":
                with self._lock:
                    worker.last_seen = time.monotonic()
                continue
            if kind != "result":
                continue
            try:
                task_id = int(frame["task"])
                payload = decode_blob(str(frame["payload"]))
            except (KeyError, TypeError, ValueError, pickle.UnpicklingError):
                return
            if not isinstance(payload, (ChunkPayload, ChunkFailure)):
                return
            with self._wake:
                worker.last_seen = time.monotonic()
                if worker.task == task_id:
                    worker.task = None
                task = self._tasks.get(task_id)
                if task is None or task.done:
                    self._events.append(
                        BackendEvent(
                            "duplicate", {"task": task_id, "worker": worker.id}
                        )
                    )
                else:
                    task.leases.pop(worker.id, None)
                    self._complete_locked(task, payload)
                self._wake.notify_all()

    def _complete_locked(self, task: _Task, result: "ChunkPayload | ChunkFailure") -> None:
        task.done = True
        task.leases.clear()
        try:
            task.future.set_result(result)
        except InvalidStateError:
            pass  # cancelled by the runner; result discarded

    def _bury_locked(self, worker: _WorkerConn, reason: str) -> None:
        """Declare a worker dead and requeue any lease only it was running."""
        worker.dead = True
        self._workers.pop(worker.id, None)
        try:
            worker.conn.close()
        except OSError:
            pass
        requeued = 0
        task_id = worker.task
        worker.task = None
        if task_id is not None:
            task = self._tasks.get(task_id)
            if task is not None and not task.done:
                task.leases.pop(worker.id, None)
                if not task.leases and task.queued == 0 and not task.fallback:
                    task.queued += 1
                    self._queue.append(task_id)
                    requeued += 1
        self._events.append(
            BackendEvent(
                "worker_death",
                {"worker": worker.id, "reason": reason, "requeued": requeued},
            )
        )

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                if self._closed:
                    return
                now = time.monotonic()
                self._reap_silent_locked(now)
                self._steal_expired_locked(now)
                self._assign_locked(now)
                use_fallback = self._should_use_fallback_locked(now)
                self._wake.wait(self._poll_interval)
            if use_fallback:
                self._drain_to_fallback()

    def _reap_silent_locked(self, now: float) -> None:
        for worker in list(self._workers.values()):
            if not worker.dead and now - worker.last_seen > self._heartbeat_timeout:
                self._bury_locked(worker, "missed heartbeats")

    def _steal_expired_locked(self, now: float) -> None:
        for task_id, task in self._tasks.items():
            if task.done or task.fallback or task.queued > 0 or not task.leases:
                continue
            leases = list(task.leases.values())
            if any(now - lease.started <= self._lease_timeout for lease in leases):
                continue
            if all(lease.stolen for lease in leases):
                continue
            oldest = min(leases, key=lambda lease: lease.started)
            for lease in leases:
                lease.stolen = True
            task.steals += 1
            task.queued += 1
            self._queue.append(task_id)
            self._events.append(
                BackendEvent(
                    "steal",
                    {
                        "chunk": task.job.index,
                        "lo": task.job.lo,
                        "hi": task.job.hi,
                        "owner": oldest.worker,
                        "age_s": round(now - oldest.started, 3),
                    },
                )
            )

    def _assign_locked(self, now: float) -> None:
        idle = [
            w for w in self._workers.values() if not w.dead and w.task is None
        ]
        while self._queue and idle:
            task_id = self._queue.pop(0)
            task = self._tasks.get(task_id)
            if task is None:
                continue
            task.queued -= 1
            if task.done or task.fallback or task.future.cancelled():
                continue
            # Never lease a task back to a worker already running it.
            worker = next((w for w in idle if w.id not in task.leases), None)
            if worker is None:
                task.queued += 1
                self._queue.append(task_id)
                break
            idle.remove(worker)
            job = task.job
            frame = {
                "t": "lease",
                "task": task_id,
                "lo": job.lo,
                "hi": job.hi,
                # Span-trace context (observability only): workers echo it
                # in their result frames, so a wire capture can be joined
                # with the coordinator's ops trace.  getattr covers jobs
                # built by pre-span callers.
                "trace": getattr(job, "trace_id", None),
                "job": encode_blob(
                    (job.fn, job.children, job.args, job.collect, job.batch)
                ),
            }
            try:
                send_frame(worker.conn, frame, worker.send_lock)
            except (OSError, ValueError):
                worker.task = task_id  # so the bury path requeues this lease
                task.leases[worker.id] = _Lease(worker=worker.id, started=now)
                self._bury_locked(worker, "send failed")
                continue
            worker.task = task_id
            task.leases[worker.id] = _Lease(worker=worker.id, started=now)

    def _should_use_fallback_locked(self, now: float) -> bool:
        if not self._queue:
            return False
        if any(not w.dead for w in self._workers.values()):
            return False
        if not self._ever_connected and now - self._started_at < self._connect_grace:
            return False
        return True

    def _ensure_fallback(self) -> LocalProcessBackend | None:
        """Bring up the embedded local pool; never called under the lock."""
        with self._lock:
            fallback = self._fallback
            failed = self._fallback_failed
        if failed:
            return None
        if fallback is None:
            fallback = LocalProcessBackend(
                self._fallback_workers, mp_context=self._mp_context
            )
            with self._lock:
                self._fallback = fallback
        try:
            fallback.start()
        except BackendUnavailable:
            with self._lock:
                self._fallback_failed = True
            return None
        return fallback

    def _drain_to_fallback(self) -> None:
        """Hand every queued task to the embedded local pool.

        Tasks are claimed under the lock but submitted to the pool
        outside it: a tiny chunk can finish before ``add_done_callback``
        registers, in which case concurrent.futures runs
        ``_complete_from_fallback`` inline on *this* thread -- and that
        callback needs the (non-reentrant) lock.  Submitting under the
        lock therefore self-deadlocks the dispatch loop and, with it,
        every thread that touches the backend.
        """
        fallback = self._ensure_fallback()
        moved: list[tuple[int, ChunkJob]] = []
        with self._wake:
            if fallback is None:
                # Nothing can run: fail queued futures so the runner's
                # retry machinery (and ultimately its serial path) takes over.
                for task_id in self._queue:
                    task = self._tasks.get(task_id)
                    if task is None or task.done:
                        continue
                    task.queued -= 1
                    task.done = True
                    try:
                        task.future.set_exception(
                            BackendUnavailable(
                                "no workers connected and the local fallback "
                                "pool is unavailable"
                            )
                        )
                    except InvalidStateError:
                        pass
                self._queue.clear()
                return
            for task_id in list(self._queue):
                task = self._tasks.get(task_id)
                if task is None or task.done or task.fallback:
                    continue
                if task.future.cancelled():
                    task.done = True
                    continue
                task.queued -= 1
                task.fallback = True
                moved.append((task_id, task.job))
            self._queue.clear()
            if moved and not self._fallback_announced:
                self._fallback_announced = True
                self._events.append(
                    BackendEvent(
                        "fallback",
                        {"moved": len(moved), "workers": self._fallback_workers},
                    )
                )
            self._wake.notify_all()
        for task_id, job in moved:
            try:
                inner = fallback.submit(job)
            except Exception as exc:
                # Pool torn down under us (reset/shutdown racing the
                # drain): fail the future so the runner's retry
                # machinery takes over instead of killing this thread.
                with self._wake:
                    task = self._tasks.get(task_id)
                    if task is None or task.done:
                        continue
                    task.done = True
                    try:
                        task.future.set_exception(
                            BackendUnavailable(
                                f"fallback pool rejected chunk ({exc!r})"
                            )
                        )
                    except InvalidStateError:
                        pass
                    self._wake.notify_all()
                continue
            inner.add_done_callback(
                lambda f, tid=task_id: self._complete_from_fallback(tid, f)
            )

    def _complete_from_fallback(self, task_id: int, inner: ChunkFuture) -> None:
        with self._wake:
            task = self._tasks.get(task_id)
            if task is None or task.done:
                return
            task.fallback = False
            if inner.cancelled():
                return
            exc = inner.exception()
            if exc is not None:
                task.done = True
                try:
                    task.future.set_exception(exc)
                except InvalidStateError:
                    pass
            else:
                self._complete_locked(task, inner.result())
            self._wake.notify_all()
