"""Parallel Monte Carlo trial execution (the sweep engine behind §3).

Every headline figure of the paper is a Monte Carlo sweep -- burst PDL
grids, accelerated pool-year campaigns, chaos scenarios -- and all of them
share one shape: *N independent trials, each consuming its own random
stream, reduced to a small aggregate*.  :class:`TrialRunner` is that shape
as infrastructure:

* **Deterministic for any worker count.**  Trial ``i`` always receives the
  ``i``-th child of ``numpy.random.SeedSequence(seed).spawn(trials)``, and
  aggregation always folds results in trial order, so ``workers=1`` and
  ``workers=16`` produce bitwise-identical results for the same seed.
* **Chunked dispatch.**  Trials are grouped into contiguous chunks so the
  per-task IPC cost amortizes over many cheap trials; chunk results are
  consumed *in index order* (out-of-order completions are buffered), which
  keeps the streaming fold deterministic.
* **Graceful degradation.**  ``workers=1`` never touches multiprocessing;
  if the process pool cannot be created at all (sandboxes, missing
  semaphores), the runner warns once and falls back to in-process
  execution with identical results.
* **Pluggable placement.**  *Where* chunks execute is delegated to a
  :class:`~repro.runtime.executors.ChunkExecutor` backend -- the default
  local process pool or a multi-host TCP work queue (``backend=``) --
  and because chunk results are pure data folded in trial order, the
  backend choice can never change a result byte.
* **Failure surfacing.**  A trial that raises, a worker process that dies,
  or a sweep that exceeds ``timeout`` all raise
  :class:`TrialExecutionError` naming the trial range involved (with the
  worker-side traceback when there is one) instead of hanging or
  returning partial data.

Trial functions receive a :class:`TrialContext` (trial index + spawned
``SeedSequence``, plus optional per-trial telemetry sinks) followed by the
``args`` tuple, and must be defined at module top level so the process
pool can pickle them.

**Telemetry.**  Passing ``metrics=``/``trace=`` to :meth:`TrialRunner.run`
or :meth:`TrialRunner.map` hands every trial a private
:class:`~repro.obs.MetricsRegistry` slice and
:class:`~repro.obs.TraceRecorder` via its context; workers ship these back
with the chunk results and the parent folds them *in trial order*, so the
merged metrics snapshot and the concatenated trace stream are identical
for any worker count.  Wall-clock facts (which are *not* deterministic)
are kept apart in :attr:`TrialRunner.last_telemetry`.
"""

from __future__ import annotations

import dataclasses
import math
import time
import warnings
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.context import BaseContext
from typing import Any

import numpy as np

from repro.obs import MetricsRegistry, SpanTracer, TraceRecorder
from repro.obs.progress import ProgressTracker

from .executors.base import (
    BackendUnavailable,
    ChunkExecutor,
    ChunkFailure,
    ChunkJob,
    ChunkPayload,
    run_chunk,
)
from .executors.local import LocalProcessBackend

__all__ = [
    "TrialContext",
    "TrialAggregate",
    "TrialExecutionError",
    "TrialRunner",
    "RunTelemetry",
]


class TrialExecutionError(RuntimeError):
    """A Monte Carlo trial (or its worker) failed or timed out.

    The error carries whatever the sweep completed before dying so
    callers can salvage it instead of discarding hours of work:

    * :attr:`partial_values` -- results of every trial absorbed before
      the failure, in trial order (``None`` when nothing was salvaged).
      Under :class:`TrialRunner` this is a contiguous prefix; under
      :class:`~repro.runtime.resilience.ResilientRunner` it may contain
      gaps where a chunk was still outstanding.
    * :attr:`completed_trials` -- how many trials those values cover.

    :meth:`partial_aggregate` folds scalar salvage into a
    :class:`TrialAggregate` (the same reduction :meth:`TrialRunner.run`
    would have applied).
    """

    def __init__(
        self,
        message: str,
        *,
        partial_values: Sequence[Any] | None = None,
        completed_trials: int | None = None,
    ) -> None:
        super().__init__(message)
        self.partial_values: list[Any] | None = (
            list(partial_values) if partial_values is not None else None
        )
        if completed_trials is None:
            completed_trials = (
                len(self.partial_values) if self.partial_values is not None else 0
            )
        self.completed_trials = int(completed_trials)

    def partial_aggregate(self) -> TrialAggregate | None:
        """Salvaged scalar outcomes as a TrialAggregate, if foldable."""
        if not self.partial_values:
            return None
        agg = TrialAggregate()
        try:
            for value in self.partial_values:
                agg.add(float(value))
        except (TypeError, ValueError):
            return None  # structured map() payloads have no scalar fold
        return agg


@dataclasses.dataclass(frozen=True)
class TrialContext:
    """What one trial gets to work with: its index and its own stream.

    ``seed_sequence`` is the ``index``-th spawned child of the sweep's root
    ``SeedSequence`` -- statistically independent of every other trial's
    stream regardless of which worker runs it.  Trial functions that need a
    legacy integer seed (e.g. to feed an event-driven simulator's ``run``)
    may use ``index`` instead; both choices are deterministic.
    """

    index: int
    seed_sequence: np.random.SeedSequence
    #: Registry for this trial's worker chunk, or ``None`` when the sweep
    #: was started without ``metrics=``.  Counters/histograms sum and
    #: gauges keep the last written value, so chunk boundaries are
    #: invisible in the merged snapshot.
    metrics: MetricsRegistry | None = None
    #: Per-trial recorder (``trial`` preset to :attr:`index`), or ``None``
    #: when the sweep was started without ``trace=``.
    trace: TraceRecorder | None = None

    def rng(self) -> np.random.Generator:
        """A fresh generator on this trial's private stream."""
        return np.random.default_rng(self.seed_sequence)


@dataclasses.dataclass
class TrialAggregate:
    """Streaming reduction of scalar trial outcomes: mean, CI, loss counts.

    ``losses`` counts trials with a strictly positive outcome -- for PDL-
    style indicators (0 = survived, >0 = some loss probability) this is the
    number of trials that observed any data-loss exposure.
    """

    trials: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    losses: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        v = float(value)
        self.trials += 1
        self.total += v
        self.total_sq += v * v
        if v > 0.0:
            self.losses += 1
        self.minimum = min(self.minimum, v)
        self.maximum = max(self.maximum, v)

    def merge(self, other: TrialAggregate) -> None:
        """Fold another aggregate in (right operand must be the later one)."""
        self.trials += other.trials
        self.total += other.total
        self.total_sq += other.total_sq
        self.losses += other.losses
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.trials if self.trials else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance of the trial outcomes."""
        if self.trials < 2:
            return 0.0
        spread = self.total_sq - self.total * self.total / self.trials
        return max(0.0, spread) / (self.trials - 1)

    @property
    def std_error(self) -> float:
        return math.sqrt(self.variance / self.trials) if self.trials else math.nan

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95% confidence interval."""
        return 1.96 * self.std_error

    @property
    def loss_fraction(self) -> float:
        return self.losses / self.trials if self.trials else math.nan


@dataclasses.dataclass(frozen=True)
class RunTelemetry:
    """Wall-clock facts about the last sweep (not part of the results).

    ``worker_seconds`` is the sum of in-chunk execution time across all
    workers; comparing it to ``wall_seconds`` shows the achieved overlap.
    """

    trials: int
    chunks: int
    workers: int
    wall_seconds: float
    worker_seconds: float

    @property
    def trials_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.trials / self.wall_seconds


# Chunk execution now lives in repro.runtime.executors.base (shared by
# every backend).  The private aliases keep two things working: existing
# imports, and -- critically -- *old checkpoint journals*, whose pickled
# chunk payloads reference these names by module path.
_ChunkError = ChunkFailure
_ChunkPayload = ChunkPayload
_run_chunk = run_chunk


class TrialRunner:
    """Fan independent Monte Carlo trials out over a process pool.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) runs everything in-process;
        ``None`` uses ``os.cpu_count()``.
    chunk_size:
        Trials per dispatched task.  Defaults to a size that gives each
        worker a handful of chunks (load balancing) without making tasks
        so small that IPC dominates.  Has no effect on results.
    mp_context:
        Optional ``multiprocessing`` context for the pool (e.g.
        ``multiprocessing.get_context("fork")``).
    backend:
        Optional :class:`~repro.runtime.executors.ChunkExecutor`
        deciding *where* chunks run (e.g. a
        :class:`~repro.runtime.executors.TcpWorkQueueBackend`
        coordinating remote hosts).  ``None`` (the default) keeps the
        built-in local path: in-process for ``workers=1``, a local
        process pool otherwise.  The runner never shuts down a caller-
        provided backend -- ownership stays with the caller.
    batch:
        ``"auto"`` (the default), ``"on"``, or ``"off"``: whether chunks
        may use the vectorized batch engine (:mod:`repro.sim.batch`) for
        trial functions that have one.  Purely a speed knob -- results
        are bit-identical in every mode.  ``auto`` skips tiny chunks;
        ``on`` forces batching whenever an implementation exists.  How
        trials split between the vector path and scalar demotion is
        reported in :attr:`ops_metrics` (``sim.batch_trials`` /
        ``sim.batch_demotions``).
    """

    def __init__(
        self,
        workers: int | None = 1,
        chunk_size: int | None = None,
        mp_context: BaseContext | None = None,
        backend: ChunkExecutor | None = None,
        batch: str = "auto",
    ) -> None:
        if workers is None:
            import os

            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if batch not in ("auto", "on", "off"):
            raise ValueError(
                f"batch must be 'auto', 'on', or 'off', got {batch!r}"
            )
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.backend = backend
        self.batch = batch
        #: Wall-clock facts about the most recent ``run``/``map`` call.
        self.last_telemetry: RunTelemetry | None = None
        #: Operational telemetry (batch engine usage, and -- under
        #: ``ResilientRunner`` -- recovery counters).  Never folded into
        #: result artifacts.
        self.ops_metrics = MetricsRegistry()
        #: Operational trace: span records (schema v2) plus recovery
        #: events.  Runner-owned, wall-clock timed -- never merged into a
        #: result trace, so result artifacts stay byte-identical for any
        #: worker count.
        self.ops_trace = TraceRecorder()
        self._born = time.monotonic()
        #: Span tracer over :attr:`ops_trace` on the runner's operational
        #: clock (seconds since construction).
        self.spans = SpanTracer(self.ops_trace, clock=self._elapsed)
        #: Optional progress sink (a :class:`~repro.obs.ProgressTracker`
        #: or :class:`~repro.obs.ProgressReporter`); the runner feeds it
        #: sweep/chunk completions.  ``None`` disables the feed.
        self.progress: ProgressTracker | None = None
        self._sweeps = 0

    @property
    def backend_name(self) -> str:
        """Telemetry label of the executor backend in use."""
        return self.backend.name if self.backend is not None else "local"

    def _elapsed(self) -> float:
        """Operational clock: seconds since the runner was constructed."""
        return max(0.0, time.monotonic() - self._born)

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        trials: int,
        seed: int = 0,
        args: tuple[Any, ...] = (),
        timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> TrialAggregate:
        """Run ``trials`` trials of ``fn`` and reduce to a TrialAggregate.

        ``fn(ctx, *args)`` must return a scalar.  The fold happens in
        trial order as chunks stream in, so the aggregate is bitwise
        independent of ``workers`` and ``chunk_size``.  When ``metrics``
        or ``trace`` is given, per-chunk telemetry is folded into it in
        the same order (same invariance).
        """
        agg = TrialAggregate()
        for chunk in self._iter_chunks(
            fn, trials, seed, args, timeout, metrics, trace
        ):
            for value in chunk:
                agg.add(value)
        return agg

    def map(
        self,
        fn: Callable[..., Any],
        trials: int,
        seed: int = 0,
        args: tuple[Any, ...] = (),
        timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> list[Any]:
        """Run ``trials`` trials and return their results in trial order.

        Use this when trials produce structured payloads (simulation
        results, per-trial statistics) that need a custom reduction.
        """
        results: list[Any] = []
        for chunk in self._iter_chunks(
            fn, trials, seed, args, timeout, metrics, trace
        ):
            results.extend(chunk)
        return results

    # ------------------------------------------------------------------
    def _chunk_bounds(self, trials: int) -> list[tuple[int, int]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # ~4 chunks per worker, capped so one task never hoards work.
            size = max(1, min(-(-trials // (self.workers * 4)), 128))
        return [(lo, min(lo + size, trials)) for lo in range(0, trials, size)]

    def _iter_chunks(
        self,
        fn: Callable[..., Any],
        trials: int,
        seed: int,
        args: tuple[Any, ...],
        timeout: float | None,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> Iterator[list[Any]]:
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        self._sweeps += 1
        sweep = self._sweeps
        # First seeding wins, so an enclosing campaign's structural seed
        # (see repro.faults.campaign) takes precedence over this default.
        self.spans.seed_trace(
            f"{fn.__module__}:{getattr(fn, '__qualname__', repr(fn))}",
            seed,
            trials,
        )
        with self.spans.span(
            "span.sweep",
            key=("sweep", sweep),
            trials=trials,
            seed=seed,
            backend=self.backend_name,
        ):
            yield from self._dispatch_chunks(
                sweep, fn, trials, seed, args, timeout, metrics, trace
            )

    def _note_chunk_done(
        self,
        sweep: int,
        index: int,
        lo: int,
        hi: int,
        payload: ChunkPayload,
        *,
        attempt: int = 1,
    ) -> None:
        """Emit the chunk + attempt spans and feed the progress sink.

        Retrospective by design: a chunk's execution interval is only
        known once its payload arrives, so the spans are emitted complete
        (:meth:`SpanTracer.emit`) with ``start = now - payload.seconds``
        on the coordinator's clock.  Host attribution comes from the
        payload (``getattr`` covers payloads unpickled from pre-span
        checkpoint journals).
        """
        host = getattr(payload, "host", None)
        now = self._elapsed()
        start = max(0.0, now - payload.seconds)
        chunk_span = self.spans.span_id("span.chunk", sweep, index)
        self.spans.emit(
            "span.attempt",
            start=start,
            duration=payload.seconds,
            key=(sweep, index, attempt),
            parent=chunk_span,
            lo=lo,
            hi=hi,
            attempt=attempt,
            host=host,
            status="ok",
        )
        self.spans.emit(
            "span.chunk",
            start=start,
            duration=payload.seconds,
            key=(sweep, index),
            lo=lo,
            hi=hi,
            attempts=attempt,
            host=host,
        )
        self.ops_metrics.counter("runtime.trials_completed").inc(hi - lo)
        if self.progress is not None:
            self.progress.chunk_done(hi - lo, host=host, busy_s=payload.seconds)

    def _dispatch_chunks(
        self,
        sweep: int,
        fn: Callable[..., Any],
        trials: int,
        seed: int,
        args: tuple[Any, ...],
        timeout: float | None,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> Iterator[list[Any]]:
        children = np.random.SeedSequence(seed).spawn(trials)
        bounds = self._chunk_bounds(trials)
        collect = (metrics is not None, trace is not None)
        began = time.perf_counter()
        worker_seconds = 0.0
        self.ops_metrics.counter("runtime.trials_planned").inc(trials)
        if self.progress is not None:
            self.progress.begin_sweep(trials, len(bounds))
        #: Values of every chunk absorbed so far, in trial order; attached
        #: to TrialExecutionError so callers can salvage the completed
        #: prefix of a sweep that times out or crashes partway through.
        salvaged: list[Any] = []

        def absorb(
            result: _ChunkPayload | _ChunkError, index: int, lo: int, hi: int
        ) -> list[Any]:
            nonlocal worker_seconds
            payload = self._check_chunk(result, salvaged)
            worker_seconds += payload.seconds
            if metrics is not None and payload.metrics is not None:
                metrics.merge(payload.metrics)
            if trace is not None:
                trace.extend(payload.records)
            self._absorb_batch_stats(payload)
            self._note_chunk_done(sweep, index, lo, hi, payload)
            salvaged.extend(payload.values)
            return payload.values

        def finish() -> None:
            self.last_telemetry = RunTelemetry(
                trials=trials,
                chunks=len(bounds),
                workers=self.workers,
                wall_seconds=time.perf_counter() - began,
                worker_seconds=worker_seconds,
            )
            if self.progress is not None:
                self.progress.end_sweep()

        executor: ChunkExecutor | None = None
        owns_backend = False
        if self.backend is not None:
            executor = self.backend
        elif self.workers > 1 and len(bounds) > 1:
            executor = LocalProcessBackend(
                max_workers=min(self.workers, len(bounds)),
                mp_context=self.mp_context,
            )
            owns_backend = True
        if executor is not None:
            try:
                executor.start()
            except BackendUnavailable as exc:  # sandboxes without semaphores
                warnings.warn(
                    f"{exc}; running trials in-process",
                    RuntimeWarning,
                    stacklevel=3,
                )
                executor = None

        if executor is None:
            for index, (lo, hi) in enumerate(bounds):
                yield absorb(
                    run_chunk(
                        fn, lo, tuple(children[lo:hi]), args, *collect,
                        batch=self.batch,
                    ),
                    index,
                    lo,
                    hi,
                )
            finish()
            return

        deadline = None if timeout is None else time.monotonic() + timeout
        futures = []
        try:
            futures = [
                executor.submit(
                    ChunkJob(
                        index=index,
                        lo=lo,
                        hi=hi,
                        fn=fn,
                        children=tuple(children[lo:hi]),
                        args=args,
                        collect=collect,
                        batch=self.batch,
                        trace_id=self.spans.trace_id,
                    )
                )
                for index, (lo, hi) in enumerate(bounds)
            ]
            # Consume in index order: buffering out-of-order completions in
            # the executor keeps the downstream fold deterministic.
            for index, ((lo, hi), future) in enumerate(zip(bounds, futures)):
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                try:
                    chunk = future.result(timeout=remaining)
                except TimeoutError as exc:
                    executor.reset()
                    raise TrialExecutionError(
                        f"trial sweep timed out after {timeout:g}s waiting "
                        f"for trials [{lo}, {hi}) "
                        f"(salvaged {len(salvaged)} completed trials)",
                        partial_values=salvaged,
                    ) from exc
                except (BrokenProcessPool, BackendUnavailable) as exc:
                    raise TrialExecutionError(
                        f"worker process crashed while running trials "
                        f"[{lo}, {hi}); the pool is no longer usable "
                        f"(salvaged {len(salvaged)} completed trials)",
                        partial_values=salvaged,
                    ) from exc
                yield absorb(chunk, index, lo, hi)
            finish()
        finally:
            if owns_backend:
                executor.shutdown(wait=True)
            elif futures and not all(f.done() for f in futures):
                # Caller-owned backend with work still in flight (early
                # generator close, timeout, chunk failure): abandon it so
                # the backend does not keep executing a dead sweep.
                executor.reset()

    def _absorb_batch_stats(self, payload: ChunkPayload) -> None:
        """Fold a chunk's batch-engine split into the ops telemetry.

        Operational only -- never part of result artifacts, so batch=on
        and batch=off runs stay byte-identical.  ``getattr`` covers
        payloads unpickled from pre-batch checkpoint journals.
        """
        batched, demoted = getattr(payload, "batch", (0, 0))
        if batched:
            self.ops_metrics.counter("sim.batch_trials").inc(batched)
        if demoted:
            self.ops_metrics.counter("sim.batch_demotions").inc(demoted)

    @staticmethod
    def _check_chunk(
        chunk: ChunkPayload | ChunkFailure,
        salvaged: Sequence[Any] | None = None,
    ) -> ChunkPayload:
        if isinstance(chunk, ChunkFailure):
            raise TrialExecutionError(
                f"trial {chunk.index} raised {chunk.message}\n"
                f"--- worker traceback ---\n{chunk.worker_traceback}",
                partial_values=salvaged,
            )
        return chunk
