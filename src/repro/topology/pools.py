"""Pool bookkeeping: vectorized damage aggregation over failed-disk sets.

The burst engine's inner loop is "given these failed disk ids, which local
pools are catastrophic and where are they?".  These helpers do that with
``bincount``-style aggregation so a trial costs microseconds, not
milliseconds.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.arrays import AnyArray
from ..core.scheme import MLECScheme
from ..core.types import Placement
from .datacenter import DatacenterTopology

__all__ = ["PoolDamageSummary", "summarize_mlec_damage", "pool_failure_counts"]


def pool_failure_counts(
    pool_ids: AnyArray, n_pools: int | None = None
) -> tuple[AnyArray, AnyArray]:
    """Aggregate per-pool failure counts from per-disk pool ids.

    Returns ``(pools, counts)`` for pools with at least one failure.
    """
    pool_ids = np.asarray(pool_ids)
    if pool_ids.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if n_pools is None:
        n_pools = int(pool_ids.max()) + 1
    counts = np.bincount(pool_ids, minlength=n_pools)
    pools = np.nonzero(counts)[0]
    return pools, counts[pools]


@dataclasses.dataclass(frozen=True)
class PoolDamageSummary:
    """Damage to the local pools of an MLEC scheme after a failure burst.

    Attributes
    ----------
    pools:
        Global ids of local pools with at least one failed disk.
    counts:
        Failed-disk count per pool (aligned with ``pools``).
    racks:
        Rack index of each pool (aligned with ``pools``).
    positions:
        Pool position within its rack, 0..local_pools_per_rack-1 (aligned).
        Network-Cp pools are formed from equal positions across a group.
    catastrophic:
        Boolean mask over ``pools``: more than ``p_l`` failed disks.
    """

    pools: AnyArray
    counts: AnyArray
    racks: AnyArray
    positions: AnyArray
    catastrophic: AnyArray

    @property
    def catastrophic_pools(self) -> AnyArray:
        return self.pools[self.catastrophic]

    @property
    def catastrophic_counts(self) -> AnyArray:
        return self.counts[self.catastrophic]

    @property
    def catastrophic_racks(self) -> AnyArray:
        return self.racks[self.catastrophic]

    @property
    def catastrophic_positions(self) -> AnyArray:
        return self.positions[self.catastrophic]

    @property
    def n_catastrophic(self) -> int:
        return int(self.catastrophic.sum())


def summarize_mlec_damage(
    scheme: MLECScheme,
    failed_disk_ids: AnyArray,
    topo: DatacenterTopology | None = None,
) -> PoolDamageSummary:
    """Aggregate a failed-disk set into per-local-pool damage for a scheme.

    Works for both local placements: clustered pools are consecutive
    ``k_l+p_l``-disk runs, declustered pools are whole enclosures.
    """
    if topo is None:
        topo = DatacenterTopology(scheme.dc)
    failed = np.asarray(failed_disk_ids)
    if scheme.local_placement is Placement.CLUSTERED:
        pool_of_disk = topo.clustered_pool_of(failed, scheme.params.n_l)
    else:
        pool_of_disk = topo.enclosure_of(failed)

    pools, counts = pool_failure_counts(pool_of_disk)
    pools_per_rack = scheme.local_pools_per_rack
    racks = pools // pools_per_rack
    positions = pools % pools_per_rack
    catastrophic = counts > scheme.params.p_l
    return PoolDamageSummary(
        pools=pools,
        counts=counts,
        racks=racks,
        positions=positions,
        catastrophic=catastrophic,
    )
