"""Stripe-placement engines: where a stripe's chunks physically live.

Three placement generators cover the paper's design space:

* :class:`ClusteredStripePlacement` -- a stripe fills its pool exactly (the
  pool *is* the failure domain).
* :class:`DeclusteredStripePlacement` -- pseudorandom ``width``-subsets of a
  pool's devices, the "parity declustering" layout (references [26-31] of
  the paper); chunks of one stripe never share a device.
* :class:`NetworkStripePlacement` -- composes a network-level choice of
  local pools (same-position across a rack group for Cp, random distinct
  racks for Dp) with a local placement in each chosen pool.

Placements are deterministic given a seed, so a simulation's layout is
reproducible, and lazy: layouts are generated per stripe id on demand
because materializing ~1e10 stripes is neither possible nor needed.
"""

from __future__ import annotations

import numpy as np

from ..core.arrays import AnyArray
from ..core.scheme import MLECScheme
from ..core.types import Placement
from .datacenter import DatacenterTopology

__all__ = [
    "ClusteredStripePlacement",
    "DeclusteredStripePlacement",
    "NetworkStripePlacement",
]


class ClusteredStripePlacement:
    """Stripe -> device map for a clustered pool.

    The pool holds ``pool_devices`` devices and each stripe spans *all* of
    them (clustered pools are sized exactly one stripe wide), so stripe ``i``
    occupies chunk row ``i`` on every device.
    """

    def __init__(self, pool_devices: AnyArray, width: int) -> None:
        self.pool_devices = np.asarray(pool_devices)
        if self.pool_devices.ndim != 1:
            raise ValueError("pool_devices must be a 1-D id array")
        if len(self.pool_devices) != width:
            raise ValueError(
                f"clustered pool must be exactly one stripe wide: "
                f"{len(self.pool_devices)} devices vs width {width}"
            )
        self.width = width

    def stripe_devices(self, stripe_id: int) -> AnyArray:
        """Devices hosting the chunks of ``stripe_id`` (all of them)."""
        if stripe_id < 0:
            raise ValueError("stripe_id must be non-negative")
        return self.pool_devices.copy()

    def stripes_touching(self, device: int, n_stripes: int) -> AnyArray:
        """Stripe ids with a chunk on ``device`` -- every stripe."""
        if device not in self.pool_devices:
            return np.empty(0, dtype=np.int64)
        return np.arange(n_stripes)


class DeclusteredStripePlacement:
    """Pseudorandom declustered stripe -> device map for one pool.

    Stripe ``i``'s devices are a seeded random ``width``-subset of the
    pool, so every device pair co-hosts stripes (the property that gives
    declustered repair its parallelism).  The map is a pure function of
    ``(seed, stripe_id)``.
    """

    def __init__(
        self, pool_devices: AnyArray, width: int, seed: int = 0
    ) -> None:
        self.pool_devices = np.asarray(pool_devices)
        if self.pool_devices.ndim != 1:
            raise ValueError("pool_devices must be a 1-D id array")
        if len(self.pool_devices) < width:
            raise ValueError("pool smaller than stripe width")
        self.width = width
        self.seed = seed

    def stripe_devices(self, stripe_id: int) -> AnyArray:
        """Devices hosting the chunks of ``stripe_id`` (width distinct)."""
        if stripe_id < 0:
            raise ValueError("stripe_id must be non-negative")
        rng = np.random.default_rng((self.seed, stripe_id))
        idx = rng.choice(len(self.pool_devices), size=self.width, replace=False)
        return self.pool_devices[idx]

    def stripe_damage(self, stripe_id: int, failed: set[int]) -> int:
        """Number of the stripe's chunks on failed devices."""
        return int(sum(int(d) in failed for d in self.stripe_devices(stripe_id)))


class NetworkStripePlacement:
    """Two-level placement of a full MLEC network stripe.

    For each network stripe id this yields the ``(k_n+p_n, k_l+p_l)`` grid
    of disk ids: which local pool hosts each row (local stripe) and which
    disks host each chunk.

    Network-Cp rows live at the same pool position across the stripe's rack
    group; network-Dp rows live in ``k_n+p_n`` distinct random racks (pool
    position random within each rack).  Rows then place their chunks with
    the scheme's local placement inside the chosen pool.
    """

    def __init__(self, scheme: MLECScheme, seed: int = 0) -> None:
        self.scheme = scheme
        self.topo = DatacenterTopology(scheme.dc)
        self.seed = seed

    # ------------------------------------------------------------------
    def _pool_disks(self, rack: int, position: int) -> AnyArray:
        """Disk ids of the local pool at ``position`` in ``rack``."""
        s = self.scheme
        per_enc = s.local_pools_per_enclosure
        enclosure = position // per_enc
        within = position % per_enc
        enc_disks = self.topo.enclosure_disk_ids(rack, enclosure)
        if s.local_placement is Placement.CLUSTERED:
            lo = within * s.params.n_l
            return enc_disks[lo : lo + s.params.n_l]
        return enc_disks

    def _rng_children(self, stripe_id: int) -> list[np.random.Generator]:
        """Independent generators for the pool draw and each row's chunks.

        A single SeedSequence is spawned per stripe: child 0 drives the
        network-level pool selection, child ``1+row`` each row's local
        chunk placement.  (Naive tuple seeds like ``(seed, id)`` vs
        ``(seed, id, 0)`` collide -- trailing zeros do not change a
        SeedSequence -- which would correlate rack choice with row-0 chunk
        placement.)
        """
        s = self.scheme
        children = np.random.SeedSequence((self.seed, stripe_id)).spawn(
            1 + s.params.n_n
        )
        return [np.random.default_rng(c) for c in children]

    def stripe_pools(self, stripe_id: int) -> list[tuple[int, int]]:
        """(rack, pool-position) of each of the stripe's local stripes."""
        s = self.scheme
        rng = self._rng_children(stripe_id)[0]
        n_rows = s.params.n_n
        if s.network_placement is Placement.CLUSTERED:
            group = int(rng.integers(s.network_groups))
            position = int(rng.integers(s.local_pools_per_rack))
            racks = np.arange(group * n_rows, (group + 1) * n_rows)
            return [(int(r), position) for r in racks]
        racks = rng.choice(s.dc.racks, size=n_rows, replace=False)
        positions = rng.integers(s.local_pools_per_rack, size=n_rows)
        return [(int(r), int(q)) for r, q in zip(racks, positions)]

    def stripe_grid(self, stripe_id: int) -> AnyArray:
        """Disk ids of every chunk: shape ``(k_n+p_n, k_l+p_l)``.

        Invariants (asserted by the test suite): chunks of one row share an
        enclosure but never a disk; rows of one stripe never share a rack.
        """
        s = self.scheme
        rngs = self._rng_children(stripe_id)
        grid = np.empty((s.params.n_n, s.params.n_l), dtype=np.int64)
        for row, (rack, position) in enumerate(self.stripe_pools(stripe_id)):
            pool = self._pool_disks(rack, position)
            if s.local_placement is Placement.CLUSTERED:
                grid[row] = pool
            else:
                rng = rngs[1 + row]
                idx = rng.choice(len(pool), size=s.params.n_l, replace=False)
                grid[row] = pool[idx]
        return grid
