"""Datacenter topology: disk addressing and vectorized locator arithmetic.

Disks are identified by a single global integer id, laid out rack-major:
``id = (rack * enclosures_per_rack + enclosure) * disks_per_enclosure +
slot``.  All locator functions are NumPy-vectorized because the burst engine
and simulator routinely translate tens of thousands of failed-disk ids per
trial.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.arrays import AnyArray
from ..core.config import DatacenterConfig

__all__ = ["DiskAddress", "DatacenterTopology"]


@dataclasses.dataclass(frozen=True, order=True)
class DiskAddress:
    """Human-readable disk location (rack, enclosure, slot)."""

    rack: int
    enclosure: int
    slot: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"R{self.rack}E{self.enclosure}D{self.slot}"


class DatacenterTopology:
    """Vectorized id <-> location arithmetic over a :class:`DatacenterConfig`.

    Examples
    --------
    >>> topo = DatacenterTopology(DatacenterConfig())
    >>> topo.total_disks
    57600
    >>> topo.address_of(0)
    DiskAddress(rack=0, enclosure=0, slot=0)
    """

    def __init__(self, dc: DatacenterConfig | None = None) -> None:
        self.dc = dc if dc is not None else DatacenterConfig()

    # ------------------------------------------------------------------
    @property
    def total_disks(self) -> int:
        return self.dc.total_disks

    @property
    def disks_per_rack(self) -> int:
        return self.dc.disks_per_rack

    @property
    def disks_per_enclosure(self) -> int:
        return self.dc.disks_per_enclosure

    # ------------------------------------------------------------------
    # Vectorized locators.  All accept scalar or array disk ids.
    # ------------------------------------------------------------------
    def rack_of(self, disk_ids: AnyArray) -> AnyArray:
        """Rack index of each disk id."""
        return np.asarray(disk_ids) // self.disks_per_rack

    def enclosure_of(self, disk_ids: AnyArray) -> AnyArray:
        """Global enclosure index (rack-major) of each disk id."""
        return np.asarray(disk_ids) // self.disks_per_enclosure

    def enclosure_in_rack_of(self, disk_ids: AnyArray) -> AnyArray:
        """Enclosure position within its rack (0..enclosures_per_rack-1)."""
        return self.enclosure_of(disk_ids) % self.dc.enclosures_per_rack

    def slot_of(self, disk_ids: AnyArray) -> AnyArray:
        """Slot within the enclosure (0..disks_per_enclosure-1)."""
        return np.asarray(disk_ids) % self.disks_per_enclosure

    def position_in_rack_of(self, disk_ids: AnyArray) -> AnyArray:
        """Disk position within its rack (0..disks_per_rack-1).

        Network-Cp SLEC pools are formed by disks at the same in-rack
        position across a rack group, so this is their pool coordinate.
        """
        return np.asarray(disk_ids) % self.disks_per_rack

    def clustered_pool_of(self, disk_ids: AnyArray, pool_size: int) -> AnyArray:
        """Global clustered-pool index for pools of ``pool_size`` disks.

        Clustered pools are consecutive disk runs; because enclosures are
        contiguous and their size is a multiple of every legal pool size,
        integer division by the pool size never crosses an enclosure.
        """
        if pool_size <= 0 or self.disks_per_enclosure % pool_size:
            raise ValueError(
                f"pool_size {pool_size} must divide the enclosure size "
                f"{self.disks_per_enclosure}"
            )
        return np.asarray(disk_ids) // pool_size

    # ------------------------------------------------------------------
    def disk_id(self, rack: int, enclosure: int, slot: int) -> int:
        """Global disk id for a (rack, enclosure, slot) location."""
        if not 0 <= rack < self.dc.racks:
            raise ValueError(f"rack {rack} out of range")
        if not 0 <= enclosure < self.dc.enclosures_per_rack:
            raise ValueError(f"enclosure {enclosure} out of range")
        if not 0 <= slot < self.disks_per_enclosure:
            raise ValueError(f"slot {slot} out of range")
        return (
            rack * self.dc.enclosures_per_rack + enclosure
        ) * self.disks_per_enclosure + slot

    def address_of(self, disk_id: int) -> DiskAddress:
        """Human-readable address of a disk id."""
        if not 0 <= disk_id < self.total_disks:
            raise ValueError(f"disk id {disk_id} out of range")
        return DiskAddress(
            rack=int(self.rack_of(disk_id)),
            enclosure=int(self.enclosure_in_rack_of(disk_id)),
            slot=int(self.slot_of(disk_id)),
        )

    def rack_disk_ids(self, rack: int) -> AnyArray:
        """All disk ids in one rack."""
        if not 0 <= rack < self.dc.racks:
            raise ValueError(f"rack {rack} out of range")
        start = rack * self.disks_per_rack
        return np.arange(start, start + self.disks_per_rack)

    def enclosure_disk_ids(self, rack: int, enclosure: int) -> AnyArray:
        """All disk ids in one enclosure."""
        start = self.disk_id(rack, enclosure, 0)
        return np.arange(start, start + self.disks_per_enclosure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatacenterTopology({self.dc.racks} racks x "
            f"{self.dc.enclosures_per_rack} enclosures x "
            f"{self.disks_per_enclosure} disks)"
        )
