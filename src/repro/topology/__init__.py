"""Datacenter topology, pools, and stripe-placement engines."""

from .datacenter import DatacenterTopology, DiskAddress
from .placement import (
    ClusteredStripePlacement,
    DeclusteredStripePlacement,
    NetworkStripePlacement,
)
from .pools import PoolDamageSummary, pool_failure_counts, summarize_mlec_damage

__all__ = [
    "DatacenterTopology",
    "DiskAddress",
    "ClusteredStripePlacement",
    "DeclusteredStripePlacement",
    "NetworkStripePlacement",
    "PoolDamageSummary",
    "pool_failure_counts",
    "summarize_mlec_damage",
]
