"""Failure-tolerance expressions (paper §3: "expressing failure tolerance").

Every scheme comes with *guarantees* -- failure combinations it survives no
matter where they land -- and *vulnerabilities* -- the smallest adversarial
combinations that can lose data.  The paper reasons about these informally
(e.g. Finding 3 of §4.1.1: an MLEC survives any ``x + p_l * (p_n+1)``
failures across ``x`` racks); this module computes them for MLEC, SLEC and
LRC schemes so simulations and operators can assert them directly.

The numbers here are *worst case over placements*: a guarantee holds for
every possible chunk layout, and a vulnerability is achievable by some
layout (for declustered placements, achievable with probability growing
with utilization).  The exact-DP burst module verifies the guarantees: the
PDL is identically zero inside the guaranteed region.
"""

from __future__ import annotations

import dataclasses

from .scheme import LRCScheme, MLECScheme, SLECScheme
from .types import Level

__all__ = ["ToleranceReport", "mlec_tolerance", "slec_tolerance", "lrc_tolerance"]


@dataclasses.dataclass(frozen=True)
class ToleranceReport:
    """Guaranteed failure tolerance of a scheme.

    Attributes
    ----------
    arbitrary_disks:
        Any set of this many concurrent disk failures is survivable;
        ``arbitrary_disks + 1`` adversarially-placed failures can lose data.
    rack_failures:
        Whole racks that can fail (all their disks at once) without loss.
    enclosure_failures:
        Whole enclosures that can fail without loss.
    disks_per_rack_scatter:
        With failures spread over ``x`` racks, the scheme survives up to
        ``x + disks_per_rack_scatter`` failures (the paper's ``y <= x + 8``
        region for the (10+2)/(17+3) MLEC, where this value is 8).
        ``None`` when no such linear guarantee exists (local SLEC).
    """

    arbitrary_disks: int
    rack_failures: int
    enclosure_failures: int
    disks_per_rack_scatter: int | None

    def survives_burst(self, failures: int, racks: int) -> bool:
        """Whether a burst of ``failures`` across ``racks`` is *guaranteed*
        survivable (no placement can lose data)."""
        if racks <= self.rack_failures:
            return True  # fewer affected racks than whole-rack tolerance
        if failures <= self.arbitrary_disks:
            return True
        if self.disks_per_rack_scatter is None:
            return False
        return failures <= racks + self.disks_per_rack_scatter


def mlec_tolerance(scheme: MLECScheme) -> ToleranceReport:
    """Guaranteed tolerance of an MLEC scheme.

    * Data loss needs ``p_n+1`` lost local stripes, each needing ``p_l+1``
      failed chunks, so any ``(p_n+1)(p_l+1) - 1`` failures are survivable
      (and ``(p_n+1)(p_l+1)`` adversarial ones are not).
    * A whole-rack failure destroys at most one local stripe per network
      stripe, so ``p_n`` rack (or enclosure) failures are survivable.
    * Spread over ``x`` racks (>= 1 failure each), creating ``p_n+1`` lost
      local stripes needs ``p_l`` failures in each of ``p_n+1`` racks *on
      top of* the one-per-rack baseline, so any
      ``y <= x + (p_n+1) * p_l - 1`` failures are survivable.  For the
      paper's (10+2)/(17+3) this is the Finding-3 region ``y <= x + 8``.
    """
    p_n, p_l = scheme.params.p_n, scheme.params.p_l
    # Scatter bound: to get p_n+1 lost local stripes we need p_n+1 racks
    # each holding a pool with p_l+1 failures, i.e. p_l extra failures in
    # each of p_n+1 racks beyond the 1-per-rack baseline:
    # y >= x + (p_n+1)*p_l  loses;  y <= x + (p_n+1)*p_l - 1 is safe.
    scatter = (p_n + 1) * p_l - 1
    return ToleranceReport(
        arbitrary_disks=(p_n + 1) * (p_l + 1) - 1,
        rack_failures=p_n,
        enclosure_failures=p_n,
        disks_per_rack_scatter=scatter,
    )


def slec_tolerance(scheme: SLECScheme) -> ToleranceReport:
    """Guaranteed tolerance of a SLEC placement.

    Local SLEC survives any ``p`` disk failures but no rack failure (a rack
    takes whole stripes with it).  Network SLEC survives ``p`` rack
    failures and any ``p`` disks, but gains nothing from scattering beyond
    the per-rack baseline (its stripes have one chunk per rack, so ``p+1``
    scattered disks can already align with one stripe).
    """
    p = scheme.params.p
    if scheme.level is Level.LOCAL:
        return ToleranceReport(
            arbitrary_disks=p,
            rack_failures=0,
            enclosure_failures=0,
            # One stripe lives inside one rack: failures in different racks
            # hit different stripes, so x racks tolerate x*p... the linear
            # per-rack form: y <= x + ... holds with slope p per rack; we
            # report the conservative single-rack excess.
            disks_per_rack_scatter=p - 1,
        )
    return ToleranceReport(
        arbitrary_disks=p,
        rack_failures=p,
        enclosure_failures=p,
        disks_per_rack_scatter=None,
    )


def lrc_tolerance(scheme: LRCScheme) -> ToleranceReport:
    """Guaranteed tolerance of a declustered LRC.

    A maximally recoverable ``(k, l, r)`` LRC survives any ``r+1`` erasures
    (each local group peels one, globals cover ``r``); ``r+2`` erasures
    concentrated in one local group defeat it.  With one chunk per rack,
    rack and enclosure tolerance equal the chunk tolerance.
    """
    r = scheme.params.r
    return ToleranceReport(
        arbitrary_disks=r + 1,
        rack_failures=r + 1,
        enclosure_failures=r + 1,
        disks_per_rack_scatter=None,
    )
