"""Shared enums, unit aliases, and small value types used across the library.

The unit aliases (:data:`Seconds`, :data:`Hours`, :data:`Years`,
:data:`Bytes`, :data:`GiB`, :data:`MiBps`) are :func:`typing.NewType`
wrappers over ``float``: identity at runtime, distinct to type checkers
and to the ``SL005`` simlint rule.  APIs that take or return a physical
quantity annotate it with one of these; call sites convert with the
explicit helpers below instead of relabelling (``Hours(x)`` on a
``Seconds`` value is a lint error -- use :func:`seconds_to_hours`).
"""

from __future__ import annotations

import enum
from typing import NewType

__all__ = [
    "Placement",
    "Level",
    "RepairMethod",
    "SchemeKind",
    "Seconds",
    "Hours",
    "Years",
    "Bytes",
    "GiB",
    "MiBps",
    "seconds_to_hours",
    "hours_to_seconds",
    "hours_to_years",
    "years_to_hours",
    "seconds_to_years",
    "years_to_seconds",
    "bytes_to_gib",
    "gib_to_bytes",
    "mibps_to_bytes_per_second",
]

#: Wall-clock / simulated time in seconds.
Seconds = NewType("Seconds", float)
#: Time in hours (repair durations, Table 2 quantities).
Hours = NewType("Hours", float)
#: Time in years (mission horizons, characteristic lifetimes).
Years = NewType("Years", float)
#: A byte count.
Bytes = NewType("Bytes", float)
#: A byte count in binary gibibytes.
GiB = NewType("GiB", float)
#: A data rate in binary mebibytes per second.
MiBps = NewType("MiBps", float)

_HOUR_S = 3600.0
_YEAR_HOURS = 365.0 * 24.0
_GIB = float(2**30)
_MIB = float(2**20)


def seconds_to_hours(value: Seconds) -> Hours:
    return Hours(value / _HOUR_S)


def hours_to_seconds(value: Hours) -> Seconds:
    return Seconds(value * _HOUR_S)


def hours_to_years(value: Hours) -> Years:
    return Years(value / _YEAR_HOURS)


def years_to_hours(value: Years) -> Hours:
    return Hours(value * _YEAR_HOURS)


def seconds_to_years(value: Seconds) -> Years:
    return Years(value / (_YEAR_HOURS * _HOUR_S))


def years_to_seconds(value: Years) -> Seconds:
    return Seconds(value * _YEAR_HOURS * _HOUR_S)


def bytes_to_gib(value: Bytes) -> GiB:
    return GiB(value / _GIB)


def gib_to_bytes(value: GiB) -> Bytes:
    return Bytes(value * _GIB)


def mibps_to_bytes_per_second(value: MiBps) -> float:
    return value * _MIB


class Placement(enum.Enum):
    """Chunk/parity placement discipline at one level (paper §2.1).

    CLUSTERED ("Cp"): every ``k+p`` devices form a pool; a stripe either has
    all its chunks in the pool or none.  Repair reads only the pool's
    survivors and writes to a single spare device.

    DECLUSTERED ("Dp"): a pool spans (many) more than ``k+p`` devices;
    chunks and spare space are pseudorandomly spread so every surviving
    device participates in repair.
    """

    CLUSTERED = "C"
    DECLUSTERED = "D"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Level(enum.Enum):
    """The two coding levels of an MLEC system (paper §2.1)."""

    NETWORK = "network"
    LOCAL = "local"


class RepairMethod(enum.Enum):
    """Local-pool repair methods for catastrophic failures (paper §2.4).

    Ordered from simplest to most optimized:

    R_ALL: rebuild the entire local pool from the other local pools over the
    network.  No cross-level transparency required (black-box RBODs).

    R_FCO: "repair failed chunks only" -- rebuild just the chunks on failed
    disks via network parity.  Requires the local layer to report failed
    chunk identities.

    R_HYB: hybrid -- network-repair only the chunks of *lost* local stripes;
    everything in locally-recoverable stripes repairs locally.

    R_MIN: two-stage minimum-traffic repair -- network-repair just enough
    chunks of each lost local stripe to make it locally recoverable
    (``failures - p_l`` chunks), then finish locally.
    """

    R_ALL = "RALL"
    R_FCO = "RFCO"
    R_HYB = "RHYB"
    R_MIN = "RMIN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SchemeKind(enum.Enum):
    """Top-level family of an erasure-coding scheme."""

    MLEC = "mlec"
    SLEC_LOCAL = "slec-local"
    SLEC_NETWORK = "slec-network"
    LRC = "lrc"
