"""Shared enums and small value types used across the library."""

from __future__ import annotations

import enum

__all__ = ["Placement", "Level", "RepairMethod", "SchemeKind"]


class Placement(enum.Enum):
    """Chunk/parity placement discipline at one level (paper §2.1).

    CLUSTERED ("Cp"): every ``k+p`` devices form a pool; a stripe either has
    all its chunks in the pool or none.  Repair reads only the pool's
    survivors and writes to a single spare device.

    DECLUSTERED ("Dp"): a pool spans (many) more than ``k+p`` devices;
    chunks and spare space are pseudorandomly spread so every surviving
    device participates in repair.
    """

    CLUSTERED = "C"
    DECLUSTERED = "D"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Level(enum.Enum):
    """The two coding levels of an MLEC system (paper §2.1)."""

    NETWORK = "network"
    LOCAL = "local"


class RepairMethod(enum.Enum):
    """Local-pool repair methods for catastrophic failures (paper §2.4).

    Ordered from simplest to most optimized:

    R_ALL: rebuild the entire local pool from the other local pools over the
    network.  No cross-level transparency required (black-box RBODs).

    R_FCO: "repair failed chunks only" -- rebuild just the chunks on failed
    disks via network parity.  Requires the local layer to report failed
    chunk identities.

    R_HYB: hybrid -- network-repair only the chunks of *lost* local stripes;
    everything in locally-recoverable stripes repairs locally.

    R_MIN: two-stage minimum-traffic repair -- network-repair just enough
    chunks of each lost local stripe to make it locally recoverable
    (``failures - p_l`` chunks), then finish locally.
    """

    R_ALL = "RALL"
    R_FCO = "RFCO"
    R_HYB = "RHYB"
    R_MIN = "RMIN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SchemeKind(enum.Enum):
    """Top-level family of an erasure-coding scheme."""

    MLEC = "mlec"
    SLEC_LOCAL = "slec-local"
    SLEC_NETWORK = "slec-network"
    LRC = "lrc"
