"""Failure-mode taxonomy of Table 1 and per-pool damage accounting.

The paper's analysis pivots on classifying damage at two granularities:

* per local stripe: *healthy* / *locally recoverable* (1..p_l failed
  chunks) / *lost* (>= p_l+1 failed chunks, needs network repair);
* per local pool: *catastrophic* iff it contains at least one lost local
  stripe;
* per network stripe: *recoverable* (1..p_n lost local stripes) / *lost*
  (>= p_n+1 lost local stripes -- a data loss).

:class:`LocalPoolDamage` captures a pool with some failed disks and answers
the questions every repair method needs: how many stripes are affected /
lost, how many chunks must cross the network for each repair method, and --
for declustered pools -- the exact hypergeometric stripe-damage
distribution.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from .arrays import AnyArray
from scipy import stats

from .types import RepairMethod

__all__ = [
    "StripeState",
    "classify_stripe",
    "NetworkStripeState",
    "classify_network_stripe",
    "LocalPoolDamage",
]


class StripeState(enum.Enum):
    """State of a single local stripe (Table 1, local-level failures)."""

    HEALTHY = "healthy"
    LOCALLY_RECOVERABLE = "locally-recoverable"
    LOST = "lost"


def classify_stripe(failed_chunks: int, p_l: int) -> StripeState:
    """Classify a local stripe by its number of failed chunks."""
    if failed_chunks < 0:
        raise ValueError("failed_chunks must be non-negative")
    if failed_chunks == 0:
        return StripeState.HEALTHY
    if failed_chunks <= p_l:
        return StripeState.LOCALLY_RECOVERABLE
    return StripeState.LOST


class NetworkStripeState(enum.Enum):
    """State of a network stripe (Table 1, network-level failures)."""

    HEALTHY = "healthy"
    RECOVERABLE = "recoverable"
    LOST = "lost"  # a data loss


def classify_network_stripe(lost_local_stripes: int, p_n: int) -> NetworkStripeState:
    """Classify a network stripe by its number of lost local stripes."""
    if lost_local_stripes < 0:
        raise ValueError("lost_local_stripes must be non-negative")
    if lost_local_stripes == 0:
        return NetworkStripeState.HEALTHY
    if lost_local_stripes <= p_n:
        return NetworkStripeState.RECOVERABLE
    return NetworkStripeState.LOST


@dataclasses.dataclass(frozen=True)
class LocalPoolDamage:
    """A local pool with some simultaneously failed disks.

    Parameters
    ----------
    pool_disks:
        Disks in the pool (``k_l+p_l`` for Cp, the enclosure for Dp).
    failed_disks:
        Number of failed disks in the pool.
    k_l, p_l:
        Local code parameters; stripe width is ``k_l+p_l``.
    chunks_per_disk:
        Chunk slots on each disk (capacity / chunk size), assuming a full
        pool -- the paper's worst-case accounting.

    Notes
    -----
    For a clustered pool ``pool_disks == k_l+p_l`` and every stripe spans
    every disk, so each stripe has exactly ``failed_disks`` failed chunks.
    For a declustered pool stripes are pseudorandom ``n_l``-subsets of the
    disks, so the per-stripe failed-chunk count is hypergeometric.
    """

    pool_disks: int
    failed_disks: int
    k_l: int
    p_l: int
    chunks_per_disk: int

    def __post_init__(self) -> None:
        if self.pool_disks < self.stripe_width:
            raise ValueError("pool must hold at least one stripe")
        if not 0 <= self.failed_disks <= self.pool_disks:
            raise ValueError("failed_disks out of range")
        if self.chunks_per_disk <= 0:
            raise ValueError("chunks_per_disk must be positive")

    @property
    def stripe_width(self) -> int:
        return self.k_l + self.p_l

    @property
    def is_clustered(self) -> bool:
        return self.pool_disks == self.stripe_width

    @property
    def is_catastrophic(self) -> bool:
        """Whether the pool has (assumed) lost local stripes.

        Exact for clustered pools.  For declustered pools this is the
        standard worst-case declustering assumption -- with a full pool the
        expected number of lost stripes given ``p_l+1`` failures is already
        far above 1 (see :meth:`expected_lost_stripes`), so the assumption
        is tight in practice.
        """
        return self.failed_disks > self.p_l

    # ------------------------------------------------------------------
    # Stripe-damage distribution
    # ------------------------------------------------------------------
    @property
    def total_stripes(self) -> int:
        """Stripes in the (full) pool."""
        return self.pool_disks * self.chunks_per_disk // self.stripe_width

    def stripe_damage_pmf(self) -> AnyArray:
        """P[one stripe has j failed chunks], j = 0..min(n_l, failed).

        Hypergeometric for declustered pools; a point mass for clustered.
        """
        max_j = min(self.stripe_width, self.failed_disks)
        if self.is_clustered:
            pmf = np.zeros(max_j + 1)
            pmf[self.failed_disks] = 1.0
            return pmf
        j = np.arange(max_j + 1)
        return stats.hypergeom.pmf(
            j, self.pool_disks, self.failed_disks, self.stripe_width
        )

    def lost_stripe_probability(self) -> float:
        """P[one stripe is lost] = P[> p_l of its chunks on failed disks]."""
        pmf = self.stripe_damage_pmf()
        if len(pmf) <= self.p_l + 1:
            return 0.0
        return float(pmf[self.p_l + 1 :].sum())

    def affected_stripe_probability(self) -> float:
        """P[one stripe has >= 1 failed chunk]."""
        return float(1.0 - self.stripe_damage_pmf()[0])

    def expected_lost_stripes(self) -> float:
        """Expected number of lost local stripes in the pool."""
        return self.lost_stripe_probability() * self.total_stripes

    def expected_affected_stripes(self) -> float:
        """Expected number of stripes with at least one failed chunk."""
        return self.affected_stripe_probability() * self.total_stripes

    # ------------------------------------------------------------------
    # Chunk accounting for the repair methods (paper §2.4 / §4.2.1)
    # ------------------------------------------------------------------
    def failed_chunks_total(self) -> int:
        """All chunks resident on the failed disks."""
        return self.failed_disks * self.chunks_per_disk

    def expected_chunks_by_damage(self) -> AnyArray:
        """E[# failed chunks residing in stripes with j failed chunks].

        Index j runs 0..min(n_l, failed).  Derived from the damage pmf:
        stripes with j failures contribute j failed chunks each.
        """
        pmf = self.stripe_damage_pmf()
        j = np.arange(len(pmf))
        return pmf * j * self.total_stripes

    def network_repair_chunks(self, method: RepairMethod) -> float:
        """Expected chunks that must be rebuilt *via the network*.

        * R_ALL: every chunk slot in the pool (the whole pool is rebuilt).
        * R_FCO: every failed chunk.
        * R_HYB: failed chunks belonging to lost stripes (the rest repairs
          locally).
        * R_MIN: per lost stripe with j failures, only ``j - p_l`` chunks
          (just enough to make it locally recoverable).
        """
        if method is RepairMethod.R_ALL:
            return float(self.pool_disks * self.chunks_per_disk)
        if method is RepairMethod.R_FCO:
            return float(self.failed_chunks_total())
        chunks = self.expected_chunks_by_damage()
        lost_j = np.arange(len(chunks)) > self.p_l
        if method is RepairMethod.R_HYB:
            return float(chunks[lost_j].sum())
        if method is RepairMethod.R_MIN:
            pmf = self.stripe_damage_pmf()
            j = np.arange(len(pmf))
            need = np.clip(j - self.p_l, 0, None)
            return float((pmf * need).sum() * self.total_stripes)
        raise ValueError(f"unknown repair method {method!r}")

    def local_repair_chunks(self, method: RepairMethod) -> float:
        """Expected chunks rebuilt *locally* after the network stage.

        Complements :meth:`network_repair_chunks` so that, for chunk-level
        methods, network + local always equals the failed chunk total.
        R_ALL rewrites the pool over the network, so its local share is 0.
        """
        if method is RepairMethod.R_ALL:
            return 0.0
        return self.failed_chunks_total() - self.network_repair_chunks(method)

    # ------------------------------------------------------------------
    # Sampling (for the event-driven simulator)
    # ------------------------------------------------------------------
    def sample_stripe_damage(
        self, rng: np.random.Generator, n_stripes: int | None = None
    ) -> AnyArray:
        """Sample per-stripe failed-chunk counts for the whole pool.

        Returns an integer array of length ``n_stripes`` (default: all
        stripes in the pool) drawn from the damage distribution.  Sampling
        stripes independently is the standard declustering approximation;
        for clustered pools the result is exact (a constant vector).
        """
        n = self.total_stripes if n_stripes is None else int(n_stripes)
        if self.is_clustered:
            return np.full(n, self.failed_disks, dtype=np.int64)
        return rng.hypergeometric(
            self.failed_disks,
            self.pool_disks - self.failed_disks,
            self.stripe_width,
            size=n,
        )
