"""Core abstractions: configuration, scheme descriptors, failure modes."""

from .config import (
    PAPER_MLEC,
    BandwidthConfig,
    DatacenterConfig,
    FailureConfig,
    LRCParams,
    MLECParams,
    SLECParams,
    paper_setup,
)
from .failure_modes import (
    LocalPoolDamage,
    NetworkStripeState,
    StripeState,
    classify_network_stripe,
    classify_stripe,
)
from .scheme import (
    MLEC_SCHEME_NAMES,
    LRCScheme,
    MLECScheme,
    SLECScheme,
    mlec_scheme_from_name,
)
from .tolerance import (
    ToleranceReport,
    lrc_tolerance,
    mlec_tolerance,
    slec_tolerance,
)
from .types import Level, Placement, RepairMethod, SchemeKind

__all__ = [
    "PAPER_MLEC",
    "BandwidthConfig",
    "DatacenterConfig",
    "FailureConfig",
    "LRCParams",
    "MLECParams",
    "SLECParams",
    "paper_setup",
    "LocalPoolDamage",
    "NetworkStripeState",
    "StripeState",
    "classify_network_stripe",
    "classify_stripe",
    "MLEC_SCHEME_NAMES",
    "LRCScheme",
    "MLECScheme",
    "SLECScheme",
    "mlec_scheme_from_name",
    "ToleranceReport",
    "lrc_tolerance",
    "mlec_tolerance",
    "slec_tolerance",
    "Level",
    "Placement",
    "RepairMethod",
    "SchemeKind",
]
