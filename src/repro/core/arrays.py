"""Shared numpy array type aliases.

``mypy --strict`` (``disallow_any_generics``) rejects bare ``np.ndarray``
annotations; these aliases give every module one vocabulary for the
parameterised forms.  ``FloatArray`` / ``IntArray`` / ``UInt8Array`` name
the dtype when an API guarantees it; ``AnyArray`` is for arrays whose
dtype is data-dependent or intentionally unconstrained (still an explicit
annotation -- the ``Any`` is the dtype parameter, not the array type).
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

__all__ = ["FloatArray", "IntArray", "UInt8Array", "AnyArray"]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
UInt8Array = npt.NDArray[np.uint8]
AnyArray = npt.NDArray[Any]
