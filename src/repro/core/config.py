"""System and experiment configuration objects.

Everything is an immutable dataclass with validation in ``__post_init__`` so
that an inconsistent configuration (a clustered pool size that does not
divide the enclosure, say) fails at construction time rather than deep in a
simulation.

The module also exposes :func:`paper_setup`, the exact datacenter-scale
setup of the paper's Methodology section (§3): 57,600 disks, 60 racks, 8
enclosures per rack, 120 disks per enclosure, 20 TB disks, 128 KiB chunks,
(10+2)/(17+3) MLEC, 200 MB/s disks and 10 Gbps racks with a 20 % repair
cap, 1 % AFR, 30-minute failure-detection delay.
"""

from __future__ import annotations

import dataclasses

from .types import Seconds

__all__ = [
    "TB",
    "GB",
    "MB",
    "KB",
    "HOUR",
    "DAY",
    "YEAR",
    "DatacenterConfig",
    "BandwidthConfig",
    "FailureConfig",
    "MLECParams",
    "SLECParams",
    "LRCParams",
    "paper_setup",
    "PAPER_MLEC",
]

# Byte units (decimal, matching vendor disk-capacity conventions).
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Time units, in seconds.
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365 * DAY


@dataclasses.dataclass(frozen=True)
class DatacenterConfig:
    """Physical topology of the data center.

    Attributes
    ----------
    racks:
        Number of racks in the system.
    enclosures_per_rack:
        Enclosures (RBOD-class disk shelves) per rack.
    disks_per_enclosure:
        Disks per enclosure.
    disk_capacity_bytes:
        Usable capacity of one disk.
    chunk_size_bytes:
        EC chunk size.
    """

    racks: int = 60
    enclosures_per_rack: int = 8
    disks_per_enclosure: int = 120
    disk_capacity_bytes: int = 20 * TB
    chunk_size_bytes: int = 128 * 1024

    def __post_init__(self) -> None:
        for name in ("racks", "enclosures_per_rack", "disks_per_enclosure"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.disk_capacity_bytes <= 0 or self.chunk_size_bytes <= 0:
            raise ValueError("capacities must be positive")

    @property
    def disks_per_rack(self) -> int:
        return self.enclosures_per_rack * self.disks_per_enclosure

    @property
    def total_disks(self) -> int:
        return self.racks * self.disks_per_rack

    @property
    def total_capacity_bytes(self) -> int:
        return self.total_disks * self.disk_capacity_bytes

    @property
    def chunks_per_disk(self) -> int:
        return self.disk_capacity_bytes // self.chunk_size_bytes


@dataclasses.dataclass(frozen=True)
class BandwidthConfig:
    """Raw I/O bandwidths and the repair-traffic cap (paper §3).

    The paper caps repair traffic at 20 % of raw disk and network bandwidth
    to protect foreground I/O; "available repair bandwidth" always refers to
    the capped values.
    """

    disk_bandwidth: float = 200 * MB  # bytes/s, per disk, raw
    rack_network_bandwidth: float = 10e9 / 8  # bytes/s, per rack, raw (10 Gbps)
    repair_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.disk_bandwidth <= 0 or self.rack_network_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0 < self.repair_fraction <= 1:
            raise ValueError("repair_fraction must be in (0, 1]")

    @property
    def disk_repair_bandwidth(self) -> float:
        """Per-disk bandwidth available to repair (bytes/s)."""
        return self.disk_bandwidth * self.repair_fraction

    @property
    def rack_repair_bandwidth(self) -> float:
        """Per-rack cross-rack bandwidth available to repair (bytes/s)."""
        return self.rack_network_bandwidth * self.repair_fraction


@dataclasses.dataclass(frozen=True)
class FailureConfig:
    """Failure and detection model (paper §3).

    Attributes
    ----------
    annual_failure_rate:
        Probability a disk fails within a year (exponential model).
    detection_time:
        Delay between a failure and the start of its repair, seconds.
    """

    annual_failure_rate: float = 0.01
    detection_time: Seconds = Seconds(30 * 60.0)

    def __post_init__(self) -> None:
        if not 0 < self.annual_failure_rate < 1:
            raise ValueError("annual_failure_rate must be in (0, 1)")
        if self.detection_time < 0:
            raise ValueError("detection_time must be non-negative")

    @property
    def failure_rate_per_second(self) -> float:
        """Exponential rate lambda such that P[fail in 1y] = AFR."""
        import math

        return -math.log(1.0 - self.annual_failure_rate) / YEAR


@dataclasses.dataclass(frozen=True)
class MLECParams:
    """Code parameters of a ``(k_n+p_n)/(k_l+p_l)`` MLEC."""

    k_n: int
    p_n: int
    k_l: int
    p_l: int

    def __post_init__(self) -> None:
        if min(self.k_n, self.k_l) <= 0 or min(self.p_n, self.p_l) < 0:
            raise ValueError("k values must be positive, p values non-negative")

    @property
    def n_n(self) -> int:
        """Network stripe width (local stripes per network stripe)."""
        return self.k_n + self.p_n

    @property
    def n_l(self) -> int:
        """Local stripe width (chunks per local stripe)."""
        return self.k_l + self.p_l

    @property
    def storage_overhead(self) -> float:
        """Parity space overhead: total/(data) - 1."""
        return (self.n_n * self.n_l) / (self.k_n * self.k_l) - 1.0

    @property
    def parity_fraction(self) -> float:
        """Parity share of raw capacity: 1 - data/total.

        This is the paper's "capacity (parity space) overhead of roughly
        30%" metric -- e.g. (10+2)/(17+3) has 1 - 170/240 = 29.2%.
        """
        return 1.0 - (self.k_n * self.k_l) / (self.n_n * self.n_l)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.k_n}+{self.p_n})/({self.k_l}+{self.p_l})"


@dataclasses.dataclass(frozen=True)
class SLECParams:
    """Code parameters of a ``(k+p)`` single-level EC."""

    k: int
    p: int

    def __post_init__(self) -> None:
        if self.k <= 0 or self.p < 0:
            raise ValueError("k must be positive, p non-negative")

    @property
    def n(self) -> int:
        return self.k + self.p

    @property
    def storage_overhead(self) -> float:
        return self.p / self.k

    @property
    def parity_fraction(self) -> float:
        """Parity share of raw capacity: p / (k+p)."""
        return self.p / self.n

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.k}+{self.p})"


@dataclasses.dataclass(frozen=True)
class LRCParams:
    """Code parameters of a ``(k, l, r)`` Azure-style LRC."""

    k: int
    l: int
    r: int

    def __post_init__(self) -> None:
        if self.k <= 0 or self.l <= 0 or self.r < 0:
            raise ValueError("k, l must be positive and r non-negative")
        if self.k % self.l:
            raise ValueError(f"k={self.k} must be divisible by l={self.l}")

    @property
    def n(self) -> int:
        return self.k + self.l + self.r

    @property
    def group_size(self) -> int:
        return self.k // self.l

    @property
    def storage_overhead(self) -> float:
        return (self.l + self.r) / self.k

    @property
    def parity_fraction(self) -> float:
        """Parity share of raw capacity: (l+r) / (k+l+r)."""
        return (self.l + self.r) / self.n

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.k},{self.l},{self.r})"


def paper_setup() -> tuple[DatacenterConfig, BandwidthConfig, FailureConfig]:
    """The exact datacenter setup of the paper's Methodology section (§3)."""
    return DatacenterConfig(), BandwidthConfig(), FailureConfig()


#: The paper's headline MLEC configuration.
PAPER_MLEC = MLECParams(k_n=10, p_n=2, k_l=17, p_l=3)
