"""Atomic result-file writes: write-temp-then-rename with fsync.

Every results artifact this repository leaves on disk -- ``--trace``
JSONL streams, ``--metrics`` snapshots, ``BENCH_<name>.json`` telemetry
-- must survive the writer being killed at any instant: an interrupted
run that leaves a truncated JSON file behind poisons every later
consumer (resume paths, CI ``cmp`` gates, trace reports).  The fix is
the classic WAL-adjacent recipe: write the full payload to a temporary
sibling in the *same directory* (so the final rename never crosses a
filesystem), flush and ``fsync`` it, then ``os.replace`` it over the
target.  Readers observe either the old complete file or the new
complete file, never a hybrid.

simlint rule SL008 (``atomic-result-write``) enforces that library code
routes ``*.json`` / ``*.jsonl`` results writes through this module.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text", "fsync_dir"]


def fsync_dir(path: str | Path) -> None:
    """fsync a *directory* so a rename/creation inside it is durable.

    ``fsync`` on the file alone makes the *bytes* durable; the directory
    entry pointing at them lives in the parent directory's own blocks and
    needs its own fsync, or a power cut after ``os.replace`` can roll the
    rename back and resurrect the old file (or nothing at all).  Process
    death never needs this -- the kernel's view survives -- which is why
    the gap goes unnoticed until the first real outage.

    Best effort: some filesystems (and all of Windows) refuse directory
    fsync; there is nothing more a userspace writer can do there, so the
    refusal is swallowed rather than turned into a spurious crash.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + rename).

    The temporary file carries the writer's pid in its name, so two
    concurrent writers cannot clobber each other's staging file; the
    last ``os.replace`` wins, which is the usual last-writer-wins
    semantics of a plain write, minus the torn-file failure mode.  On
    any error the staging file is removed and the target is untouched.
    The parent directory is fsynced after the rename, so the new file
    survives power loss, not just process death.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        fsync_dir(target.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
