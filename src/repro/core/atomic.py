"""Atomic result-file writes: write-temp-then-rename with fsync.

Every results artifact this repository leaves on disk -- ``--trace``
JSONL streams, ``--metrics`` snapshots, ``BENCH_<name>.json`` telemetry
-- must survive the writer being killed at any instant: an interrupted
run that leaves a truncated JSON file behind poisons every later
consumer (resume paths, CI ``cmp`` gates, trace reports).  The fix is
the classic WAL-adjacent recipe: write the full payload to a temporary
sibling in the *same directory* (so the final rename never crosses a
filesystem), flush and ``fsync`` it, then ``os.replace`` it over the
target.  Readers observe either the old complete file or the new
complete file, never a hybrid.

simlint rule SL008 (``atomic-result-write``) enforces that library code
routes ``*.json`` / ``*.jsonl`` results writes through this module.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + rename).

    The temporary file carries the writer's pid in its name, so two
    concurrent writers cannot clobber each other's staging file; the
    last ``os.replace`` wins, which is the usual last-writer-wins
    semantics of a plain write, minus the torn-file failure mode.  On
    any error the staging file is removed and the target is untouched.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
