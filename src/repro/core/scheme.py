"""Scheme descriptors: code parameters bound to placements and a topology.

A *scheme* is the full physical story of an EC deployment: which code runs
at which level, how pools are carved out of the datacenter, and therefore
what a stripe's failure domains look like.  The paper's four MLEC schemes
(C/C, C/D, D/C, D/D -- §2.2), four SLEC placements (§2.1/§5.1.3) and the
declustered LRC (§5.2.1) are all expressible.

These objects are pure descriptions -- they do maths about pool counts and
sizes but hold no mutable state; the simulator, the burst engine, and the
analytic models all consume them.
"""

from __future__ import annotations

import dataclasses

from .config import DatacenterConfig, LRCParams, MLECParams, SLECParams
from .types import Level, Placement

__all__ = [
    "MLECScheme",
    "SLECScheme",
    "LRCScheme",
    "mlec_scheme_from_name",
    "MLEC_SCHEME_NAMES",
]

#: The four canonical MLEC scheme names, in the paper's presentation order.
MLEC_SCHEME_NAMES = ("C/C", "C/D", "D/C", "D/D")


@dataclasses.dataclass(frozen=True)
class MLECScheme:
    """An MLEC code bound to placements and a datacenter topology.

    Attributes
    ----------
    params:
        The ``(k_n+p_n)/(k_l+p_l)`` code parameters.
    network_placement / local_placement:
        Clustered or declustered placement at each level.
    dc:
        Datacenter topology.

    Notes
    -----
    Pool geometry (paper §2.2 and §3):

    * local-Cp pool: exactly ``k_l+p_l`` disks; the enclosure size must be a
      multiple of the pool size.
    * local-Dp pool: one pool per enclosure (all its disks).
    * network-Cp: racks are grouped ``k_n+p_n`` at a time; the local pools
      at the same position across a group form one network pool, so the
      rack count must be a multiple of ``k_n+p_n``.
    * network-Dp: the whole system is one network pool; a network stripe's
      local stripes land in ``k_n+p_n`` distinct racks.
    """

    params: MLECParams
    network_placement: Placement
    local_placement: Placement
    dc: DatacenterConfig = dataclasses.field(default_factory=DatacenterConfig)

    def __post_init__(self) -> None:
        if self.local_placement is Placement.CLUSTERED:
            if self.dc.disks_per_enclosure % self.params.n_l:
                raise ValueError(
                    f"enclosure size {self.dc.disks_per_enclosure} is not a "
                    f"multiple of the local-Cp pool size {self.params.n_l}"
                )
        else:
            if self.dc.disks_per_enclosure < self.params.n_l:
                raise ValueError(
                    "a local-Dp pool (one enclosure) must hold at least one "
                    f"stripe: {self.dc.disks_per_enclosure} < {self.params.n_l}"
                )
        if self.network_placement is Placement.CLUSTERED:
            if self.dc.racks % self.params.n_n:
                raise ValueError(
                    f"rack count {self.dc.racks} is not a multiple of the "
                    f"network-Cp group size {self.params.n_n}"
                )
        else:
            if self.dc.racks < self.params.n_n:
                raise ValueError(
                    f"need at least {self.params.n_n} racks for a network "
                    f"stripe, have {self.dc.racks}"
                )

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Short scheme name in the paper's notation, e.g. ``"C/D"``."""
        return f"{self.network_placement}/{self.local_placement}"

    # ------------------------------------------------------------------
    # Local-level pool geometry
    # ------------------------------------------------------------------
    @property
    def local_pool_disks(self) -> int:
        """Disks per local pool: ``k_l+p_l`` for Cp, the enclosure for Dp."""
        if self.local_placement is Placement.CLUSTERED:
            return self.params.n_l
        return self.dc.disks_per_enclosure

    @property
    def local_pools_per_enclosure(self) -> int:
        if self.local_placement is Placement.CLUSTERED:
            return self.dc.disks_per_enclosure // self.params.n_l
        return 1

    @property
    def local_pools_per_rack(self) -> int:
        return self.local_pools_per_enclosure * self.dc.enclosures_per_rack

    @property
    def total_local_pools(self) -> int:
        return self.local_pools_per_rack * self.dc.racks

    @property
    def local_pool_capacity_bytes(self) -> int:
        """Raw capacity of one local pool (paper Table 2's "pool size")."""
        return self.local_pool_disks * self.dc.disk_capacity_bytes

    # ------------------------------------------------------------------
    # Network-level pool geometry
    # ------------------------------------------------------------------
    @property
    def network_group_racks(self) -> int:
        """Racks per network pool group (all racks for Dp)."""
        if self.network_placement is Placement.CLUSTERED:
            return self.params.n_n
        return self.dc.racks

    @property
    def network_groups(self) -> int:
        """Number of disjoint network pool groups in the system."""
        return self.dc.racks // self.network_group_racks

    # ------------------------------------------------------------------
    # Failure-tolerance primitives
    # ------------------------------------------------------------------
    @property
    def catastrophic_disk_threshold(self) -> int:
        """Simultaneous disk failures that make a local pool catastrophic.

        ``p_l + 1`` for both placements: a Cp pool's stripes span all its
        disks, and under the standard declustering assumption any ``p_l+1``
        disks of a Dp pool co-host some stripe's chunks.
        """
        return self.params.p_l + 1

    @property
    def data_loss_pool_threshold(self) -> int:
        """Catastrophic local pools in one network pool that lose data."""
        return self.params.p_n + 1

    def local_stripes_per_pool(self) -> int:
        """Local stripes stored in one full local pool."""
        chunks = self.local_pool_disks * self.dc.chunks_per_disk
        return chunks // self.params.n_l

    def network_stripes_total(self) -> int:
        """Network stripes stored in the full system."""
        total_chunks = self.dc.total_disks * self.dc.chunks_per_disk
        return total_chunks // (self.params.n_n * self.params.n_l)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.params} {self.name}"


@dataclasses.dataclass(frozen=True)
class SLECScheme:
    """A single-level EC bound to a placement level and discipline.

    The four variants of the paper: local-Cp, local-Dp, network-Cp and
    network-Dp (Figure 2a/b and §5.1.3).
    """

    params: SLECParams
    level: Level
    placement: Placement
    dc: DatacenterConfig = dataclasses.field(default_factory=DatacenterConfig)

    def __post_init__(self) -> None:
        if self.level is Level.LOCAL:
            if self.placement is Placement.CLUSTERED:
                if self.dc.disks_per_enclosure % self.params.n:
                    raise ValueError(
                        "enclosure size must be a multiple of k+p for local-Cp"
                    )
            elif self.dc.disks_per_enclosure < self.params.n:
                raise ValueError("enclosure too small for one stripe")
        else:
            if self.placement is Placement.CLUSTERED:
                if self.dc.racks % self.params.n:
                    raise ValueError(
                        "rack count must be a multiple of k+p for network-Cp"
                    )
            elif self.dc.racks < self.params.n:
                raise ValueError("need at least k+p racks for network SLEC")

    @property
    def name(self) -> str:
        loc = "Loc" if self.level is Level.LOCAL else "Net"
        return f"{loc}-{self.placement}p-S"

    @property
    def pool_disks(self) -> int:
        """Disks per pool.

        Local-Cp: ``k+p``.  Local-Dp: an enclosure.  Network-Cp: one disk in
        each of ``k+p`` racks.  Network-Dp: the whole system.
        """
        if self.level is Level.LOCAL:
            if self.placement is Placement.CLUSTERED:
                return self.params.n
            return self.dc.disks_per_enclosure
        if self.placement is Placement.CLUSTERED:
            return self.params.n
        return self.dc.total_disks

    @property
    def tolerates_rack_failure(self) -> bool:
        """Network SLEC spreads chunks across racks; local SLEC does not."""
        return self.level is Level.NETWORK

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.params} {self.name}"


@dataclasses.dataclass(frozen=True)
class LRCScheme:
    """A ``(k, l, r)`` LRC with one-level declustered placement (§5.2.1).

    Every chunk of a stripe lands in a separate rack; the paper found no
    deployed clustered LRC, so declustered is the only placement here.
    """

    params: LRCParams
    dc: DatacenterConfig = dataclasses.field(default_factory=DatacenterConfig)

    def __post_init__(self) -> None:
        if self.dc.racks < self.params.n:
            raise ValueError(
                f"need at least {self.params.n} racks for stripe width"
            )

    @property
    def name(self) -> str:
        return "LRC-Dp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.params} {self.name}"


def mlec_scheme_from_name(
    name: str,
    params: MLECParams,
    dc: DatacenterConfig | None = None,
) -> MLECScheme:
    """Build one of the four canonical MLEC schemes from its short name.

    ``name`` is e.g. ``"C/D"`` (case-insensitive): network placement first,
    local placement second, as in the paper.
    """
    key = name.strip().upper()
    if key not in MLEC_SCHEME_NAMES:
        raise ValueError(f"unknown MLEC scheme {name!r}; expected one of "
                         f"{MLEC_SCHEME_NAMES}")
    net, loc = key.split("/")
    return MLECScheme(
        params=params,
        network_placement=Placement(net),
        local_placement=Placement(loc),
        dc=dc if dc is not None else DatacenterConfig(),
    )
