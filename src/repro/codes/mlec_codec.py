"""Two-level MLEC codec: the byte-level ground truth for the whole library.

A ``(k_n+p_n)/(k_l+p_l)`` MLEC stripe (paper §2.1) is, algebraically, a
*product code*: arrange the stripe as a grid with one row per local stripe
(``k_n+p_n`` rows) and one column per local chunk position (``k_l+p_l``
columns).  Every row is a valid RS(k_l, p_l) codeword (local encoding) and,
because GF-linear encodings commute, every column is a valid RS(k_n, p_n)
codeword (network encoding).  The commutation means "local parity of the
network parities" equals "network parity of the local parities", so the
bottom-right p_n x p_l corner is consistent both ways -- exactly how a real
deployment's RBOD controllers and network EC layer interact.

Recovery therefore proceeds as iterative row/column repair, and the fixed
point reproduces the paper's failure taxonomy (Table 1):

* a row with <= p_l erasures is a *locally-recoverable* local stripe;
* a row with  > p_l erasures is a *lost* local stripe;
* the network stripe is declared lost when more than p_n rows are lost.

The taxonomy's loss condition is *conservative* with respect to true
product-code decodability: if at most p_n rows are lost, every column has at
most p_n erasures after local repairs, so iterative decoding always succeeds
(the guaranteed direction, property-tested against actual bytes).  When more
than p_n rows are lost, column repairs can still occasionally rescue the
stripe if the lost rows' erasures fall in mostly-disjoint columns -- the
paper (and every deployed MLEC system it describes) does not exploit this,
because local pools are declared lost as units, so we follow the paper's
definition in all durability analyses.

"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.arrays import AnyArray

from .reed_solomon import ReedSolomon

__all__ = ["MLECCodec", "DecodeReport"]


class DecodeReport:
    """Accounting of a :meth:`MLECCodec.decode` run.

    Attributes
    ----------
    local_repairs:
        Number of chunks rebuilt by row (local) decoding.
    network_repairs:
        Number of chunks rebuilt by column (network) decoding.
    rounds:
        Iterations of the row/column sweep until the fixed point.
    """

    def __init__(self) -> None:
        self.local_repairs = 0
        self.network_repairs = 0
        self.rounds = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecodeReport(local={self.local_repairs}, "
            f"network={self.network_repairs}, rounds={self.rounds})"
        )


class MLECCodec:
    """A ``(k_n+p_n)/(k_l+p_l)`` multi-level erasure code.

    Parameters
    ----------
    k_n, p_n:
        Network-level data / parity counts (rows of the product grid).
    k_l, p_l:
        Local-level data / parity counts (columns of the product grid).

    Examples
    --------
    The paper's running example is a (2+1)/(2+1) MLEC (Figure 2c):

    >>> codec = MLECCodec(2, 1, 2, 1)
    >>> data = np.arange(2 * 2 * 4, dtype=np.uint8).reshape(4, 4)
    >>> grid = codec.encode(data)
    >>> grid.shape      # (k_n+p_n, k_l+p_l, chunk_len)
    (3, 3, 4)
    """

    def __init__(self, k_n: int, p_n: int, k_l: int, p_l: int) -> None:
        self.k_n, self.p_n = k_n, p_n
        self.k_l, self.p_l = k_l, p_l
        self.network_code = ReedSolomon(k_n, p_n)
        self.local_code = ReedSolomon(k_l, p_l)
        self.n_rows = k_n + p_n
        self.n_cols = k_l + p_l

    @property
    def data_chunks(self) -> int:
        """User data chunks per full MLEC stripe (k_n * k_l)."""
        return self.k_n * self.k_l

    @property
    def total_chunks(self) -> int:
        """Total chunks per full MLEC stripe ((k_n+p_n) * (k_l+p_l))."""
        return self.n_rows * self.n_cols

    @property
    def storage_overhead(self) -> float:
        """Parity space overhead: total/data - 1."""
        return self.total_chunks / self.data_chunks - 1.0

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, data: AnyArray) -> AnyArray:
        """Encode user data into the full product grid.

        Parameters
        ----------
        data:
            uint8 array of shape ``(k_n * k_l, chunk_len)``; row-major by
            network chunk (the first ``k_l`` rows form network chunk 0).

        Returns
        -------
        numpy.ndarray
            uint8 grid of shape ``(k_n+p_n, k_l+p_l, chunk_len)``.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.data_chunks:
            raise ValueError(
                f"data must have shape ({self.data_chunks}, chunk_len)"
            )
        chunk_len = data.shape[1]
        grid = np.zeros((self.n_rows, self.n_cols, chunk_len), dtype=np.uint8)

        # Step 1 (storage server): split into network data chunks and build
        # the p_n network parity chunks column-position by column-position.
        local_data = data.reshape(self.k_n, self.k_l, chunk_len)
        for col in range(self.k_l):
            grid[:, col, :] = self.network_code.encode(local_data[:, col, :])

        # Step 2 (each enclosure/RBOD): locally encode every row.
        for row in range(self.n_rows):
            grid[row] = self.local_code.encode(grid[row, : self.k_l, :])
        return grid

    def extract_data(self, grid: AnyArray) -> AnyArray:
        """Pull the user data back out of a (fully repaired) grid."""
        grid = self._check_grid(grid)
        return grid[: self.k_n, : self.k_l, :].reshape(self.data_chunks, -1)

    # ------------------------------------------------------------------
    # Failure classification (Table 1)
    # ------------------------------------------------------------------
    def lost_rows(self, erasures: Iterable[tuple[int, int]]) -> list[int]:
        """Rows (local stripes) with more than p_l erased chunks."""
        counts = np.zeros(self.n_rows, dtype=int)
        for row, _col in self._check_erasures(erasures):
            counts[row] += 1
        return [int(r) for r in np.nonzero(counts > self.p_l)[0]]

    def is_recoverable(self, erasures: Iterable[tuple[int, int]]) -> bool:
        """Paper's data-loss condition: <= p_n lost local stripes."""
        return len(self.lost_rows(erasures)) <= self.p_n

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        grid: AnyArray,
        erasures: Iterable[tuple[int, int]],
        report: DecodeReport | None = None,
    ) -> AnyArray:
        """Iteratively repair a grid with erased ``(row, col)`` cells.

        Alternates local (row) and network (column) repair sweeps until
        everything is rebuilt, mirroring how the R_MIN repair method uses
        both levels.  Raises ``ValueError`` on an unrecoverable pattern.
        """
        grid = self._check_grid(grid).copy()
        erased = set(self._check_erasures(erasures))
        if report is None:
            report = DecodeReport()

        while erased:
            report.rounds += 1
            progressed = False

            # Local sweep: any row with <= p_l erasures repairs in place.
            for row in range(self.n_rows):
                lost = sorted(c for (r, c) in erased if r == row)
                if lost and len(lost) <= self.p_l:
                    grid[row] = self.local_code.decode(grid[row], lost)
                    erased -= {(row, c) for c in lost}
                    report.local_repairs += len(lost)
                    progressed = True

            if not erased:
                break

            # Network sweep: any column with <= p_n erasures repairs.
            for col in range(self.n_cols):
                lost = sorted(r for (r, c) in erased if c == col)
                if lost and len(lost) <= self.p_n:
                    grid[:, col, :] = self.network_code.decode(
                        grid[:, col, :], lost
                    )
                    erased -= {(r, col) for r in lost}
                    report.network_repairs += len(lost)
                    progressed = True

            if not progressed:
                raise ValueError(
                    f"unrecoverable erasure pattern; {len(erased)} cells stuck"
                )
        return grid

    # ------------------------------------------------------------------
    def _check_grid(self, grid: AnyArray) -> AnyArray:
        grid = np.asarray(grid, dtype=np.uint8)
        if grid.ndim != 3 or grid.shape[:2] != (self.n_rows, self.n_cols):
            raise ValueError(
                f"grid must have shape ({self.n_rows}, {self.n_cols}, chunk_len)"
            )
        return grid

    def _check_erasures(
        self, erasures: Iterable[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        out = []
        for row, col in erasures:
            row, col = int(row), int(col)
            if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
                raise ValueError(f"cell ({row}, {col}) outside the grid")
            out.append((row, col))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MLECCodec(({self.k_n}+{self.p_n})/({self.k_l}+{self.p_l}))"
        )
