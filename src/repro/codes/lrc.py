"""Azure-style Locally Repairable Codes (LRC) over GF(2^8).

A ``(k, l, r)`` LRC (notation of Huang et al., the paper's reference [23])
splits ``k`` data chunks into ``l`` local groups of ``k/l`` chunks, computes
one XOR local parity per group, and ``r`` global parities over all ``k``
data chunks.  Total stripe width is ``n = k + l + r``.

Two recoverability predicates are provided:

* :meth:`AzureLRC.is_recoverable` -- exact, by rank of the surviving rows of
  the concrete generator matrix.  This is the ground truth for *this* code.
* :meth:`AzureLRC.is_information_theoretically_recoverable` -- the standard
  "peeling + r globals" criterion satisfied by *maximally recoverable* LRCs:
  after each local group repairs one erasure, at most ``r`` erasures may
  remain.  The fast analytical models use this predicate; for the
  configurations studied in the paper the two agree on all patterns up to
  the tolerance region boundary (validated in tests).

Chunk layout within a stripe: data chunks ``0..k-1`` (group ``g`` owns the
contiguous slice ``[g*k/l, (g+1)*k/l)``), then local parities ``k..k+l-1``
(one per group, in group order), then global parities ``k+l..n-1``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.arrays import AnyArray

from .gf256 import cauchy_matrix, gf_matmul, gf_solve

__all__ = ["AzureLRC"]


class AzureLRC:
    """A ``(k, l, r)`` locally repairable code.

    Parameters
    ----------
    k:
        Number of data chunks; must be divisible by ``l``.
    l:
        Number of local groups (one XOR parity each).
    r:
        Number of global parities.

    Examples
    --------
    The paper's Figure 14 shows a (4, 2, 2) LRC: 4 data chunks in 2 local
    groups plus 2 global parities.

    >>> lrc = AzureLRC(4, 2, 2)
    >>> lrc.n
    8
    >>> lrc.group_of(1), lrc.group_of(3)
    (0, 1)
    """

    def __init__(self, k: int, l: int, r: int) -> None:
        if k <= 0 or l <= 0 or r < 0:
            raise ValueError("k, l must be positive and r non-negative")
        if k % l != 0:
            raise ValueError(f"k={k} must be divisible by l={l}")
        if k + l + r > 255:
            raise ValueError("k + l + r must be <= 255 for GF(256)")
        self.k = k
        self.l = l
        self.r = r
        self.n = k + l + r
        self.group_size = k // l
        self.generator = self._build_generator()

    def _build_generator(self) -> AnyArray:
        """Generator matrix of shape (n, k): stripe = G @ data."""
        gen = np.zeros((self.n, self.k), dtype=np.uint8)
        gen[: self.k] = np.eye(self.k, dtype=np.uint8)
        for g in range(self.l):
            lo, hi = g * self.group_size, (g + 1) * self.group_size
            gen[self.k + g, lo:hi] = 1  # XOR local parity
        if self.r:
            gen[self.k + self.l :] = cauchy_matrix(self.r, self.k)
        return gen

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    def group_of(self, index: int) -> int | None:
        """Local group of a chunk index, or ``None`` for global parities."""
        if not 0 <= index < self.n:
            raise ValueError(f"chunk index {index} out of range [0, {self.n})")
        if index < self.k:
            return index // self.group_size
        if index < self.k + self.l:
            return index - self.k
        return None

    def group_members(self, group: int) -> list[int]:
        """All chunk indices (data + local parity) of a local group."""
        if not 0 <= group < self.l:
            raise ValueError(f"group {group} out of range [0, {self.l})")
        lo = group * self.group_size
        return list(range(lo, lo + self.group_size)) + [self.k + group]

    @property
    def storage_overhead(self) -> float:
        """Parity space overhead ``(l + r) / k``."""
        return (self.l + self.r) / self.k

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, data: AnyArray) -> AnyArray:
        """Encode ``(k, chunk_len)`` data into an ``(n, chunk_len)`` stripe."""
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(f"data must have shape ({self.k}, chunk_len)")
        return gf_matmul(self.generator, data)

    def is_recoverable(self, erasures: Iterable[int]) -> bool:
        """Exact recoverability of an erasure pattern for this code.

        True iff the surviving generator rows span the full data space,
        i.e. the erased chunks are a linear function of the survivors.
        """
        erased = self._check_erasures(erasures)
        surviving = [i for i in range(self.n) if i not in erased]
        if len(surviving) < self.k:
            return False
        from .gf256 import gf_mat_rank

        return gf_mat_rank(self.generator[surviving]) == self.k

    def is_information_theoretically_recoverable(
        self, erasures: Iterable[int]
    ) -> bool:
        """Peeling criterion: the upper bound any (k, l, r) LRC can reach.

        Each local group independently repairs at most one erasure among
        its members; the ``r`` global parities then cover at most ``r``
        remaining erasures.  Maximally recoverable LRCs meet this bound.
        """
        erased = self._check_erasures(erasures)
        remaining = len(erased)
        for g in range(self.l):
            if any(self.group_of(e) == g for e in erased):
                remaining -= 1
        return remaining <= self.r

    def decode(self, stripe: AnyArray, erasures: Iterable[int]) -> AnyArray:
        """Reconstruct a stripe, peeling local groups before global decode.

        The two-phase structure mirrors production LRC repair: single
        failures inside a group are XOR-repaired from ``k/l`` chunks; only
        the residue falls back to a global solve.

        Raises
        ------
        ValueError
            If the pattern is not recoverable by this code.
        """
        stripe = np.asarray(stripe, dtype=np.uint8).copy()
        erased = self._check_erasures(erasures)
        if not erased:
            return stripe

        # Phase 1: local peeling.  Repeats until no group has exactly one
        # erasure (a group repaired here can never re-acquire erasures, but
        # the loop keeps the logic obviously correct).
        progressed = True
        while progressed and erased:
            progressed = False
            for g in range(self.l):
                members = self.group_members(g)
                lost = [m for m in members if m in erased]
                if len(lost) == 1:
                    target = lost[0]
                    others = [m for m in members if m != target]
                    stripe[target] = np.bitwise_xor.reduce(stripe[others], axis=0)
                    erased.discard(target)
                    progressed = True

        if not erased:
            return stripe

        # Phase 2: global solve from any k independent surviving rows.
        surviving = [i for i in range(self.n) if i not in erased]
        rows = self._independent_rows(surviving)
        if rows is None:
            raise ValueError(f"erasure pattern {sorted(erased)} is unrecoverable")
        data = gf_solve(self.generator[rows], stripe[rows])
        full = gf_matmul(self.generator, data)
        for e in erased:
            stripe[e] = full[e]
        return stripe

    def repair_reads(self, erasures: Iterable[int]) -> int:
        """Number of chunk reads needed to repair an erasure pattern.

        Locality is what LRC buys: a single failure costs ``k/l`` reads
        instead of ``k``.  Used by the Section 5.2.4 traffic analysis.
        """
        erased = self._check_erasures(erasures)
        if not erased:
            return 0
        reads = 0
        # Simulate the peeling phase to count local repairs.
        pending = set(erased)
        progressed = True
        while progressed and pending:
            progressed = False
            for g in range(self.l):
                members = self.group_members(g)
                lost = [m for m in members if m in pending]
                if len(lost) == 1:
                    reads += self.group_size  # read the k/l survivors
                    pending.discard(lost[0])
                    progressed = True
        if pending:
            reads += self.k  # global decode reads k chunks
        return reads

    # ------------------------------------------------------------------
    def _independent_rows(self, candidates: list[int]) -> list[int] | None:
        """Pick k row indices from candidates whose generator rows span."""
        basis: list[int] = []
        mat = np.zeros((0, self.k), dtype=np.uint8)
        from .gf256 import gf_mat_rank

        for idx in candidates:
            trial = np.vstack([mat, self.generator[idx : idx + 1]])
            if gf_mat_rank(trial) > mat.shape[0]:
                mat = trial
                basis.append(idx)
                if len(basis) == self.k:
                    return basis
        return None

    def _check_erasures(self, erasures: Iterable[int]) -> set[int]:
        erased = set(int(e) for e in erasures)
        for e in erased:
            if not 0 <= e < self.n:
                raise ValueError(f"erasure index {e} out of range [0, {self.n})")
        return erased

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AzureLRC(k={self.k}, l={self.l}, r={self.r})"
