"""Vectorized GF(2^16) arithmetic for wide-stripe codes.

GF(2^8) caps a Reed-Solomon stripe at 255 chunks.  The wide-stripe trend
the paper cites (Kadekodi et al., FAST '23 -- its reference [48]) pushes
past that, so this module provides the 16-bit field: stripes up to 65,535
chunks wide.

Design differences from :mod:`repro.codes.gf256`:

* a full multiplication table would be 8 GiB, so multiplication goes
  through exp/log tables (256 KiB each) with a vectorized modular index;
* symbols are ``uint16``; byte payloads are viewed as ``uint16`` arrays
  (little-endian pairs), which is exactly how wide-stripe systems treat
  data.

The primitive polynomial is ``x^16 + x^12 + x^3 + x + 1`` (0x1100B), the
standard choice (CCSDS / DVB).
"""

from __future__ import annotations

import numpy as np

from ..core.arrays import AnyArray

__all__ = [
    "PRIMITIVE_POLY_16",
    "ORDER",
    "gf16_mul",
    "gf16_inv",
    "gf16_pow",
    "gf16_matmul",
    "gf16_mat_inv",
    "gf16_mat_rank",
    "cauchy_matrix_16",
    "rs16_generator_matrix",
]

#: x^16 + x^12 + x^3 + x + 1.
PRIMITIVE_POLY_16 = 0x1100B

#: Field size.
ORDER = 1 << 16

_MASK = ORDER - 1  # 65535: the multiplicative group order


def _build_tables() -> tuple[AnyArray, AnyArray]:
    exp = np.zeros(2 * _MASK, dtype=np.uint16)
    log = np.zeros(ORDER, dtype=np.int32)
    x = 1
    for i in range(_MASK):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & ORDER:
            x ^= PRIMITIVE_POLY_16
    exp[_MASK:] = exp[:_MASK]
    return exp, log


EXP16, LOG16 = _build_tables()


def gf16_mul(a: AnyArray, b: AnyArray) -> AnyArray:
    """Element-wise GF(2^16) multiplication with broadcasting."""
    a = np.asarray(a, dtype=np.uint16)
    b = np.asarray(b, dtype=np.uint16)
    out = EXP16[LOG16[a] + LOG16[b]]
    # Zero annihilates; the table path mishandles it (log 0 is a sentinel).
    return np.where((a == 0) | (b == 0), np.uint16(0), out)


def gf16_inv(a: AnyArray) -> AnyArray:
    """Element-wise multiplicative inverse."""
    a = np.asarray(a, dtype=np.uint16)
    if np.any(a == 0):
        raise ZeroDivisionError("zero has no inverse in GF(2^16)")
    return EXP16[_MASK - LOG16[a]]


def gf16_pow(a: AnyArray, n: int) -> AnyArray:
    """Element-wise power ``a ** n`` for ``n >= 0`` (``0**0 == 1``)."""
    a = np.asarray(a, dtype=np.uint16)
    if n < 0:
        raise ValueError("negative exponents not supported")
    if n == 0:
        return np.ones_like(a)
    out = np.zeros_like(a)
    nz = a != 0
    out[nz] = EXP16[(LOG16[a[nz]].astype(np.int64) * n) % _MASK]
    return out


def gf16_matmul(a: AnyArray, b: AnyArray) -> AnyArray:
    """Matrix product over GF(2^16); shapes (m, k) @ (k, n)."""
    a = np.asarray(a, dtype=np.uint16)
    b = np.asarray(b, dtype=np.uint16)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.uint16)
    for j in range(k):
        col = a[:, j]
        row = b[j]
        prod = EXP16[LOG16[col][:, None] + LOG16[row][None, :]]
        prod = np.where((col[:, None] == 0) | (row[None, :] == 0),
                        np.uint16(0), prod)
        out ^= prod
    return out


def gf16_mat_inv(mat: AnyArray) -> AnyArray:
    """Gauss-Jordan inverse over GF(2^16)."""
    mat = np.asarray(mat, dtype=np.uint16)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError("matrix must be square")
    n = mat.shape[0]
    aug = np.concatenate([mat.copy(), np.eye(n, dtype=np.uint16)], axis=1)
    for col in range(n):
        pivots = np.nonzero(aug[col:, col])[0]
        if pivots.size == 0:
            raise np.linalg.LinAlgError("singular matrix over GF(2^16)")
        pivot = col + int(pivots[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        aug[col] = gf16_mul(aug[col], gf16_inv(aug[col, col]))
        factors = aug[:, col].copy()
        factors[col] = 0
        elim = gf16_mul(factors[:, None], aug[col][None, :])
        aug ^= elim
    return aug[:, n:]


def gf16_mat_rank(mat: AnyArray) -> int:
    """Rank over GF(2^16) by elimination."""
    mat = np.asarray(mat, dtype=np.uint16).copy()
    rows, cols = mat.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivots = np.nonzero(mat[rank:, col])[0]
        if pivots.size == 0:
            continue
        pivot = rank + int(pivots[0])
        if pivot != rank:
            mat[[rank, pivot]] = mat[[pivot, rank]]
        mat[rank] = gf16_mul(mat[rank], gf16_inv(mat[rank, col]))
        factors = mat[:, col].copy()
        factors[rank] = 0
        mat ^= gf16_mul(factors[:, None], mat[rank][None, :])
        rank += 1
    return rank


def cauchy_matrix_16(rows: int, cols: int) -> AnyArray:
    """Cauchy matrix over GF(2^16): every square submatrix invertible."""
    if rows + cols > ORDER:
        raise ValueError(f"rows + cols must be <= {ORDER}")
    x = np.arange(cols, cols + rows, dtype=np.uint16)
    y = np.arange(0, cols, dtype=np.uint16)
    return gf16_inv(np.bitwise_xor(x[:, None], y[None, :]))


def rs16_generator_matrix(k: int, p: int) -> AnyArray:
    """Systematic MDS generator ``[I_k ; Cauchy]`` over GF(2^16)."""
    if k <= 0 or p < 0:
        raise ValueError("k must be positive and p non-negative")
    if k + p > ORDER:
        raise ValueError(f"k + p must be <= {ORDER}")
    gen = np.zeros((k + p, k), dtype=np.uint16)
    gen[:k] = np.eye(k, dtype=np.uint16)
    if p:
        gen[k:] = cauchy_matrix_16(p, k)
    return gen
