"""Encoding-throughput models (paper §5.1.1, Figure 11).

The paper measured single-core encoding throughput with Intel ISA-L on a
Xeon Gold 6240R.  Offline we substitute two things (see DESIGN.md):

* :func:`measure_encoding_throughput` -- a *live* measurement of this
  library's vectorized NumPy Reed-Solomon encoder.  Absolute numbers are
  lower than ISA-L's hand-tuned SIMD (table lookups vs GFNI), but the
  functional shape -- throughput falling with more parities ``p`` and wider
  stripes ``k`` -- is the same, which is what every cross-scheme conclusion
  rests on.

* :class:`IsalThroughputModel` -- an analytic model calibrated to the
  paper's reported scale: ``T(k, p) = min(T_max, R0 / (p * w(k)))`` with a
  quadratic cache penalty ``w(k) = 1 + (k/K0)^2``.  Calibration anchors are
  the paper's own numbers: a (28+12) SLEC at ~1 GB/s and a (17+3)/(17+3)
  MLEC at ~3 GB/s (§5.1.2 Finding 2), with the Figure 11 colour scale
  topping out around 12 GB/s.

Scheme-level costs (encoding work per user byte):

* SLEC ``(k+p)``:  ``p * w(k)`` -- every user byte feeds ``p`` parities.
* MLEC ``(k_n+p_n)/(k_l+p_l)``: ``p_n * w(k_n) + (k_n+p_n)/k_n * p_l * w(k_l)``
  -- the network stage, then local encoding of *all* local stripes
  including the network-parity ones (the 2-level discount that lets MLEC
  keep throughput at high durability).
* LRC ``(k, l, r)``: ``r * w(k) + w(k/l)`` -- wide global parities plus one
  cheap local parity pass.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..core.arrays import AnyArray
from ..core.config import GB, LRCParams, MLECParams, SLECParams
from .reed_solomon import ReedSolomon

__all__ = [
    "measure_encoding_throughput",
    "IsalThroughputModel",
]


def measure_encoding_throughput(
    k: int,
    p: int,
    chunk_bytes: int = 1 << 20,
    repeats: int = 3,
    seed: int = 0,
) -> float:
    """Measure this library's RS encoder throughput, bytes of user data/s.

    Encodes ``k`` chunks of ``chunk_bytes`` each, ``repeats`` times, and
    returns the best rate (standard practice for microbenchmarks: the
    minimum time is the least noisy estimator).
    """
    rs = ReedSolomon(k, p)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, chunk_bytes), dtype=np.uint8)
    rs.parity(data)  # warm up tables and allocator
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        rs.parity(data)
        best = min(best, time.perf_counter() - t0)
    return k * chunk_bytes / best


@dataclasses.dataclass(frozen=True)
class IsalThroughputModel:
    """Calibrated single-core ISA-L-class throughput model.

    Attributes
    ----------
    base_rate:
        ``R0``: raw parity-accumulation rate for narrow stripes, bytes/s.
    cache_knee:
        ``K0``: stripe width at which the working set starts to spill out
        of cache (the quadratic penalty doubles the cost at ``k = K0``).
    max_rate:
        Upper clamp -- narrow codes saturate the memory system rather than
        scaling unboundedly.
    """

    base_rate: float = 31.1 * GB
    cache_knee: float = 22.2
    max_rate: float = 12.0 * GB

    def cache_penalty(self, k: int) -> float:
        """``w(k)``: relative per-parity cost inflation at stripe width k."""
        if k <= 0:
            raise ValueError("k must be positive")
        return 1.0 + (k / self.cache_knee) ** 2

    # ------------------------------------------------------------------
    # Per-scheme cost (work per user byte) and throughput
    # ------------------------------------------------------------------
    def slec_cost(self, params: SLECParams) -> float:
        return params.p * self.cache_penalty(params.k)

    def mlec_cost(self, params: MLECParams) -> float:
        network = params.p_n * self.cache_penalty(params.k_n)
        inflation = params.n_n / params.k_n  # local stripes per user stripe
        local = inflation * params.p_l * self.cache_penalty(params.k_l)
        return network + local

    def lrc_cost(self, params: LRCParams) -> float:
        global_part = params.r * self.cache_penalty(params.k)
        local_part = self.cache_penalty(params.group_size)
        return global_part + local_part

    def _to_rate(self, cost: float) -> float:
        if cost <= 0:
            return self.max_rate
        return min(self.max_rate, self.base_rate / cost)

    def slec_throughput(self, params: SLECParams) -> float:
        """User bytes/s for a single-level (k+p) code."""
        return self._to_rate(self.slec_cost(params))

    def mlec_throughput(self, params: MLECParams) -> float:
        """User bytes/s for a two-level MLEC code."""
        return self._to_rate(self.mlec_cost(params))

    def lrc_throughput(self, params: LRCParams) -> float:
        """User bytes/s for a (k, l, r) LRC."""
        return self._to_rate(self.lrc_cost(params))

    def heatmap(
        self, k_values: AnyArray, p_values: AnyArray
    ) -> AnyArray:
        """Figure 11's grid: throughput[p_idx, k_idx] in bytes/s."""
        out = np.empty((len(p_values), len(k_values)))
        for i, p in enumerate(p_values):
            for j, k in enumerate(k_values):
                out[i, j] = self.slec_throughput(SLECParams(int(k), int(p)))
        return out
