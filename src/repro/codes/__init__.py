"""Erasure-coding codecs: GF(2^8) substrate, Reed-Solomon, LRC, MLEC."""

from .gf256 import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_mat_rank,
    gf_matmul,
    gf_mul,
    gf_pow,
    rs_generator_matrix,
)
from .lrc import AzureLRC
from .mlec_codec import DecodeReport, MLECCodec
from .reed_solomon import ReedSolomon
from .throughput import IsalThroughputModel, measure_encoding_throughput
from .wide_rs import WideReedSolomon

__all__ = [
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mat_inv",
    "gf_mat_rank",
    "gf_matmul",
    "gf_mul",
    "gf_pow",
    "rs_generator_matrix",
    "ReedSolomon",
    "AzureLRC",
    "MLECCodec",
    "DecodeReport",
    "IsalThroughputModel",
    "measure_encoding_throughput",
    "WideReedSolomon",
]
