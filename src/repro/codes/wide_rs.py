"""Wide-stripe Reed-Solomon over GF(2^16): stripes beyond 255 chunks.

The paper's LRC comparison cites wide locally recoverable codes (its
reference [48], Kadekodi et al., FAST '23) whose stripe widths outgrow
GF(2^8).  :class:`WideReedSolomon` is the drop-in wide variant of
:class:`repro.codes.reed_solomon.ReedSolomon`: identical API, 16-bit field,
chunk payloads interpreted as little-endian ``uint16`` symbol streams (so
chunk lengths must be even).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.arrays import AnyArray

from .gf65536 import gf16_mat_inv, gf16_matmul, rs16_generator_matrix

__all__ = ["WideReedSolomon"]


class WideReedSolomon:
    """A systematic ``(k+p)`` Reed-Solomon code over GF(2^16).

    Supports ``k + p`` up to 65,536 -- wide enough for any published
    wide-stripe configuration.

    Examples
    --------
    >>> rs = WideReedSolomon(300, 20)   # impossible over GF(2^8)
    >>> rs.n
    320
    """

    def __init__(self, k: int, p: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if p < 0:
            raise ValueError(f"p must be non-negative, got {p}")
        if k + p > 65536:
            raise ValueError("k + p must be <= 65536 for GF(2^16)")
        self.k = k
        self.p = p
        self.n = k + p
        self.generator = rs16_generator_matrix(k, p)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_symbols(data: AnyArray) -> AnyArray:
        """View byte chunks as uint16 symbol rows (validates even length)."""
        data = np.asarray(data)
        if data.dtype == np.uint16:
            return data
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.shape[-1] % 2:
            raise ValueError("chunk length must be even for 16-bit symbols")
        return data.view(np.uint16)

    def encode(self, data: AnyArray) -> AnyArray:
        """Encode ``(k, chunk_len)`` data into a ``(k+p, chunk_len)`` stripe.

        ``data`` may be uint8 (even-length chunks) or uint16; the result
        uses the same symbol width as the input view.
        """
        symbols = self._as_symbols(data)
        if symbols.ndim != 2 or symbols.shape[0] != self.k:
            raise ValueError(f"data must have shape ({self.k}, chunk_len)")
        stripe = np.empty((self.n, symbols.shape[1]), dtype=np.uint16)
        stripe[: self.k] = symbols
        if self.p:
            stripe[self.k :] = gf16_matmul(self.generator[self.k :], symbols)
        return stripe

    def is_recoverable(self, erasures: Iterable[int]) -> bool:
        """MDS: any pattern of at most ``p`` erasures is recoverable."""
        erased = self._check_erasures(erasures)
        return len(erased) <= self.p

    def decode(self, stripe: AnyArray, erasures: Iterable[int]) -> AnyArray:
        """Rebuild a stripe with the rows in ``erasures`` lost."""
        stripe = np.asarray(stripe, dtype=np.uint16)
        if stripe.ndim != 2 or stripe.shape[0] != self.n:
            raise ValueError(f"stripe must have shape ({self.n}, chunk_len)")
        erased = self._check_erasures(erasures)
        if len(erased) > self.p:
            raise ValueError(
                f"{len(erased)} erasures exceed the p={self.p} tolerance"
            )
        if not erased:
            return stripe.copy()
        surviving = [i for i in range(self.n) if i not in erased]
        rows = surviving[: self.k]
        data = gf16_matmul(gf16_mat_inv(self.generator[rows]), stripe[rows])
        return self.encode(data)

    def _check_erasures(self, erasures: Iterable[int]) -> set[int]:
        erased = set(int(e) for e in erasures)
        for e in erased:
            if not 0 <= e < self.n:
                raise ValueError(f"erasure index {e} out of range [0, {self.n})")
        return erased

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WideReedSolomon(k={self.k}, p={self.p})"
