"""Vectorized GF(2^8) finite-field arithmetic.

This module provides the Galois-field substrate used by every codec in the
library (Reed-Solomon, LRC, and the two-level MLEC codec).  The paper's
authors used Intel ISA-L for encoding; we build the equivalent functionality
in pure NumPy so the whole stack is self-contained and runs anywhere.

The field is GF(2^8) with the primitive polynomial ``x^8 + x^4 + x^3 + x^2 +
1`` (0x11D), the same polynomial used by ISA-L, Jerasure, and most storage
systems.  Multiplication is implemented with exp/log tables so that bulk
operations vectorize: ``exp[(log[a] + log[b]) % 255]``.

All public functions accept and return ``numpy.uint8`` arrays (scalars are
fine too) and broadcast like normal NumPy ufuncs.
"""

from __future__ import annotations

import numpy as np

from ..core.arrays import AnyArray

__all__ = [
    "PRIMITIVE_POLY",
    "GF_ORDER",
    "EXP_TABLE",
    "LOG_TABLE",
    "INV_TABLE",
    "MUL_TABLE",
    "gf_add",
    "gf_sub",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_poly_eval",
    "gf_matmul",
    "gf_mat_inv",
    "gf_mat_rank",
    "gf_solve",
    "vandermonde_matrix",
    "cauchy_matrix",
    "rs_generator_matrix",
]

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY: int = 0x11D

#: Number of elements in the field.
GF_ORDER: int = 256


def _build_tables() -> tuple[AnyArray, AnyArray]:
    """Build exp/log tables for the field.

    ``EXP_TABLE`` has length 512 so that ``EXP_TABLE[log a + log b]`` never
    needs an explicit modulo: log values are < 255 each, so their sum is
    < 510.
    """
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Extend so that index arithmetic up to 509 wraps correctly.
    exp[255:510] = exp[0:255]
    exp[510:] = exp[0:2]
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()

#: Multiplicative inverse table; INV_TABLE[0] is 0 as a sentinel (never use).
INV_TABLE = np.zeros(256, dtype=np.uint8)
INV_TABLE[1:] = EXP_TABLE[255 - LOG_TABLE[np.arange(1, 256)]]

#: Full 256x256 multiplication table.  64 KiB; used for the hottest loops.
_a = np.arange(256, dtype=np.int32)
MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
MUL_TABLE[1:, 1:] = EXP_TABLE[(LOG_TABLE[_a[1:, None]] + LOG_TABLE[_a[None, 1:]]) % 255]
del _a


def gf_add(a: AnyArray, b: AnyArray) -> AnyArray:
    """Field addition (XOR).  Identical to subtraction in GF(2^m)."""
    return np.bitwise_xor(a, b)


# In characteristic-2 fields subtraction *is* addition.
gf_sub = gf_add


def gf_mul(a: AnyArray, b: AnyArray) -> AnyArray:
    """Element-wise field multiplication with NumPy broadcasting."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return MUL_TABLE[a, b]


def gf_inv(a: AnyArray) -> AnyArray:
    """Element-wise multiplicative inverse.

    Raises
    ------
    ZeroDivisionError
        If any element is zero.
    """
    a = np.asarray(a, dtype=np.uint8)
    if np.any(a == 0):
        raise ZeroDivisionError("zero has no multiplicative inverse in GF(256)")
    return INV_TABLE[a]


def gf_div(a: AnyArray, b: AnyArray) -> AnyArray:
    """Element-wise field division ``a / b``.

    Raises
    ------
    ZeroDivisionError
        If any element of ``b`` is zero.
    """
    return gf_mul(a, gf_inv(b))


def gf_pow(a: AnyArray, n: int) -> AnyArray:
    """Element-wise field exponentiation ``a ** n`` for integer ``n >= 0``.

    ``0 ** 0`` is defined as 1, matching the usual polynomial-evaluation
    convention.
    """
    a = np.asarray(a, dtype=np.uint8)
    if n < 0:
        raise ValueError("negative exponents not supported; invert first")
    if n == 0:
        return np.ones_like(a)
    out = np.zeros_like(a)
    nz = a != 0
    out[nz] = EXP_TABLE[(LOG_TABLE[a[nz]].astype(np.int64) * n) % 255]
    return out


def gf_poly_eval(coeffs: AnyArray, x: AnyArray) -> AnyArray:
    """Evaluate a polynomial with ``coeffs`` (highest degree first) at ``x``.

    Horner's rule, vectorized over ``x``.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    x = np.asarray(x, dtype=np.uint8)
    acc = np.zeros_like(x)
    for c in coeffs:
        acc = gf_add(gf_mul(acc, x), c)
    return acc


def gf_matmul(a: AnyArray, b: AnyArray) -> AnyArray:
    """Matrix multiplication over GF(2^8).

    ``a`` has shape (m, k), ``b`` has shape (k, n); the result has shape
    (m, n).  The inner loop runs over ``k`` (typically small: the stripe
    width), with full (m, n) blocks XOR-accumulated per step, which is the
    vectorization-friendly order for encoding wide data blocks.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.uint8)
    for j in range(k):
        # Broadcast one column of coefficients against one row of data.
        out ^= MUL_TABLE[a[:, j][:, None], b[j][None, :]]
    return out


def gf_mat_inv(mat: AnyArray) -> AnyArray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises
    ------
    np.linalg.LinAlgError
        If the matrix is singular.
    """
    mat = np.asarray(mat, dtype=np.uint8)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError("matrix must be square")
    n = mat.shape[0]
    aug = np.concatenate([mat.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        aug[col] = gf_mul(aug[col], INV_TABLE[aug[col, col]])
        # Eliminate the column everywhere else in one vectorized sweep.
        factors = aug[:, col].copy()
        factors[col] = 0
        aug ^= MUL_TABLE[factors[:, None], aug[col][None, :]]
    return aug[:, n:]


def gf_mat_rank(mat: AnyArray) -> int:
    """Rank of a matrix over GF(2^8) by Gaussian elimination."""
    mat = np.asarray(mat, dtype=np.uint8).copy()
    if mat.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    rows, cols = mat.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_rows = np.nonzero(mat[rank:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = rank + int(pivot_rows[0])
        if pivot != rank:
            mat[[rank, pivot]] = mat[[pivot, rank]]
        mat[rank] = gf_mul(mat[rank], INV_TABLE[mat[rank, col]])
        factors = mat[:, col].copy()
        factors[rank] = 0
        mat ^= MUL_TABLE[factors[:, None], mat[rank][None, :]]
        rank += 1
    return rank


def gf_solve(a: AnyArray, b: AnyArray) -> AnyArray:
    """Solve ``a @ x = b`` over GF(2^8) for square non-singular ``a``.

    ``b`` may be a vector or a matrix of right-hand sides.
    """
    b = np.asarray(b, dtype=np.uint8)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    x = gf_matmul(gf_mat_inv(a), b)
    return x[:, 0] if squeeze else x


def vandermonde_matrix(rows: int, cols: int) -> AnyArray:
    """Vandermonde matrix V[i, j] = alpha_i ** j with alpha_i = i + 1.

    Using distinct non-zero evaluation points 1..rows keeps every square
    submatrix of the *encoding* construction well-conditioned for the sizes
    used by storage codes.  (The systematic generator built from it in
    :func:`rs_generator_matrix` is what guarantees MDS behaviour.)
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if rows >= GF_ORDER:
        raise ValueError("at most 255 distinct evaluation points exist")
    alphas = np.arange(1, rows + 1, dtype=np.uint8)
    out = np.empty((rows, cols), dtype=np.uint8)
    for j in range(cols):
        out[:, j] = gf_pow(alphas, j)
    return out


def cauchy_matrix(rows: int, cols: int) -> AnyArray:
    """Cauchy matrix C[i, j] = 1 / (x_i + y_j) with disjoint x, y sets.

    Every square submatrix of a Cauchy matrix is non-singular, which makes
    ``[I ; C]`` an MDS generator directly -- this is the construction used
    for the parity rows of our Reed-Solomon codes.
    """
    if rows + cols > GF_ORDER:
        raise ValueError(f"rows + cols must be <= {GF_ORDER}")
    x = np.arange(cols, cols + rows, dtype=np.uint8)
    y = np.arange(0, cols, dtype=np.uint8)
    return INV_TABLE[np.bitwise_xor(x[:, None], y[None, :])]


def rs_generator_matrix(k: int, p: int) -> AnyArray:
    """Systematic MDS generator matrix ``[I_k ; P]`` of shape (k+p, k).

    The parity block ``P`` is a (p, k) Cauchy matrix, so any k rows of the
    generator are linearly independent: the code tolerates any p erasures.
    """
    if k <= 0 or p < 0:
        raise ValueError("k must be positive and p non-negative")
    if k + p > GF_ORDER:
        raise ValueError(f"k + p must be <= {GF_ORDER} for GF(256)")
    gen = np.zeros((k + p, k), dtype=np.uint8)
    gen[:k] = np.eye(k, dtype=np.uint8)
    if p:
        gen[k:] = cauchy_matrix(p, k)
    return gen
