"""Systematic Reed-Solomon erasure codec over GF(2^8).

This is the single-level erasure code (SLEC) building block.  A ``(k+p)``
code stores ``k`` data chunks and ``p`` parity chunks and recovers from any
``p`` chunk erasures (MDS property, guaranteed by the Cauchy parity block in
:func:`repro.codes.gf256.rs_generator_matrix`).

Chunks are byte arrays of equal length; a *stripe* is the (k+p, chunk_len)
uint8 matrix of all chunks.  Encoding and decoding are vectorized across the
chunk length, so throughput benchmarks exercise realistic wide-block code
paths (the NumPy stand-in for the paper's ISA-L measurements).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.arrays import AnyArray

from .gf256 import gf_mat_inv, gf_matmul, rs_generator_matrix

__all__ = ["ReedSolomon"]


class ReedSolomon:
    """A systematic ``(k+p)`` Reed-Solomon erasure code.

    Parameters
    ----------
    k:
        Number of data chunks per stripe.
    p:
        Number of parity chunks per stripe.

    Examples
    --------
    >>> rs = ReedSolomon(4, 2)
    >>> data = np.arange(4 * 8, dtype=np.uint8).reshape(4, 8)
    >>> stripe = rs.encode(data)
    >>> stripe.shape
    (6, 8)
    >>> recovered = rs.decode(stripe, erasures=[0, 5])
    >>> bool((recovered[:4] == data).all())
    True
    """

    def __init__(self, k: int, p: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if p < 0:
            raise ValueError(f"p must be non-negative, got {p}")
        if k + p > 255:
            raise ValueError("k + p must be <= 255 for GF(256)")
        self.k = k
        self.p = p
        self.n = k + p
        self.generator = rs_generator_matrix(k, p)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, data: AnyArray) -> AnyArray:
        """Encode ``k`` data chunks into a full ``k+p`` stripe.

        Parameters
        ----------
        data:
            uint8 array of shape ``(k, chunk_len)``.

        Returns
        -------
        numpy.ndarray
            uint8 array of shape ``(k+p, chunk_len)``: the data chunks
            followed by the parity chunks.
        """
        data = self._check_data(data)
        if self.p == 0:
            return data.copy()
        stripe = np.empty((self.n, data.shape[1]), dtype=np.uint8)
        stripe[: self.k] = data
        stripe[self.k :] = gf_matmul(self.generator[self.k :], data)
        return stripe

    def parity(self, data: AnyArray) -> AnyArray:
        """Compute only the ``p`` parity chunks for ``data``."""
        data = self._check_data(data)
        if self.p == 0:
            return np.empty((0, data.shape[1]), dtype=np.uint8)
        return gf_matmul(self.generator[self.k :], data)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def is_recoverable(self, erasures: Iterable[int]) -> bool:
        """Whether a set of erased chunk indices can be recovered.

        For an MDS code this is simply ``len(erasures) <= p``; indices are
        validated so that callers with bookkeeping bugs fail loudly.
        """
        erased = self._check_erasures(erasures)
        return len(erased) <= self.p

    def decode(self, stripe: AnyArray, erasures: Iterable[int]) -> AnyArray:
        """Reconstruct a full stripe given erased chunk indices.

        Parameters
        ----------
        stripe:
            uint8 array of shape ``(k+p, chunk_len)``.  Rows listed in
            ``erasures`` are ignored (treated as lost) and rebuilt.
        erasures:
            Indices in ``[0, k+p)`` of lost chunks.

        Returns
        -------
        numpy.ndarray
            A new ``(k+p, chunk_len)`` stripe with every chunk restored.

        Raises
        ------
        ValueError
            If more than ``p`` chunks are erased.
        """
        stripe = np.asarray(stripe, dtype=np.uint8)
        if stripe.ndim != 2 or stripe.shape[0] != self.n:
            raise ValueError(f"stripe must have shape ({self.n}, chunk_len)")
        erased = self._check_erasures(erasures)
        if len(erased) > self.p:
            raise ValueError(
                f"{len(erased)} erasures exceed the p={self.p} tolerance"
            )
        if not erased:
            return stripe.copy()

        surviving = [i for i in range(self.n) if i not in erased]
        # Any k surviving rows of the generator are invertible (MDS).
        rows = surviving[: self.k]
        sub = self.generator[rows]
        data = gf_matmul(gf_mat_inv(sub), stripe[rows])
        return self.encode(data)

    def reconstruct_chunks(
        self, stripe: AnyArray, erasures: Iterable[int]
    ) -> dict[int, AnyArray]:
        """Rebuild and return only the erased chunks, keyed by index.

        This mirrors the "repair failed chunks only" network repair: the
        caller fetches ``k`` surviving chunks, reconstructs the lost ones,
        and writes just those back.
        """
        erased = self._check_erasures(erasures)
        full = self.decode(stripe, erased)
        return {i: full[i] for i in sorted(erased)}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_data(self, data: AnyArray) -> AnyArray:
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(
                f"data must have shape ({self.k}, chunk_len), got {data.shape}"
            )
        return data

    def _check_erasures(self, erasures: Iterable[int]) -> set[int]:
        erased = set(int(e) for e in erasures)
        for e in erased:
            if not 0 <= e < self.n:
                raise ValueError(f"erasure index {e} out of range [0, {self.n})")
        return erased

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReedSolomon(k={self.k}, p={self.p})"
