"""Datasets transcribed or synthesized for the reproduction."""

from .scaling import (
    ScalingSeries,
    average_sold_capacity_tb,
    backblaze_disks,
    max_available_capacity_tb,
    storage_scaling_table,
    us_doe_disks,
)

__all__ = [
    "ScalingSeries",
    "average_sold_capacity_tb",
    "backblaze_disks",
    "max_available_capacity_tb",
    "storage_scaling_table",
    "us_doe_disks",
]
