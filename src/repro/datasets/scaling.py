"""Storage-scaling dataset behind the paper's Figure 1.

Figure 1 motivates the whole study: disk *counts* per deployment and
per-disk *capacities* have grown relentlessly from 2010 to 2022.  The
series below are transcribed from the figure (Backblaze publishes its drive
stats; the DOE numbers and capacity curves follow the figure's annotated
points: Backblaze growing ~20k -> ~200k drives with annotations "1.0",
"2.0", "3.5" at 2010/2013/2016 and "47", "123", "202" towards 2022; max
available capacity reaching ~20 TB and average sold capacity lagging a few
TB behind).

Values between annotated years are geometric interpolations -- adequate for
reproducing the figure's shape, and clearly documented as such.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.arrays import AnyArray

__all__ = [
    "ScalingSeries",
    "backblaze_disks",
    "us_doe_disks",
    "max_available_capacity_tb",
    "average_sold_capacity_tb",
    "storage_scaling_table",
]

YEARS = np.arange(2010, 2023)


@dataclasses.dataclass(frozen=True)
class ScalingSeries:
    """One line of Figure 1."""

    name: str
    years: AnyArray
    values: AnyArray
    unit: str

    def at(self, year: int) -> float:
        if year not in self.years:
            raise ValueError(f"year {year} outside {self.years[0]}-{self.years[-1]}")
        return float(self.values[list(self.years).index(year)])

    def growth_factor(self) -> float:
        """End-to-end multiplicative growth across the series."""
        return float(self.values[-1] / self.values[0])


def _geometric(anchors: dict[int, float]) -> AnyArray:
    """Geometric interpolation through annotated (year, value) anchors."""
    xs = sorted(anchors)
    out = np.empty(len(YEARS))
    for i, year in enumerate(YEARS):
        if year <= xs[0]:
            out[i] = anchors[xs[0]]
        elif year >= xs[-1]:
            out[i] = anchors[xs[-1]]
        else:
            j = max(k for k in range(len(xs)) if xs[k] <= year)
            x0, x1 = xs[j], xs[j + 1]
            frac = (year - x0) / (x1 - x0)
            out[i] = anchors[x0] * (anchors[x1] / anchors[x0]) ** frac
    return out


def backblaze_disks() -> ScalingSeries:
    """Backblaze fleet size, thousands of disks (Figure 1a annotations)."""
    # The published Backblaze drive-stats counts: ~1k (2010), ~47k (2016),
    # ~123k (2019), ~202k (2022) -- matching the figure's annotations.
    values = _geometric({2010: 1.0, 2013: 2.0, 2016: 47.0, 2019: 123.0, 2022: 202.0})
    return ScalingSeries("Backblaze", YEARS, values, "thousand disks")


def us_doe_disks() -> ScalingSeries:
    """US DOE laboratory storage system sizes, thousands of disks."""
    values = _geometric({2010: 10.0, 2013: 20.0, 2016: 35.0, 2019: 50.0, 2022: 77.0})
    return ScalingSeries("US DOE", YEARS, values, "thousand disks")


def max_available_capacity_tb() -> ScalingSeries:
    """Largest commercially available disk capacity by year (TB)."""
    values = _geometric({2010: 2.0, 2013: 4.0, 2016: 8.0, 2019: 16.0, 2022: 20.0})
    return ScalingSeries("Max Available", YEARS, values, "TB")


def average_sold_capacity_tb() -> ScalingSeries:
    """Average capacity of sold disks by year (TB)."""
    values = _geometric({2010: 0.7, 2013: 1.5, 2016: 3.0, 2019: 6.0, 2022: 9.0})
    return ScalingSeries("Average Sold", YEARS, values, "TB")


def storage_scaling_table() -> dict[str, ScalingSeries]:
    """All four Figure 1 series, keyed by name."""
    return {
        s.name: s
        for s in (
            backblaze_disks(),
            us_doe_disks(),
            max_available_capacity_tb(),
            average_sold_capacity_tb(),
        )
    }
