"""Command-line interface: ``mlec-sim``.

Operator-facing entry points over the library's analyses::

    mlec-sim info C/D --code 10+2/17+3
    mlec-sim burst C/C -y 60 -x 3 --exact
    mlec-sim repair D/D --code 10+2/17+3
    mlec-sim durability C/D --method RMIN --detection-minutes 1
    mlec-sim tradeoff C/D --top 10
    mlec-sim simulate C/D --months 3 --afr 0.05 --seed 7
    mlec-sim chaos --schemes C/C,D/D --trials 5 --seed 0

Code parameters are written ``kn+pn/kl+pl`` (MLEC).  All other knobs
default to the paper's §3 setup.  The Monte-Carlo subcommands (``burst``,
``simulate``, ``chaos``) accept ``--workers N`` to fan trials out over a
process pool; results are bitwise identical for any worker count.

Long campaigns are fault-tolerant: failed or crashed trial chunks are
retried (``--max-retries``), ``--checkpoint FILE`` journals completed
chunks so an interrupted sweep can be continued with
``mlec-sim resume FILE`` -- the resumed run re-executes the original
command and produces bitwise-identical results and artifacts.

Campaigns can span hosts: ``--backend tcp://HOST:PORT`` turns the
command into a chunk coordinator, and ``mlec-sim workers --connect
HOST:PORT`` processes (on any machine) pull chunk leases from it.  Dead
workers, stragglers, and partitions are absorbed by lease expiry and
work stealing; the journal records chunk ranges, never hosts, so a
checkpoint taken on one machine resumes on any fleet -- with results
byte-identical to a single-host run in every case.
"""

from __future__ import annotations

import argparse
import math
import re
import sys
from collections.abc import Callable
from typing import TYPE_CHECKING

from .core.config import MLECParams, YEAR
from .core.scheme import MLEC_SCHEME_NAMES, MLECScheme, mlec_scheme_from_name
from .core.tolerance import mlec_tolerance
from .core.types import RepairMethod
from .obs import MetricsRegistry, Stopwatch, TraceRecorder
from .sim.batch import register_batch_impl, simulate_batch_impl

if TYPE_CHECKING:
    from .runtime import TrialContext, TrialRunner
    from .sim.simulator import SystemSimResult

__all__ = ["main", "parse_mlec_code"]

_CODE_RE = re.compile(
    r"^\(?(\d+)\+(\d+)\)?/\(?(\d+)\+(\d+)\)?$"
)


def parse_mlec_code(text: str) -> MLECParams:
    """Parse ``kn+pn/kl+pl`` (parentheses optional) into MLECParams."""
    match = _CODE_RE.match(text.strip())
    if not match:
        raise argparse.ArgumentTypeError(
            f"bad MLEC code {text!r}; expected e.g. 10+2/17+3"
        )
    k_n, p_n, k_l, p_l = (int(g) for g in match.groups())
    return MLECParams(k_n, p_n, k_l, p_l)


def _add_scheme_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scheme", choices=MLEC_SCHEME_NAMES,
        help="MLEC placement scheme (network/local)",
    )
    parser.add_argument(
        "--code", type=parse_mlec_code, default=MLECParams(10, 2, 17, 3),
        help="code parameters kn+pn/kl+pl (default: the paper's 10+2/17+3)",
    )


def _scheme_from(args: argparse.Namespace) -> MLECScheme:
    return mlec_scheme_from_name(args.scheme, args.code)


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for Monte-Carlo trials (default 1; results "
             "are identical for any worker count)",
    )
    parser.add_argument(
        "--batch", choices=("auto", "on", "off"), default="auto",
        help="vectorized batch-trial engine: 'auto' (default) engages it "
             "for large enough chunks, 'on' forces it, 'off' disables it; "
             "purely a speed knob -- results are bit-identical either way",
    )


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default="local", metavar="SPEC",
        help="executor backend: 'local' (default) or 'tcp://HOST:PORT' to "
             "bind a chunk coordinator that `mlec-sim workers` processes "
             "connect to (results are identical either way)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=None, metavar="SECONDS",
        help="tcp backend: seconds before a straggler's chunk lease is "
             "speculatively re-dispatched to another worker (default 300)",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="journal completed trial chunks to FILE (JSONL) so an "
             "interrupted sweep can be continued with `mlec-sim resume`",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue from an existing --checkpoint journal instead of "
             "refusing to overwrite it",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="times a failed/crashed trial chunk is retried before the "
             "sweep is abandoned (default 2; 0 disables retries)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk watchdog: a dispatched chunk exceeding this is "
             "killed and retried (pool mode, i.e. --workers > 1)",
    )


def _make_runner(args: argparse.Namespace) -> TrialRunner:
    """Build the trial runner for a Monte-Carlo subcommand.

    Always a :class:`~repro.runtime.ResilientRunner` -- retry and salvage
    are on by default (``--max-retries 0`` disables retries); chunk
    journaling engages only when ``--checkpoint`` is given.  Results stay
    bitwise identical to a plain runner for any worker count.
    """
    from .runtime import ResilientRunner, RetryPolicy

    if args.max_retries < 0:
        raise ValueError(f"--max-retries must be >= 0, got {args.max_retries}")
    backend = None
    spec = getattr(args, "backend", None) or "local"
    if spec != "local":
        from .runtime.executors import make_backend

        backend = make_backend(
            spec,
            workers=args.workers,
            lease_timeout=getattr(args, "lease_timeout", None),
        )
        if backend is not None:
            backend.start()
            host, port = backend.address
            # stderr, so stdout stays byte-identical to a local run.
            print(
                f"mlec-sim: tcp backend listening on {host}:{port}; start "
                f"workers with: mlec-sim workers --connect {host}:{port}",
                file=sys.stderr,
            )
    return ResilientRunner(
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        policy=RetryPolicy(max_attempts=args.max_retries + 1),
        chunk_timeout=args.chunk_timeout,
        argv=getattr(args, "_argv", None),
        backend=backend,
        batch=getattr(args, "batch", "auto"),
    )


def _report_recovery(runner: TrialRunner) -> None:
    """Close the journal and surface recovery facts (stderr, not stdout:
    stdout stays byte-identical between interrupted and clean runs)."""
    from .runtime import ResilientRunner

    if not isinstance(runner, ResilientRunner):
        return
    runner.close()
    if runner.backend is not None:
        runner.backend.shutdown()
    counters = runner.ops_metrics.snapshot()["counters"]
    # sim.batch_* and runtime.trials_* counters are routine throughput
    # telemetry (batch-engine usage, progress bookkeeping), not recovery
    # facts; only genuine recovery activity warrants the stderr summary.
    routine = ("sim.batch", "runtime.trials_")
    if any(
        isinstance(v, (int, float)) and v and not name.startswith(routine)
        for name, v in counters.items()
    ):
        print(runner.recovery_summary(), file=sys.stderr)


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a JSONL event trace of every trial (deterministic: "
             "byte-identical for any --workers)",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write merged run metrics (counters/histograms) as JSON",
    )
    parser.add_argument(
        "--ops-trace", metavar="FILE", default=None,
        help="write the runner's operational trace -- schema-v2 span "
             "records (campaign/sweep/chunk/attempt, with host "
             "attribution) plus recovery events -- as JSONL; wall-clock "
             "timed and scheduling-dependent, unlike --trace",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="live trials/sec + ETA status line on stderr "
             "(stdout stays byte-identical to an unobserved run)",
    )
    parser.add_argument(
        "--progress-jsonl", metavar="FILE", default=None,
        help="append machine-readable progress snapshots to FILE (JSONL, "
             "one schema-versioned object per emission) for tailing",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve live OpenMetrics of the runner's operational counters "
             "on 127.0.0.1:PORT while the campaign runs (0 picks a free "
             "port; the bound address is printed on stderr)",
    )


def _attach_observability(
    args: argparse.Namespace,
    runner: TrialRunner,
    metrics: MetricsRegistry | None = None,
) -> Callable[[], None]:
    """Attach the live observability surfaces requested on the command line.

    Wires a :class:`~repro.obs.ProgressReporter` into the runner
    (``--progress`` / ``--progress-jsonl``) and starts the
    :class:`~repro.obs.MetricsExporter` pull endpoint
    (``--metrics-port``).  Everything renders to stderr or a sidecar
    file/socket -- stdout and the result artifacts stay byte-identical
    to an unobserved run.  Returns a stop callback the caller must
    invoke when the campaign ends (forces the final progress emission
    and unbinds the endpoint).
    """
    from .obs import MetricsExporter, ProgressReporter
    from .obs.export import to_openmetrics

    closers: list[Callable[[], None]] = []
    want_line = bool(getattr(args, "progress", False))
    jsonl_path = getattr(args, "progress_jsonl", None)
    if want_line or jsonl_path:
        reporter = ProgressReporter(
            stream=sys.stderr if want_line else None,
            jsonl_path=jsonl_path,
        )
        runner.progress = reporter
        closers.append(reporter.close)
    port = getattr(args, "metrics_port", None)
    if port is not None:
        registries = [runner.ops_metrics]
        if metrics is not None:
            registries.append(metrics)
        exporter = MetricsExporter(
            lambda: to_openmetrics(*registries), port=port
        )
        host, bound = exporter.start()
        print(
            f"mlec-sim: serving OpenMetrics on http://{host}:{bound}/metrics",
            file=sys.stderr,
        )
        closers.append(exporter.close)

    def stop() -> None:
        for close in closers:
            close()

    return stop


def _write_ops_trace(args: argparse.Namespace, runner: TrialRunner) -> None:
    """Write the runner-owned ops trace requested via ``--ops-trace``.

    Reported on stderr: span counts depend on wall clock and scheduling,
    so stdout must stay byte-identical to an unobserved run.
    """
    path = getattr(args, "ops_trace", None)
    if not path:
        return
    runner.ops_trace.write_jsonl(path)
    print(
        f"mlec-sim: wrote {len(runner.ops_trace)} ops trace records "
        f"to {path}",
        file=sys.stderr,
    )


def _make_obs(
    args: argparse.Namespace,
) -> tuple[TraceRecorder | None, MetricsRegistry | None]:
    """Build the telemetry sinks requested via --trace / --metrics."""
    trace = TraceRecorder() if args.trace else None
    metrics = MetricsRegistry() if args.metrics else None
    return trace, metrics


def _write_obs(
    args: argparse.Namespace,
    trace: TraceRecorder | None,
    metrics: MetricsRegistry | None,
) -> None:
    if trace is not None:
        trace.write_jsonl(args.trace)
        print(f"wrote {len(trace)} trace records to {args.trace}")
    if metrics is not None:
        metrics.write_json(args.metrics)
        print(f"wrote metrics snapshot to {args.metrics}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    scheme = _scheme_from(args)
    report = mlec_tolerance(scheme)
    print(f"scheme            : {scheme}")
    print(f"parity overhead   : {scheme.params.parity_fraction:.1%} of raw capacity")
    print(f"local pool        : {scheme.local_pool_disks} disks "
          f"({scheme.local_pool_capacity_bytes / 1e12:.0f} TB), "
          f"{scheme.total_local_pools} pools total")
    print(f"network pool      : {scheme.network_group_racks} racks x "
          f"{scheme.network_groups} group(s)")
    print("guaranteed tolerance:")
    print(f"  any disks       : {report.arbitrary_disks}")
    print(f"  whole racks     : {report.rack_failures}")
    print(f"  scattered bursts: y <= x + {report.disks_per_rack_scatter} "
          f"failures over x racks")
    return 0


def cmd_burst(args: argparse.Namespace) -> int:
    scheme = _scheme_from(args)
    if args.exact:
        if args.trace or args.metrics:
            raise ValueError(
                "--trace/--metrics need Monte-Carlo trials; "
                "drop --exact to collect telemetry"
            )
        if (
            args.ops_trace
            or args.progress
            or args.progress_jsonl
            or args.metrics_port is not None
        ):
            raise ValueError(
                "--ops-trace/--progress/--progress-jsonl/--metrics-port "
                "observe a Monte-Carlo campaign; drop --exact to use them"
            )
        if args.checkpoint or args.resume:
            raise ValueError(
                "--checkpoint/--resume need Monte-Carlo trials; "
                "drop --exact to checkpoint a sweep"
            )
        from .analysis.burst_dp import mlec_burst_pdl

        pdl = mlec_burst_pdl(scheme, args.failures, args.racks)
        kind = "exact DP (worst-case declustering)"
        detail = ""
    else:
        from .sim.burst import MLECBurstEvaluator, burst_pdl_stats

        trace, metrics = _make_obs(args)
        runner = _make_runner(args)
        obs_stop = _attach_observability(args, runner, metrics)
        try:
            stats = burst_pdl_stats(
                MLECBurstEvaluator(scheme), args.failures, args.racks,
                trials=args.trials, seed=args.seed,
                runner=runner,
                metrics=metrics, trace=trace,
            )
        finally:
            obs_stop()
        _report_recovery(runner)
        _write_ops_trace(args, runner)
        _write_obs(args, trace, metrics)
        pdl = stats.mean
        kind = f"Monte-Carlo ({args.trials} trials)"
        detail = f"  95% CI +/- {stats.ci95_halfwidth:.3e}"
    print(f"PDL[{args.failures} failures across {args.racks} racks] = "
          f"{pdl:.3e}   [{kind}]{detail}")
    survivable = mlec_tolerance(scheme).survives_burst(args.failures, args.racks)
    print(f"guaranteed survivable: {'yes' if survivable else 'no'}")
    return 0


def cmd_repair(args: argparse.Namespace) -> int:
    from .repair.methods import CatastrophicRepairModel
    from .reporting import format_table

    scheme = _scheme_from(args)
    model = CatastrophicRepairModel(scheme, failed_disks=args.failed_disks)
    rows = []
    for method in RepairMethod:
        s = model.summary(method)
        rows.append([str(method), s["cross_rack_traffic_TB"],
                     s["network_time_h"], s["local_time_h"], s["total_time_h"]])
    print(format_table(
        ["method", "x-rack TB", "net h", "local h", "total h"], rows,
        title=f"Catastrophic pool repair on {scheme} "
              f"({model.failed_disks} failed disks):",
    ))
    return 0


def cmd_durability(args: argparse.Namespace) -> int:
    from .analysis.durability import mlec_durability_nines
    from .core.config import FailureConfig
    from .core.types import Seconds

    scheme = _scheme_from(args)
    failures = FailureConfig(
        annual_failure_rate=args.afr,
        detection_time=Seconds(args.detection_minutes * 60.0),
    )
    method = RepairMethod(args.method)
    nines = mlec_durability_nines(scheme, method, failures=failures)
    print(f"{scheme} with {method}: {nines:.1f} nines/year "
          f"(AFR {args.afr:.1%}, detection {args.detection_minutes:g} min)")
    return 0


def cmd_tradeoff(args: argparse.Namespace) -> int:
    from .analysis.tradeoff import mlec_tradeoff, pareto_front
    from .reporting import format_table

    points = pareto_front(mlec_tradeoff(args.scheme))[-args.top:]
    rows = [[p.config, round(p.durability_nines, 1),
             round(p.throughput_gb_per_s, 2)] for p in points]
    print(format_table(
        ["config", "nines/yr", "GB/s"], rows,
        title=f"{args.scheme} Pareto front (~30% parity overhead):",
    ))
    return 0


def _simulate_trial(
    ctx: TrialContext,
    scheme: MLECScheme,
    method: RepairMethod,
    afr: float,
    mission_time: float,
    base_seed: int,
) -> SystemSimResult:
    """One full-system simulation trial (module-level for pickling)."""
    from .sim.failures import ExponentialFailures
    from .sim.simulator import MLECSystemSimulator

    sim = MLECSystemSimulator(
        scheme, method, failure_model=ExponentialFailures(afr)
    )
    return sim.run(
        mission_time=mission_time,
        seed=base_seed + ctx.index,
        recorder=ctx.trace,
        metrics=ctx.metrics,
    )


# Module level, not lazy: workers unpickle _simulate_trial by importing
# this module, so the registration always precedes any registry lookup.
register_batch_impl(_simulate_trial)(simulate_batch_impl)


def cmd_simulate(args: argparse.Namespace) -> int:
    scheme = _scheme_from(args)
    method = RepairMethod(args.method)
    mission_time = args.months / 12 * YEAR
    if math.isnan(mission_time) or math.isinf(mission_time) or mission_time <= 0:
        raise ValueError(
            f"mission_time must be a positive number of seconds, "
            f"got {mission_time!r} ({args.months!r} months)"
        )
    trace, metrics = _make_obs(args)
    runner = _make_runner(args)
    obs_stop = _attach_observability(args, runner, metrics)
    watch = Stopwatch()
    try:
        results = runner.map(
            _simulate_trial, args.trials, seed=args.seed,
            args=(scheme, method, args.afr, mission_time, args.seed),
            metrics=metrics, trace=trace,
        )
    finally:
        obs_stop()
    watch.stop()
    _report_recovery(runner)
    _write_ops_trace(args, runner)
    _write_obs(args, trace, metrics)
    if args.trials == 1:
        result = results[0]
        print(f"simulated {args.months} months of {scheme} + {method} "
              f"at AFR {args.afr:.1%} (seed {args.seed}):")
        print(f"  disk failures        : {result.n_disk_failures}")
        print(f"  catastrophic pools   : {result.n_catastrophic_events}")
        print(f"  data loss events     : {len(result.data_loss_events)}")
        print(f"  cross-rack repair    : "
              f"{result.cross_rack_repair_bytes / 1e12:.3f} TB")
        print(f"  local repair         : "
              f"{result.local_repair_bytes / 1e15:.3f} PB")
        print(f"  elapsed              : {watch.summary(1)}")
        return 1 if result.lost_data else 0

    trials = len(results)
    losses = sum(bool(r.lost_data) for r in results)
    mean_failures = sum(r.n_disk_failures for r in results) / trials
    mean_catastrophic = sum(r.n_catastrophic_events for r in results) / trials
    mean_cross_tb = sum(r.cross_rack_repair_bytes for r in results) / trials / 1e12
    print(f"simulated {trials} x {args.months} months of {scheme} + {method} "
          f"at AFR {args.afr:.1%} (seeds {args.seed}..{args.seed + trials - 1}):")
    print(f"  trials with data loss: {losses}/{trials}")
    print(f"  mean disk failures   : {mean_failures:.1f}")
    print(f"  mean catastrophic    : {mean_catastrophic:.2f}")
    print(f"  mean cross-rack      : {mean_cross_tb:.3f} TB")
    print(f"  elapsed              : {watch.summary(trials)}")
    return 1 if losses else 0


def cmd_traffic(args: argparse.Namespace) -> int:
    from .analysis.markov import local_pool_catastrophic_rate
    from .core.config import LRCParams, SLECParams
    from .core.scheme import LRCScheme, SLECScheme
    from .core.types import Level, Placement
    from .repair.traffic_comparison import (
        lrc_annual_cross_rack_traffic,
        mlec_annual_cross_rack_traffic,
        slec_annual_cross_rack_traffic,
    )
    from .reporting import format_table

    mlec = _scheme_from(args)
    pool_rate = local_pool_catastrophic_rate(mlec) * mlec.total_local_pools
    rows = []
    for method in RepairMethod:
        rate = mlec_annual_cross_rack_traffic(mlec, method, pool_rate)
        rows.append([f"MLEC {mlec.name} {method}", rate.tb_per_day])
    slec = SLECScheme(
        SLECParams(args.slec_k, args.slec_p), Level.NETWORK,
        Placement.DECLUSTERED, mlec.dc,
    )
    rows.append([f"Net-Dp-S ({args.slec_k}+{args.slec_p})",
                 slec_annual_cross_rack_traffic(slec).tb_per_day])
    lrc = LRCScheme(LRCParams(args.lrc_k, args.lrc_l, args.lrc_r), mlec.dc)
    rows.append([f"LRC-Dp ({args.lrc_k},{args.lrc_l},{args.lrc_r})",
                 lrc_annual_cross_rack_traffic(lrc).tb_per_day])
    print(format_table(
        ["scheme", "cross-rack TB/day"], rows,
        title="Expected cross-rack repair traffic (steady state):",
    ))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import ChaosCampaign, standard_scenarios

    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    if not schemes:
        raise ValueError("--schemes must name at least one MLEC scheme")
    scenarios = standard_scenarios()
    if args.scenario:
        by_name = {s.name: s for s in scenarios}
        unknown = [n for n in args.scenario if n not in by_name]
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; "
                f"available: {sorted(by_name)}"
            )
        scenarios = tuple(by_name[n] for n in args.scenario)
    runner = _make_runner(args)
    campaign = ChaosCampaign(
        schemes=schemes, params=args.code, trials=args.trials,
        scenarios=scenarios, workers=args.workers, runner=runner,
    )
    trace, metrics = _make_obs(args)
    obs_stop = _attach_observability(args, runner, metrics)
    watch = Stopwatch()
    try:
        report = campaign.run(seed=args.seed, trace=trace, metrics=metrics)
    finally:
        obs_stop()
    watch.stop()
    _report_recovery(runner)
    _write_ops_trace(args, runner)
    _write_obs(args, trace, metrics)
    print(report.to_text())
    total_trials = len(report.scenarios) * len(report.schemes) * report.trials
    print(f"elapsed: {watch.summary(total_trials)}")
    return 1 if report.total_invariant_violations else 0


def cmd_workers(args: argparse.Namespace) -> int:
    """Serve trial chunks to a ``--backend tcp://...`` coordinator.

    Stateless by design: all scheduling, retry, and checkpoint state
    lives with the coordinator, so workers can be added, killed, or
    partitioned at any time without affecting results.
    """
    from .runtime.executors import parse_backend_spec
    from .runtime.executors.worker import run_worker_fleet

    _kind, address = parse_backend_spec(f"tcp://{args.connect}")
    assert address is not None
    host, port = address
    if args.processes < 1:
        raise ValueError(f"--processes must be >= 1, got {args.processes}")
    print(
        f"mlec-sim: {args.processes} worker(s) serving {host}:{port}",
        file=sys.stderr,
    )
    code = run_worker_fleet(
        host,
        port,
        processes=args.processes,
        connect_timeout=args.connect_timeout,
        stay=args.stay,
    )
    if code == 2:
        print(
            f"mlec-sim: error: no coordinator reachable at {host}:{port} "
            f"within {args.connect_timeout:g}s",
            file=sys.stderr,
        )
    return code


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the crash-safe simulation service daemon.

    Jobs are submitted as JSON over HTTP, executed through a
    checkpointing :class:`~repro.runtime.ResilientRunner`, deduped by
    content hash, and survive ``kill -9`` of the daemon: restart it on
    the same ``--state-dir`` and every unfinished job resumes from its
    journal with byte-identical results.  See docs/service.md.
    """
    from pathlib import Path

    from .service import ServiceConfig, serve

    if args.queue_capacity < 1:
        raise ValueError(
            f"--queue-capacity must be >= 1, got {args.queue_capacity}"
        )
    config = ServiceConfig(
        state_dir=Path(args.state_dir),
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        queue_capacity=args.queue_capacity,
        retry_after=args.retry_after,
    )
    return serve(config, announce=print)


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue an interrupted sweep by replaying its recorded command.

    The checkpoint's meta record stores the original ``mlec-sim`` argv;
    replaying it (with ``--resume`` forced and the checkpoint path pinned
    to the journal being resumed) reproduces the original stdout and
    artifacts exactly, with already-journaled chunks salvaged instead of
    re-run.
    """
    from .runtime import CheckpointError, read_checkpoint_argv

    args.checkpoint = args.file  # so shared error handling can hint at it
    argv = read_checkpoint_argv(args.file)
    if not argv or argv[0] == "resume":
        raise CheckpointError(
            f"{args.file} records the command {argv!r}, "
            "which cannot be replayed"
        )
    new_args = build_parser().parse_args(argv)
    if not hasattr(new_args, "checkpoint"):
        raise CheckpointError(
            f"{args.file} was written by `mlec-sim {argv[0]}`, "
            "which does not support checkpoints"
        )
    new_args.resume = True
    new_args.checkpoint = args.file
    if args.workers is not None:
        new_args.workers = args.workers
    if args.max_retries is not None:
        new_args.max_retries = args.max_retries
    if args.backend is not None and args.connect is not None:
        raise ValueError("pass --backend or --connect, not both")
    override = args.backend
    if args.connect is not None:
        override = f"tcp://{args.connect}"
    if override is not None:
        from .runtime.executors import parse_backend_spec

        # Fail fast with the spec diagnostic before replaying anything.
        parse_backend_spec(override)
        if not hasattr(new_args, "backend"):
            raise CheckpointError(
                f"{args.file} was written by `mlec-sim {argv[0]}`, which "
                "does not run trial sweeps; --backend/--connect do not apply"
            )
        # Safe to swap: the journal header pins fn/args/seed/trials by
        # sha256 (validated when the sweep reopens), and chunk records
        # are host-independent, so the backend can only change *where*
        # chunks run, never what the resumed artifacts contain.
        new_args.backend = override
    new_args._argv = argv
    result: int = new_args.func(new_args)
    return result


def cmd_trace_report(args: argparse.Namespace) -> int:
    from .obs import read_jsonl, summarize_trace

    records = read_jsonl(args.file)
    print(summarize_trace(records, top=args.top))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.simlint.cli import main as simlint_main

    argv = list(args.paths) + ["--format", args.format]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.output:
        argv += ["--output", args.output]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline] if args.baseline else ["--baseline"]
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.cache is not None:
        argv += ["--cache", args.cache] if args.cache else ["--cache"]
    if args.list_rules:
        argv.append("--list-rules")
    return simlint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlec-sim",
        description="Multi-level erasure coding analysis "
                    "(SC '23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="scheme geometry and guaranteed tolerance")
    _add_scheme_args(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("burst", help="PDL of a correlated failure burst")
    _add_scheme_args(p)
    p.add_argument("-y", "--failures", type=int, required=True)
    p.add_argument("-x", "--racks", type=int, required=True)
    p.add_argument("--exact", action="store_true",
                   help="exact DP instead of Monte-Carlo")
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    _add_workers_arg(p)
    _add_backend_args(p)
    _add_resilience_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_burst)

    p = sub.add_parser("repair", help="catastrophic-pool repair comparison")
    _add_scheme_args(p)
    p.add_argument("--failed-disks", type=int, default=None)
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("durability", help="one-year durability in nines")
    _add_scheme_args(p)
    p.add_argument("--method", choices=[m.value for m in RepairMethod],
                   default="RMIN")
    p.add_argument("--afr", type=float, default=0.01)
    p.add_argument("--detection-minutes", type=float, default=30.0)
    p.set_defaults(func=cmd_durability)

    p = sub.add_parser("tradeoff", help="durability/throughput Pareto front")
    p.add_argument("scheme", choices=MLEC_SCHEME_NAMES)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_tradeoff)

    p = sub.add_parser("traffic", help="repair network traffic vs SLEC/LRC")
    _add_scheme_args(p)
    p.add_argument("--slec-k", type=int, default=7)
    p.add_argument("--slec-p", type=int, default=3)
    p.add_argument("--lrc-k", type=int, default=14)
    p.add_argument("--lrc-l", type=int, default=2)
    p.add_argument("--lrc-r", type=int, default=4)
    p.set_defaults(func=cmd_traffic)

    p = sub.add_parser("simulate", help="event-driven full-system simulation")
    _add_scheme_args(p)
    p.add_argument("--months", type=float, default=12.0)
    p.add_argument("--afr", type=float, default=0.01)
    p.add_argument("--method", choices=[m.value for m in RepairMethod],
                   default="RMIN")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trials", type=int, default=1,
        help="independent missions to simulate (seeds seed..seed+trials-1)",
    )
    _add_workers_arg(p)
    _add_backend_args(p)
    _add_resilience_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "chaos",
        help="fault-injection campaign with invariant auditing",
    )
    p.add_argument(
        "--schemes", default=",".join(MLEC_SCHEME_NAMES),
        help="comma-separated scheme names (default: all four)",
    )
    p.add_argument(
        "--code", type=parse_mlec_code, default=MLECParams(10, 2, 17, 3),
        help="code parameters kn+pn/kl+pl (default: the paper's 10+2/17+3)",
    )
    p.add_argument(
        "--scenario", action="append", default=None,
        help="restrict to a named scenario (repeatable; default: all)",
    )
    p.add_argument("--trials", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    _add_workers_arg(p)
    _add_backend_args(p)
    _add_resilience_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "resume",
        help="continue an interrupted Monte-Carlo sweep from its checkpoint",
    )
    p.add_argument(
        "file",
        help="checkpoint journal written via --checkpoint (trusted input: "
        "chunk payloads are pickled, so only resume journals you wrote)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="override the worker count of the original command "
             "(results are identical either way)",
    )
    p.add_argument(
        "--max-retries", type=int, default=None,
        help="override the retry budget of the original command",
    )
    p.add_argument(
        "--backend", default=None, metavar="SPEC",
        help="override the executor backend of the original command "
             "('local' or 'tcp://HOST:PORT'); the journal's chunk records "
             "are host-independent, so results are identical either way",
    )
    p.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="shorthand for --backend tcp://HOST:PORT",
    )
    p.set_defaults(func=cmd_resume, checkpoint=None, resume=False)

    p = sub.add_parser(
        "workers",
        help="serve Monte-Carlo trial chunks to a tcp:// coordinator",
    )
    p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (printed on stderr by the campaign "
             "command run with --backend tcp://HOST:PORT)",
    )
    p.add_argument(
        "--processes", type=int, default=1,
        help="worker processes to run; each holds one chunk lease at a "
             "time (default 1)",
    )
    p.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="SECONDS",
        help="keep retrying the initial connection this long, so workers "
             "may be started before the coordinator (default 30)",
    )
    p.add_argument(
        "--stay", action="store_true",
        help="outlive coordinator restarts: after a clean shutdown or a "
             "dropped connection, keep re-dialing (backoff capped at 5s) "
             "and serve the next coordinator -- the fleet mode for a "
             "long-lived `mlec-sim serve` daemon",
    )
    p.set_defaults(func=cmd_workers)

    p = sub.add_parser(
        "serve",
        help="crash-safe simulation service: HTTP job queue with durable "
             "checkpoints and a dedupe cache",
    )
    p.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="durable service state: job WAL, per-job checkpoint journals "
             "and result artifacts, endpoint.json (trusted input: job "
             "checkpoints carry pickled payloads, so point this only at "
             "state written by daemons you ran)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="listen address (default 127.0.0.1)")
    p.add_argument(
        "--port", type=int, default=0,
        help="listen port; 0 picks a free one, published in "
             "<state-dir>/endpoint.json (default 0)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per job sweep (default 1; results are "
             "identical for any worker count; batch mode comes from each "
             "job's spec, not a daemon flag)",
    )
    p.add_argument(
        "--backend", default="local", metavar="SPEC",
        help="chunk executor for job sweeps: 'local' or 'tcp://HOST:PORT' "
             "to coordinate an `mlec-sim workers --stay` fleet "
             "(default local)",
    )
    p.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="admission bound: submissions beyond N queued jobs get "
             "HTTP 429 + Retry-After (default 64)",
    )
    p.add_argument(
        "--retry-after", type=float, default=5.0, metavar="SECONDS",
        help="Retry-After hint attached to 429/503 responses (default 5)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace-report",
        help="summarize a JSONL trace written via --trace or --ops-trace",
    )
    p.add_argument("file", help="trace file (JSONL; v1 event records and "
                                "v2 span records both understood)")
    p.add_argument("--top", type=int, default=10,
                   help="event kinds / pools / span children to show "
                        "(default 10)")
    p.set_defaults(func=cmd_trace_report)

    p = sub.add_parser(
        "lint",
        help="domain-aware static analysis (simlint) over the source tree",
    )
    p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    p.add_argument("--format", choices=("human", "json", "sarif"),
                   default="human")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="write the report to PATH instead of stdout")
    p.add_argument("--rules", metavar="IDS", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--baseline", metavar="PATH", nargs="?", const="",
                   default=None,
                   help="suppress findings recorded in the baseline file "
                        "(default path: .simlint-baseline.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from current findings")
    p.add_argument("--cache", metavar="PATH", nargs="?", const="",
                   default=None,
                   help="incremental per-file result cache "
                        "(default path: .simlint-cache.json)")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered rules and exit")
    p.set_defaults(func=cmd_lint)

    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run one subcommand under the shared error-handling policy.

    Every subcommand -- burst, simulate, chaos, resume, and the rest --
    maps failures to the same exit codes and stderr diagnostics:
    ``TrialExecutionError``/``CheckpointError``/``ValueError``/``OSError``
    exit 2 with a one-line message (plus salvage and resume hints when a
    checkpoint is in play), Ctrl-C exits 130 with a resume hint.
    """
    from .runtime import CheckpointError, TrialExecutionError
    from .runtime.executors import BackendUnavailable

    def hint_resume() -> None:
        checkpoint = getattr(args, "checkpoint", None)
        if checkpoint:
            print(
                f"mlec-sim: continue with: mlec-sim resume {checkpoint}",
                file=sys.stderr,
            )

    try:
        result: int = args.func(args)
        return result
    except TrialExecutionError as exc:
        first_line = str(exc).splitlines()[0] if str(exc) else "trial failed"
        print(f"mlec-sim: error: {first_line}", file=sys.stderr)
        if exc.completed_trials:
            print(
                f"mlec-sim: salvaged {exc.completed_trials} completed "
                "trial(s) before the failure",
                file=sys.stderr,
            )
        hint_resume()
        return 2
    except CheckpointError as exc:
        print(f"mlec-sim: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("mlec-sim: interrupted", file=sys.stderr)
        hint_resume()
        return 130
    except (BackendUnavailable, ValueError, OSError) as exc:
        print(f"mlec-sim: error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Invalid inputs (bad scheme/code/topology combinations, broken traces,
    out-of-range fault domains) exit with code 2 and a one-line diagnostic
    on stderr instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    # Recorded into --checkpoint journals so `mlec-sim resume` can replay
    # the exact command that produced them.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
