"""Disk-failure generators: distributions, rules, and trace replay (§3).

The paper's simulator injects failures "based on distributions, rules, or
real traces".  Each generator here answers one question -- *when does this
(replacement) disk fail, given it goes into service at time t?* -- so the
simulators can stay agnostic of the failure model.

Available models:

* :class:`ExponentialFailures` -- the paper's headline model (AFR 1%).
* :class:`WeibullFailures` -- infant-mortality / wear-out shapes.
* :class:`BathtubFailures` -- piecewise-rate bathtub curve (a rule-based
  model: high early rate, low mid-life rate, rising wear-out rate).
* :class:`TraceFailures` -- replays an explicit (time, disk) schedule from
  a :class:`repro.sim.traces.FailureTrace`.
"""

from __future__ import annotations

import bisect
import math
from typing import Protocol

import numpy as np

from ..core.config import YEAR
from ..core.types import Years

__all__ = [
    "FailureModel",
    "ExponentialFailures",
    "WeibullFailures",
    "BathtubFailures",
    "TraceFailures",
]


class FailureModel(Protocol):
    """Anything that can produce a failure time for a disk."""

    def time_to_failure(self, rng: np.random.Generator, disk_id: int,
                        in_service_since: float) -> float:
        """Absolute failure time for a disk entering service at a time.

        May return ``inf`` for "never fails within any horizon".
        """
        ...


class ExponentialFailures:
    """Memoryless failures at a constant annual failure rate.

    The paper's long-term durability model: "random disk failures
    independently following an exponential distribution with an annual
    failure rate (AFR) of 1%".
    """

    def __init__(self, annual_failure_rate: float = 0.01) -> None:
        if not 0 < annual_failure_rate < 1:
            raise ValueError("annual_failure_rate must be in (0, 1)")
        self.annual_failure_rate = annual_failure_rate
        self.rate = -math.log1p(-annual_failure_rate) / YEAR

    def time_to_failure(
        self, rng: np.random.Generator, disk_id: int, in_service_since: float
    ) -> float:
        del disk_id  # identical, independent disks
        return in_service_since + rng.exponential(1.0 / self.rate)


class WeibullFailures:
    """Weibull time-to-failure: shape < 1 infant mortality, > 1 wear-out.

    ``scale_years`` is the characteristic life (the 63.2th percentile).
    """

    def __init__(
        self, shape: float = 1.2, scale_years: Years = Years(80.0)
    ) -> None:
        if shape <= 0 or scale_years <= 0:
            raise ValueError("shape and scale must be positive")
        self.shape = shape
        self.scale = scale_years * YEAR

    def time_to_failure(
        self, rng: np.random.Generator, disk_id: int, in_service_since: float
    ) -> float:
        del disk_id
        return in_service_since + self.scale * rng.weibull(self.shape)


class BathtubFailures:
    """Piecewise-constant hazard: burn-in, useful life, wear-out.

    A rule-based model: the hazard is ``early_afr`` for the first
    ``burn_in_years`` of a disk's life, ``steady_afr`` until
    ``wearout_years``, and ``wearout_afr`` afterwards.  Sampling inverts
    the piecewise-exponential CDF exactly.
    """

    def __init__(
        self,
        early_afr: float = 0.03,
        steady_afr: float = 0.01,
        wearout_afr: float = 0.06,
        burn_in_years: Years = Years(0.25),
        wearout_years: Years = Years(5.0),
    ) -> None:
        for name, v in [("early_afr", early_afr), ("steady_afr", steady_afr),
                        ("wearout_afr", wearout_afr)]:
            if not 0 < v < 1:
                raise ValueError(f"{name} must be in (0, 1)")
        if not 0 < burn_in_years < wearout_years:
            raise ValueError("need 0 < burn_in_years < wearout_years")
        to_rate = lambda afr: -math.log1p(-afr) / YEAR  # noqa: E731
        self.boundaries = [burn_in_years * YEAR, wearout_years * YEAR]
        self.rates = [to_rate(early_afr), to_rate(steady_afr), to_rate(wearout_afr)]

    def time_to_failure(
        self, rng: np.random.Generator, disk_id: int, in_service_since: float
    ) -> float:
        del disk_id
        # Invert the CDF: draw total hazard H ~ Exp(1), walk the segments.
        h = rng.exponential(1.0)
        t = 0.0
        prev_boundary = 0.0
        for boundary, rate in zip(self.boundaries, self.rates[:-1]):
            span = boundary - prev_boundary
            if h <= rate * span:
                return in_service_since + t + h / rate
            h -= rate * span
            t += span
            prev_boundary = boundary
        return in_service_since + t + h / self.rates[-1]


class TraceFailures:
    """Replays an explicit failure schedule.

    Each disk's failures are looked up in the trace; re-failures of a
    replacement disk use the next trace entry for the same disk id after
    the in-service time.  Disks without trace entries never fail.
    """

    def __init__(self, events: list[tuple[float, int]]) -> None:
        self._by_disk: dict[int, list[float]] = {}
        for t, disk in events:
            self._by_disk.setdefault(int(disk), []).append(float(t))
        for times in self._by_disk.values():
            times.sort()

    def time_to_failure(
        self, rng: np.random.Generator, disk_id: int, in_service_since: float
    ) -> float:
        del rng  # fully deterministic
        times = self._by_disk.get(int(disk_id))
        if not times:
            return math.inf
        i = bisect.bisect_right(times, in_service_since)
        return times[i] if i < len(times) else math.inf
