"""Failure traces: I/O, synthesis, and burst injection (§3 substitution).

The paper can replay *real* failure traces; those are proprietary (LANL /
Backblaze operational data), so this module provides the closest synthetic
equivalent: a generator that mixes the same independent exponential
background failures with temporally-correlated bursts (rack-localized or
scattered), plus CSV persistence so externally-sourced traces in the same
simple format (``time_seconds,disk_id``) drop straight in.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from pathlib import Path
from typing import TextIO

import numpy as np

from ..core.config import DatacenterConfig, YEAR

__all__ = ["FailureTrace", "SyntheticTraceGenerator"]


@dataclasses.dataclass
class FailureTrace:
    """An explicit failure schedule: sorted (time_seconds, disk_id) pairs."""

    events: list[tuple[float, int]]
    duration: float
    total_disks: int

    def __post_init__(self) -> None:
        self.events = sorted((float(t), int(d)) for t, d in self.events)
        for t, d in self.events:
            if not 0 <= t <= self.duration:
                raise ValueError(f"event time {t} outside [0, {self.duration}]")
            if not 0 <= d < self.total_disks:
                raise ValueError(f"disk id {d} out of range")

    def __len__(self) -> int:
        return len(self.events)

    @property
    def annualized_failure_rate(self) -> float:
        """Empirical AFR of the trace (failures / disk-year)."""
        disk_years = self.total_disks * self.duration / YEAR
        return len(self.events) / disk_years if disk_years else 0.0

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write as ``time_seconds,disk_id`` CSV with a header."""
        with open(path, "w", newline="") as fh:
            self._write(fh)

    def to_csv_string(self) -> str:
        buf = io.StringIO()
        self._write(buf)
        return buf.getvalue()

    def _write(self, fh: TextIO) -> None:
        writer = csv.writer(fh)
        writer.writerow(["time_seconds", "disk_id"])
        writer.writerow(["#duration", self.duration])
        writer.writerow(["#total_disks", self.total_disks])
        for t, d in self.events:
            writer.writerow([f"{t:.3f}", d])

    @classmethod
    def from_csv(cls, path: str | Path) -> "FailureTrace":
        """Read a trace written by :meth:`to_csv`."""
        with open(path, newline="") as fh:
            return cls._read(fh)

    @classmethod
    def from_csv_string(cls, text: str) -> "FailureTrace":
        return cls._read(io.StringIO(text))

    @classmethod
    def _read(cls, fh: TextIO) -> "FailureTrace":
        reader = csv.reader(fh)
        header = next(reader)
        if header[:2] != ["time_seconds", "disk_id"]:
            raise ValueError("not a failure-trace CSV (bad header)")
        duration = None
        total_disks = None
        events: list[tuple[float, int]] = []
        for row in reader:
            if not row:
                continue
            if row[0] == "#duration":
                duration = float(row[1])
            elif row[0] == "#total_disks":
                total_disks = int(row[1])
            else:
                events.append((float(row[0]), int(row[1])))
        if duration is None or total_disks is None:
            raise ValueError("trace CSV missing #duration/#total_disks rows")
        return cls(events=events, duration=duration, total_disks=total_disks)


class SyntheticTraceGenerator:
    """Generates Backblaze-like synthetic traces: background + bursts.

    Parameters
    ----------
    dc:
        Topology (disk count and rack geometry for burst localization).
    background_afr:
        Independent exponential failure rate.
    bursts_per_year:
        Expected rate of correlated burst events.
    burst_size / burst_racks:
        Mean disks per burst and how many racks each burst concentrates in
        (1 reproduces the paper's "highly localized" worst case).
    burst_window:
        Seconds over which a burst's failures are spread.
    """

    def __init__(
        self,
        dc: DatacenterConfig | None = None,
        background_afr: float = 0.01,
        bursts_per_year: float = 2.0,
        burst_size: float = 10.0,
        burst_racks: int = 1,
        burst_window: float = 600.0,
    ) -> None:
        self.dc = dc if dc is not None else DatacenterConfig()
        if not 0 <= background_afr < 1:
            raise ValueError("background_afr must be in [0, 1)")
        if bursts_per_year < 0 or burst_size <= 0 or burst_window < 0:
            raise ValueError("burst parameters must be non-negative")
        if not 1 <= burst_racks <= self.dc.racks:
            raise ValueError("burst_racks out of range")
        self.background_afr = background_afr
        self.bursts_per_year = bursts_per_year
        self.burst_size = burst_size
        self.burst_racks = burst_racks
        self.burst_window = burst_window

    def generate(
        self, duration: float = YEAR, seed: int = 0
    ) -> FailureTrace:
        """Produce a trace over ``duration`` seconds."""
        rng = np.random.default_rng(seed)
        dc = self.dc
        events: list[tuple[float, int]] = []

        # Background: each disk fails independently; thinning a Poisson
        # process per disk is equivalent and vectorizes cleanly.
        if self.background_afr > 0:
            rate = -np.log1p(-self.background_afr) / YEAR
            expected = rate * duration * dc.total_disks
            n = rng.poisson(expected)
            times = rng.uniform(0, duration, size=n)
            disks = rng.integers(dc.total_disks, size=n)
            events.extend(zip(times.tolist(), disks.tolist()))

        # Bursts: Poisson arrivals; each picks racks and concentrates
        # failures there within a short window.
        n_bursts = rng.poisson(self.bursts_per_year * duration / YEAR)
        for _ in range(n_bursts):
            start = rng.uniform(0, max(duration - self.burst_window, 0.0))
            racks = rng.choice(dc.racks, size=self.burst_racks, replace=False)
            size = max(1, rng.poisson(self.burst_size))
            pool = np.concatenate(
                [rack * dc.disks_per_rack + np.arange(dc.disks_per_rack)
                 for rack in racks]
            )
            size = min(size, len(pool))
            victims = rng.choice(pool, size=size, replace=False)
            offsets = rng.uniform(0, self.burst_window, size=size)
            events.extend(zip((start + offsets).tolist(), victims.tolist()))

        return FailureTrace(
            events=events, duration=duration, total_disks=dc.total_disks
        )
