"""Full-datacenter MLEC simulator (paper §3 "Simulation").

Event-driven simulation of the entire deployment -- 57,600 disks in the
default setup -- under any failure model (distribution, rules, or trace
replay), any MLEC scheme, and any repair method:

* every disk failure is an event; pools track their outstanding damage with
  the same priority-repair state machine as
  :class:`repro.sim.local_pool.LocalPoolSimulator`;
* a pool whose damage reaches ``p_l+1`` on co-striped chunks becomes
  *catastrophic*: the chosen repair method's network stage opens, cross-rack
  repair traffic is accounted, and the pool exits the catastrophic state
  when the network stage completes;
* whenever ``p_n+1`` co-striped pools are concurrently catastrophic the
  simulator samples whether a network stripe is actually lost (the same
  stripe-sharing probability the analytic models use) and records a data
  loss.

At the paper's 1% AFR catastrophic events are (by design!) vanishingly
rare, so PDL measurement through this simulator alone is only practical in
accelerated or burst-injected scenarios -- exactly why the paper adds the
splitting/DP/Markov strategies.  What the full simulator measures well at
nominal rates: repair traffic, repair times, failure statistics, and
behaviour under correlated bursts from synthetic or replayed traces.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis.combinatorics import any_of_many
from ..core.config import BandwidthConfig, FailureConfig, YEAR
from ..core.scheme import MLECScheme
from ..core.types import Placement, RepairMethod
from ..repair.bandwidth import BandwidthModel
from ..topology.datacenter import DatacenterTopology
from .events import EventQueue, EventType
from .failures import ExponentialFailures, FailureModel

__all__ = ["DataLossEvent", "SystemSimResult", "MLECSystemSimulator"]


@dataclasses.dataclass(frozen=True)
class DataLossEvent:
    """A network-stripe loss observed by the simulator."""

    time: float
    pools: tuple[int, ...]


@dataclasses.dataclass
class SystemSimResult:
    """Aggregate outcome of one system run."""

    mission_time: float
    n_disk_failures: int
    n_catastrophic_events: int
    data_loss_events: list[DataLossEvent]
    cross_rack_repair_bytes: float
    local_repair_bytes: float
    max_concurrent_catastrophic: int

    @property
    def lost_data(self) -> bool:
        return bool(self.data_loss_events)


class _PoolState:
    """Damage bookkeeping for one local pool (see local_pool.py)."""

    __slots__ = ("failed", "work", "catastrophic_until")

    def __init__(self, parities: int) -> None:
        self.failed = 0
        self.work = np.zeros(parities + 1)
        self.catastrophic_until = -1.0

    def is_idle(self) -> bool:
        return self.failed == 0 and not self.work.any()


class MLECSystemSimulator:
    """Simulates a whole MLEC deployment.

    Parameters
    ----------
    scheme:
        The MLEC scheme (placement decides pool geometry and co-striping).
    method:
        Repair method for catastrophic pools.
    bw, failures:
        Bandwidth and failure/detection configuration (paper defaults).
    failure_model:
        Per-disk failure model; defaults to the configured exponential AFR.
    """

    def __init__(
        self,
        scheme: MLECScheme,
        method: RepairMethod = RepairMethod.R_FCO,
        bw: BandwidthConfig | None = None,
        failures: FailureConfig | None = None,
        failure_model: FailureModel | None = None,
    ) -> None:
        self.scheme = scheme
        self.method = method
        self.bw = bw if bw is not None else BandwidthConfig()
        self.failures = failures if failures is not None else FailureConfig()
        self.failure_model = (
            failure_model
            if failure_model is not None
            else ExponentialFailures(self.failures.annual_failure_rate)
        )
        self.topo = DatacenterTopology(scheme.dc)
        model = BandwidthModel(scheme, self.bw)
        self._local_rate = model.single_disk_repair_rate().rate
        self._network_rate = model.network_repair_rate().rate
        s = scheme
        self._clustered = s.local_placement is Placement.CLUSTERED
        chunks = s.local_pool_disks * s.dc.disk_capacity_bytes / s.dc.chunk_size_bytes
        self._stripes_per_pool = chunks / s.params.n_l
        self._chunks_per_disk = s.dc.disk_capacity_bytes / s.dc.chunk_size_bytes

    # ------------------------------------------------------------------
    def _pool_of_disk(self, disk_id: int) -> int:
        s = self.scheme
        if self._clustered:
            return disk_id // s.params.n_l
        return disk_id // s.dc.disks_per_enclosure

    def _class_size(self, damage: int) -> float:
        s = self.scheme
        if self._clustered:
            return self._stripes_per_pool
        frac = 1.0
        for j in range(damage):
            frac *= (s.params.n_l - j) / (s.local_pool_disks - j)
        return self._stripes_per_pool * frac

    def _network_stage_bytes(self, lost_stripes: float) -> float:
        """Bytes the network stage must rebuild for this method."""
        s = self.scheme
        if self.method is RepairMethod.R_ALL:
            return float(s.local_pool_capacity_bytes)
        if self.method is RepairMethod.R_FCO:
            return (s.params.p_l + 1) * s.dc.disk_capacity_bytes
        per_stripe = (
            s.params.p_l + 1 if self.method is RepairMethod.R_HYB else 1
        )
        return lost_stripes * per_stripe * s.dc.chunk_size_bytes

    def _share_probability(self, n_catastrophic_pools: int, rho: float) -> float:
        """P[some network stripe is lost across these catastrophic pools]."""
        s = self.scheme
        t = n_catastrophic_pools
        eff_rho = 1.0 if self.method is RepairMethod.R_ALL else min(1.0, rho)
        joint = eff_rho**t
        if s.network_placement is Placement.CLUSTERED:
            return any_of_many(joint, self._stripes_per_pool)
        align = 1.0
        for j in range(t):
            align *= (s.params.n_n - j) / (s.dc.racks - j)
        align /= s.local_pools_per_rack**t
        return any_of_many(align * joint, s.network_stripes_total())

    def _co_stripe_key(self, pool_id: int) -> int:
        """Pools sharing this key can host rows of the same network stripe."""
        s = self.scheme
        if s.network_placement is Placement.DECLUSTERED:
            return 0
        ppr = s.local_pools_per_rack
        rack = pool_id // ppr
        return (rack // s.network_group_racks) * ppr + pool_id % ppr

    # ------------------------------------------------------------------
    def run(self, mission_time: float = YEAR, seed: int = 0) -> SystemSimResult:
        """Run the system for ``mission_time`` seconds."""
        s = self.scheme
        rng = np.random.default_rng(seed)
        queue = EventQueue()
        queue.push(mission_time, EventType.END_OF_MISSION)

        # Initial per-disk failure schedules.  Exponential models allow a
        # fast vectorized path; generic models fall back to the protocol.
        if isinstance(self.failure_model, ExponentialFailures):
            times = rng.exponential(
                1.0 / self.failure_model.rate, size=self.topo.total_disks
            )
            for disk in np.nonzero(times <= mission_time)[0]:
                queue.push(float(times[disk]), EventType.DISK_FAILURE, int(disk))
        else:
            for disk in range(self.topo.total_disks):
                t = self.failure_model.time_to_failure(rng, disk, 0.0)
                if t <= mission_time:
                    queue.push(t, EventType.DISK_FAILURE, disk)

        pools: dict[int, _PoolState] = {}
        catastrophic: dict[int, float] = {}  # pool id -> window end time
        p_l = s.params.p_l
        threshold = s.params.p_n + 1

        n_failures = 0
        n_catastrophic = 0
        cross_rack_bytes = 0.0
        local_bytes = 0.0
        max_concurrent = 0
        losses: list[DataLossEvent] = []
        # Local repair is modelled as a fixed-latency drain per pool: each
        # failure's data is restored one local-repair time after detection.
        local_disk_time = (
            self.failures.detection_time
            + s.dc.disk_capacity_bytes / self._local_rate
        )

        def check_data_loss(now: float, pool_id: int, rho: float) -> None:
            nonlocal max_concurrent
            # Prune expired windows.
            for pid in [p for p, until in catastrophic.items() if until <= now]:
                del catastrophic[pid]
            key = self._co_stripe_key(pool_id)
            ppr = s.local_pools_per_rack
            concurrent = {
                pid for pid in catastrophic
                if self._co_stripe_key(pid) == key
            }
            concurrent.add(pool_id)
            racks = {pid // ppr for pid in concurrent}
            max_concurrent = max(max_concurrent, len(concurrent))
            if len(racks) >= threshold:
                if rng.random() < self._share_probability(len(racks), rho):
                    losses.append(
                        DataLossEvent(time=now, pools=tuple(sorted(concurrent)))
                    )

        while True:
            event = queue.pop()
            if event is None or event.kind is EventType.END_OF_MISSION:
                break
            now = event.time

            if event.kind is EventType.DISK_FAILURE:
                n_failures += 1
                disk = event.payload
                pool_id = self._pool_of_disk(disk)
                state = pools.setdefault(pool_id, _PoolState(p_l))

                # Catastrophe test: does the new failure hit outstanding
                # damage-p_l stripes?
                lost_stripes = 0.0
                if self._clustered:
                    if state.failed >= p_l:
                        lost_stripes = self._stripes_per_pool
                elif state.work[p_l] > 1e-6:
                    hits = state.work[p_l] * (
                        (s.params.n_l - p_l) / (s.local_pool_disks - p_l)
                    )
                    if rng.random() < min(1.0, hits):
                        lost_stripes = max(1.0, hits)

                if lost_stripes > 0.0:
                    n_catastrophic += 1
                    rho = lost_stripes / self._stripes_per_pool
                    rebuild = self._network_stage_bytes(lost_stripes)
                    window = (
                        self.failures.detection_time
                        + rebuild / self._network_rate
                    )
                    cross_rack_bytes += rebuild * (s.params.k_n + 1)
                    check_data_loss(now, pool_id, rho)
                    catastrophic[pool_id] = max(
                        catastrophic.get(pool_id, 0.0), now + window
                    )

                # Damage bookkeeping (promotion of unrepaired damage).
                if not self._clustered:
                    for d in range(p_l - 1, 0, -1):
                        share = (s.params.n_l - d) / (s.local_pool_disks - d)
                        promoted = state.work[d] * share
                        state.work[d + 1] += promoted
                        state.work[d] -= promoted
                    state.work[1] += self._chunks_per_disk
                state.failed = min(state.failed + 1, p_l)
                # Local drain: this failure's data is restored after the
                # local repair latency (coarse but conservative for the
                # damage window; the pool-level simulator refines this).
                queue.push(
                    now + local_disk_time, EventType.REPAIR_COMPLETE, pool_id
                )
                local_bytes += s.dc.disk_capacity_bytes
                # Replacement disk enters service.
                t = self.failure_model.time_to_failure(rng, disk, now)
                if t <= mission_time:
                    queue.push(t, EventType.DISK_FAILURE, disk)

            elif event.kind is EventType.REPAIR_COMPLETE:
                pool_id = event.payload
                state = pools.get(pool_id)
                if state is None:
                    continue
                state.failed = max(0, state.failed - 1)
                if not self._clustered:
                    # One disk's worth of chunk repairs drains, highest
                    # classes first.
                    budget = self._chunks_per_disk
                    for d in range(p_l, 0, -1):
                        take = min(state.work[d], budget)
                        state.work[d] -= take
                        budget -= take
                        if budget <= 0:
                            break
                if state.is_idle():
                    pools.pop(pool_id, None)

        return SystemSimResult(
            mission_time=mission_time,
            n_disk_failures=n_failures,
            n_catastrophic_events=n_catastrophic,
            data_loss_events=losses,
            cross_rack_repair_bytes=cross_rack_bytes,
            local_repair_bytes=local_bytes,
            max_concurrent_catastrophic=max_concurrent,
        )
