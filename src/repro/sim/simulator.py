"""Full-datacenter MLEC simulator (paper §3 "Simulation").

Event-driven simulation of the entire deployment -- 57,600 disks in the
default setup -- under any failure model (distribution, rules, or trace
replay), any MLEC scheme, and any repair method:

* every disk failure is an event; pools track their outstanding damage with
  the same priority-repair state machine as
  :class:`repro.sim.local_pool.LocalPoolSimulator`;
* a pool whose damage reaches ``p_l+1`` on co-striped chunks becomes
  *catastrophic*: the chosen repair method's network stage opens, cross-rack
  repair traffic is accounted, and the pool exits the catastrophic state
  when the network stage completes;
* whenever ``p_n+1`` co-striped pools are concurrently catastrophic the
  simulator samples whether a network stripe is actually lost (the same
  stripe-sharing probability the analytic models use) and records a data
  loss.

Beyond plain disk deaths the simulator understands the correlated fault
events injected by :class:`repro.faults.FaultInjector`:

* ``TRANSIENT_OFFLINE`` / ``TRANSIENT_ONLINE`` -- a rack or enclosure
  drops out and returns with its data intact; the affected pools run
  *degraded* (the outage counts toward unavailability, not data loss);
* ``SECTOR_ERROR`` -- latent corrupt chunks accumulate silently and are
  only found by a ``SCRUB`` pass, by repair reads, or -- worst case -- when
  a failure leaves a stripe depending on a corrupt chunk, which escalates
  into a catastrophic (network-stage) repair;
* ``BANDWIDTH_CHANGE`` -- the repair-bandwidth budget changes mid-flight;
  every active network-stage repair banks the progress it made at the old
  rate and re-plans its completion against the new one.

At the paper's 1% AFR catastrophic events are (by design!) vanishingly
rare, so PDL measurement through this simulator alone is only practical in
accelerated or burst-injected scenarios -- exactly why the paper adds the
splitting/DP/Markov strategies.  What the full simulator measures well at
nominal rates: repair traffic, repair times, failure statistics, and
behaviour under correlated bursts from synthetic or replayed traces.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable

import numpy as np

from ..analysis.combinatorics import any_of_many
from ..core.config import BandwidthConfig, FailureConfig, YEAR
from ..core.scheme import MLECScheme
from ..core.types import Placement, RepairMethod
from ..obs import DISABLED_TIMERS, MetricsRegistry, Timers, TraceRecorder
from ..obs.report import REPAIR_HOURS_BUCKETS
from ..repair.bandwidth import BandwidthModel
from ..topology.datacenter import DatacenterTopology
from .events import Event, EventQueue, EventType
from .failures import ExponentialFailures, FailureModel

__all__ = ["DataLossEvent", "SystemSimResult", "MLECSystemSimulator"]


@dataclasses.dataclass(frozen=True)
class DataLossEvent:
    """A network-stripe loss observed by the simulator."""

    time: float
    pools: tuple[int, ...]


@dataclasses.dataclass
class SystemSimResult:
    """Aggregate outcome of one system run.

    The trailing block of fields is the degraded-mode accounting added for
    fault injection; it stays at its zero defaults for plain runs.
    """

    mission_time: float
    n_disk_failures: int
    n_catastrophic_events: int
    data_loss_events: list[DataLossEvent]
    cross_rack_repair_bytes: float
    local_repair_bytes: float
    max_concurrent_catastrophic: int
    # --- fault-injection / degraded-mode accounting -------------------
    n_transient_outages: int = 0
    n_unavailability_events: int = 0
    offline_disk_seconds: float = 0.0
    n_sector_errors: int = 0
    n_latent_errors_detected: int = 0
    n_latent_induced_catastrophes: int = 0
    scrub_repair_bytes: float = 0.0
    n_scrubs: int = 0
    n_bandwidth_changes: int = 0
    n_repair_replans: int = 0
    net_repair_seconds: float = 0.0
    degraded_repair_seconds: float = 0.0

    @property
    def lost_data(self) -> bool:
        return bool(self.data_loss_events)


class _PoolState:
    """Damage bookkeeping for one local pool (see local_pool.py)."""

    __slots__ = ("failed", "offline", "work")

    def __init__(self, parities: int) -> None:
        self.failed = 0
        self.offline = 0
        self.work = np.zeros(parities + 1)

    def is_idle(self) -> bool:
        return self.failed == 0 and self.offline == 0 and not self.work.any()


class _NetRepair:
    """One in-flight network-stage repair of a catastrophic pool.

    ``remaining`` bytes still to rebuild; ``clock`` is the last time the
    repair's progress was banked (starts at ``ready_at``, the end of the
    detection window, so no progress accrues before detection).
    ``started``/``total`` exist for tracing only: when the catastrophe was
    registered and the largest byte window it ever covered.
    """

    __slots__ = ("ready_at", "remaining", "clock", "started", "total")

    def __init__(self, ready_at: float, remaining: float, started: float) -> None:
        self.ready_at = ready_at
        self.remaining = remaining
        self.clock = ready_at
        self.started = started
        self.total = remaining


class _RunState:
    """All mutable state of one simulation run.

    Exposed read-only to observers (see ``MLECSystemSimulator.run``); the
    invariant checker in :mod:`repro.faults.invariants` audits these fields
    after every event.
    """

    __slots__ = (
        "rng", "pools", "net_repairs", "latent", "offline_since",
        "net_factor", "local_factor", "losses",
        "n_failures", "n_catastrophic", "cross_rack_bytes", "local_bytes",
        "max_concurrent",
        "n_transient_outages", "n_unavail", "offline_disk_seconds",
        "n_sector_errors", "n_latent_detected", "n_latent_induced",
        "n_latent_induced_chunks", "scrub_repair_bytes", "n_scrubs",
        "n_bandwidth_changes", "n_repair_replans",
        "net_repair_seconds", "degraded_repair_seconds",
        "recorder", "metrics",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        recorder: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.rng = rng
        self.recorder = recorder
        self.metrics = metrics
        self.pools: dict[int, _PoolState] = {}
        self.net_repairs: dict[int, _NetRepair] = {}
        self.latent: dict[int, int] = {}  # pool id -> latent corrupt chunks
        self.offline_since: dict[int, float] = {}  # disk id -> offline time
        self.net_factor = 1.0
        self.local_factor = 1.0
        self.losses: list[DataLossEvent] = []
        self.n_failures = 0
        self.n_catastrophic = 0
        self.cross_rack_bytes = 0.0
        self.local_bytes = 0.0
        self.max_concurrent = 0
        self.n_transient_outages = 0
        self.n_unavail = 0
        self.offline_disk_seconds = 0.0
        self.n_sector_errors = 0
        self.n_latent_detected = 0
        self.n_latent_induced = 0
        self.n_latent_induced_chunks = 0
        self.scrub_repair_bytes = 0.0
        self.n_scrubs = 0
        self.n_bandwidth_changes = 0
        self.n_repair_replans = 0
        self.net_repair_seconds = 0.0
        self.degraded_repair_seconds = 0.0


#: Observer signature: called after every processed event with the event
#: and the (read-only) run state.
SimObserver = Callable[[Event, _RunState], None]


class MLECSystemSimulator:
    """Simulates a whole MLEC deployment.

    Parameters
    ----------
    scheme:
        The MLEC scheme (placement decides pool geometry and co-striping).
    method:
        Repair method for catastrophic pools.
    bw, failures:
        Bandwidth and failure/detection configuration (paper defaults).
    failure_model:
        Per-disk failure model; defaults to the configured exponential AFR.
        A :class:`repro.faults.FaultInjector` (anything exposing a
        ``schedule(queue, mission_time)`` hook) additionally injects
        correlated fault events at run start.
    timers:
        Optional :class:`repro.obs.Timers` profiling the hot handlers
        (``sim.on_disk_failure``, ``sim.advance_net_repairs``).  Defaults
        to the shared disabled sink, which costs one branch per call.
    """

    def __init__(
        self,
        scheme: MLECScheme,
        method: RepairMethod = RepairMethod.R_FCO,
        bw: BandwidthConfig | None = None,
        failures: FailureConfig | None = None,
        failure_model: FailureModel | None = None,
        timers: Timers | None = None,
    ) -> None:
        self.scheme = scheme
        self.method = method
        self.timers = timers if timers is not None else DISABLED_TIMERS
        self.bw = bw if bw is not None else BandwidthConfig()
        self.failures = failures if failures is not None else FailureConfig()
        self.failure_model = (
            failure_model
            if failure_model is not None
            else ExponentialFailures(self.failures.annual_failure_rate)
        )
        self.topo = DatacenterTopology(scheme.dc)
        model = BandwidthModel(scheme, self.bw)
        self._local_rate = model.single_disk_repair_rate().rate
        self._network_rate = model.network_repair_rate().rate
        s = scheme
        self._clustered = s.local_placement is Placement.CLUSTERED
        chunks = s.local_pool_disks * s.dc.disk_capacity_bytes / s.dc.chunk_size_bytes
        self._stripes_per_pool = chunks / s.params.n_l
        self._chunks_per_disk = s.dc.disk_capacity_bytes / s.dc.chunk_size_bytes

    # ------------------------------------------------------------------
    def _pool_of_disk(self, disk_id: int) -> int:
        s = self.scheme
        if self._clustered:
            return disk_id // s.params.n_l
        return disk_id // s.dc.disks_per_enclosure

    def _class_size(self, damage: int) -> float:
        s = self.scheme
        if self._clustered:
            return self._stripes_per_pool
        frac = 1.0
        for j in range(damage):
            frac *= (s.params.n_l - j) / (s.local_pool_disks - j)
        return self._stripes_per_pool * frac

    def _network_stage_bytes(self, lost_stripes: float) -> float:
        """Bytes the network stage must rebuild for this method."""
        s = self.scheme
        if self.method is RepairMethod.R_ALL:
            return float(s.local_pool_capacity_bytes)
        if self.method is RepairMethod.R_FCO:
            return (s.params.p_l + 1) * s.dc.disk_capacity_bytes
        per_stripe = (
            s.params.p_l + 1 if self.method is RepairMethod.R_HYB else 1
        )
        return lost_stripes * per_stripe * s.dc.chunk_size_bytes

    def _share_probability(self, n_catastrophic_pools: int, rho: float) -> float:
        """P[some network stripe is lost across these catastrophic pools]."""
        s = self.scheme
        t = n_catastrophic_pools
        eff_rho = 1.0 if self.method is RepairMethod.R_ALL else min(1.0, rho)
        joint = eff_rho**t
        if s.network_placement is Placement.CLUSTERED:
            return any_of_many(joint, self._stripes_per_pool)
        align = 1.0
        for j in range(t):
            align *= (s.params.n_n - j) / (s.dc.racks - j)
        align /= s.local_pools_per_rack**t
        return any_of_many(align * joint, s.network_stripes_total())

    def _co_stripe_key(self, pool_id: int) -> int:
        """Pools sharing this key can host rows of the same network stripe."""
        s = self.scheme
        if s.network_placement is Placement.DECLUSTERED:
            return 0
        ppr = s.local_pools_per_rack
        rack = pool_id // ppr
        return (rack // s.network_group_racks) * ppr + pool_id % ppr

    # ------------------------------------------------------------------
    # Network-stage repair progress
    # ------------------------------------------------------------------
    def _advance_net_repairs(self, st: _RunState, now: float) -> None:
        """Bank progress of every in-flight network repair up to ``now``.

        Progress is linear at the *current* effective rate, so this must be
        called (and is) before every rate change; completed repairs leave
        the catastrophic set.
        """
        timers = self.timers
        if not timers.enabled:
            self._advance_net_repairs_impl(st, now)
            return
        start = time.perf_counter()
        try:
            self._advance_net_repairs_impl(st, now)
        finally:
            timers.add("sim.advance_net_repairs", time.perf_counter() - start)

    def _advance_net_repairs_impl(self, st: _RunState, now: float) -> None:
        rate = self._network_rate * st.net_factor
        done = []
        for pool_id, rep in st.net_repairs.items():
            if now > rep.clock:
                capacity = (now - rep.clock) * rate
                progress = min(rep.remaining, capacity)
                done_at = rep.clock + progress / rate if progress > 0 else rep.clock
                if progress > 0:
                    active = progress / rate
                    st.net_repair_seconds += active
                    if st.net_factor < 1.0:
                        st.degraded_repair_seconds += active
                rep.remaining -= progress
                rep.clock = now
            else:
                done_at = rep.clock
            if rep.remaining <= 1e-6:
                done.append((pool_id, done_at))
        degraded = st.net_factor < 1.0
        for pool_id, done_at in done:
            rep = st.net_repairs.pop(pool_id)
            seconds = done_at - rep.started
            if st.recorder is not None:
                st.recorder.event(
                    done_at,
                    "sim.net_repair_complete",
                    pool=pool_id,
                    bytes=rep.total,
                    seconds=seconds,
                    degraded=degraded,
                )
            if st.metrics is not None:
                st.metrics.histogram(
                    "sim.net_repair_hours", REPAIR_HOURS_BUCKETS
                ).observe(seconds / 3600.0)

    def _check_data_loss(
        self, st: _RunState, now: float, pool_id: int, rho: float
    ) -> None:
        self._advance_net_repairs(st, now)
        s = self.scheme
        key = self._co_stripe_key(pool_id)
        ppr = s.local_pools_per_rack
        concurrent = {
            pid for pid in st.net_repairs
            if self._co_stripe_key(pid) == key
        }
        concurrent.add(pool_id)
        racks = {pid // ppr for pid in concurrent}
        st.max_concurrent = max(st.max_concurrent, len(concurrent))
        if len(racks) >= s.params.p_n + 1:
            if st.rng.random() < self._share_probability(len(racks), rho):
                loss = DataLossEvent(time=now, pools=tuple(sorted(concurrent)))
                st.losses.append(loss)
                if st.recorder is not None:
                    st.recorder.event(
                        now,
                        "sim.data_loss",
                        pools=list(loss.pools),
                        racks=len(racks),
                    )

    def _register_catastrophe(
        self,
        st: _RunState,
        now: float,
        pool_id: int,
        lost_stripes: float,
        latent_induced: bool = False,
    ) -> None:
        s = self.scheme
        st.n_catastrophic += 1
        if latent_induced:
            st.n_latent_induced += 1
        rho = lost_stripes / self._stripes_per_pool
        rebuild = self._network_stage_bytes(lost_stripes)
        st.cross_rack_bytes += rebuild * (s.params.k_n + 1)
        if st.recorder is not None:
            st.recorder.event(
                now,
                "sim.catastrophe",
                pool=pool_id,
                method=self.method.name,
                lost_stripes=lost_stripes,
                rebuild_bytes=rebuild,
                cross_rack_bytes=rebuild * (s.params.k_n + 1),
                latent_induced=latent_induced,
            )
        self._check_data_loss(st, now, pool_id, rho)
        rep = st.net_repairs.get(pool_id)
        if rep is None:
            ready_at = now + self.failures.detection_time
            st.net_repairs[pool_id] = _NetRepair(ready_at, rebuild, started=now)
            if st.recorder is not None:
                st.recorder.event(
                    now,
                    "sim.net_repair_start",
                    pool=pool_id,
                    bytes=rebuild,
                    ready_at=ready_at,
                )
        else:
            # Window extension (not accumulation): matches the previous
            # "max(old window end, new window end)" semantics.
            rep.remaining = max(rep.remaining, rebuild)
            rep.total = max(rep.total, rebuild)
            if st.recorder is not None:
                st.recorder.event(
                    now, "sim.net_repair_extend", pool=pool_id, bytes=rebuild
                )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_disk_failure(
        self, st: _RunState, event: Event, queue: EventQueue, mission_time: float
    ) -> None:
        timers = self.timers
        if not timers.enabled:
            self._on_disk_failure_impl(st, event, queue, mission_time)
            return
        start = time.perf_counter()
        try:
            self._on_disk_failure_impl(st, event, queue, mission_time)
        finally:
            timers.add("sim.on_disk_failure", time.perf_counter() - start)

    def _on_disk_failure_impl(
        self, st: _RunState, event: Event, queue: EventQueue, mission_time: float
    ) -> None:
        s = self.scheme
        p_l = s.params.p_l
        now = event.time
        st.n_failures += 1
        disk = event.payload
        pool_id = self._pool_of_disk(disk)
        state = st.pools.setdefault(pool_id, _PoolState(p_l))
        latent = st.latent.get(pool_id, 0)
        if st.recorder is not None:
            st.recorder.event(
                now,
                "sim.disk_failure",
                pool=pool_id,
                disk=int(disk),
                pool_failed=min(state.failed + 1, p_l),
                degraded=st.net_factor < 1.0 or st.local_factor < 1.0,
            )

        # Catastrophe test: does the new failure hit outstanding
        # damage-p_l stripes (or, with latent sector errors present, push
        # a damage-p_l stripe over the edge via a corrupt chunk)?
        lost_stripes = 0.0
        latent_induced = False
        if self._clustered:
            if state.failed >= p_l:
                lost_stripes = self._stripes_per_pool
            elif latent and state.failed == p_l - 1:
                # p_l concurrent failures; every stripe holding a latent
                # chunk now has p_l+1 unreadable chunks.
                lost_stripes = float(min(latent, int(self._stripes_per_pool)))
                latent_induced = True
                st.latent.pop(pool_id, None)
                st.n_latent_detected += latent
                st.n_latent_induced_chunks += latent
        elif state.work[p_l] > 1e-6:
            hits = state.work[p_l] * (
                (s.params.n_l - p_l) / (s.local_pool_disks - p_l)
            )
            if latent:
                # Chance that a damage-p_l stripe also depends on one of
                # the pool's latent chunks (uniform spread approximation).
                surviving = (s.local_pool_disks - p_l) * self._chunks_per_disk
                hits += state.work[p_l] * latent * (s.params.n_l - p_l) / surviving
            if st.rng.random() < min(1.0, hits):
                lost_stripes = max(1.0, hits)

        if lost_stripes > 0.0:
            self._register_catastrophe(
                st, now, pool_id, lost_stripes, latent_induced
            )

        # Damage bookkeeping (promotion of unrepaired damage).
        combined_before = state.failed + state.offline
        if not self._clustered:
            for d in range(p_l - 1, 0, -1):
                share = (s.params.n_l - d) / (s.local_pool_disks - d)
                promoted = state.work[d] * share
                state.work[d + 1] += promoted
                state.work[d] -= promoted
            state.work[1] += self._chunks_per_disk
        state.failed = min(state.failed + 1, p_l)
        if combined_before <= p_l < state.failed + state.offline:
            # Together with transiently offline disks the pool now exceeds
            # its parity budget: data is unavailable (not lost) until the
            # offline disks return.
            st.n_unavail += 1
        # Local drain: this failure's data is restored after the local
        # repair latency (coarse but conservative for the damage window;
        # the pool-level simulator refines this).  A degraded local
        # bandwidth budget stretches the drain accordingly.
        local_disk_time = (
            self.failures.detection_time
            + s.dc.disk_capacity_bytes / (self._local_rate * st.local_factor)
        )
        queue.push(now + local_disk_time, EventType.REPAIR_COMPLETE, pool_id)
        st.local_bytes += s.dc.disk_capacity_bytes
        # Replacement disk enters service.
        t = self.failure_model.time_to_failure(st.rng, disk, now)
        if t <= mission_time:
            queue.push(t, EventType.DISK_FAILURE, disk)

    def _on_repair_complete(self, st: _RunState, event: Event) -> None:
        s = self.scheme
        p_l = s.params.p_l
        pool_id = event.payload
        state = st.pools.get(pool_id)
        if state is None:
            return
        state.failed = max(0, state.failed - 1)
        if not self._clustered:
            # One disk's worth of chunk repairs drains, highest classes
            # first.
            budget = self._chunks_per_disk
            for d in range(p_l, 0, -1):
                take = min(state.work[d], budget)
                state.work[d] -= take
                budget -= take
                if budget <= 0:
                    break
        # Repair reads sweep the pool's surviving disks, so any latent
        # sector errors are detected (and re-written) as a side effect.
        latent = st.latent.pop(pool_id, 0)
        if latent:
            st.n_latent_detected += latent
            st.scrub_repair_bytes += latent * s.dc.chunk_size_bytes
        if st.recorder is not None:
            st.recorder.event(
                event.time,
                "sim.repair_complete",
                pool=pool_id,
                failed=state.failed,
                latent_detected=latent,
            )
        if state.is_idle():
            st.pools.pop(pool_id, None)

    def _on_transient_offline(self, st: _RunState, event: Event) -> None:
        p_l = self.scheme.params.p_l
        now = event.time
        st.n_transient_outages += 1
        by_pool: dict[int, int] = {}
        for disk in event.payload:
            if disk in st.offline_since:  # overlapping outages: keep first
                continue
            st.offline_since[disk] = now
            pool_id = self._pool_of_disk(disk)
            by_pool[pool_id] = by_pool.get(pool_id, 0) + 1
        for pool_id, count in by_pool.items():
            state = st.pools.setdefault(pool_id, _PoolState(p_l))
            before = state.failed + state.offline
            state.offline += count
            if before <= p_l < state.failed + state.offline:
                st.n_unavail += 1
        if st.recorder is not None:
            st.recorder.event(
                now,
                "sim.transient_offline",
                disks=len(event.payload),
                pools=len(by_pool),
            )

    def _on_transient_online(self, st: _RunState, event: Event) -> None:
        now = event.time
        touched = set()
        for disk in event.payload:
            start = st.offline_since.pop(disk, None)
            if start is None:
                continue
            st.offline_disk_seconds += now - start
            pool_id = self._pool_of_disk(disk)
            state = st.pools.get(pool_id)
            if state is not None:
                state.offline = max(0, state.offline - 1)
                touched.add(pool_id)
        for pool_id in touched:
            state = st.pools.get(pool_id)
            if state is not None and state.is_idle():
                st.pools.pop(pool_id, None)
        if st.recorder is not None:
            st.recorder.event(
                now, "sim.transient_online", disks=len(event.payload)
            )

    def _on_sector_error(self, st: _RunState, event: Event) -> None:
        disk, chunks = event.payload
        pool_id = self._pool_of_disk(disk)
        st.latent[pool_id] = st.latent.get(pool_id, 0) + chunks
        st.n_sector_errors += chunks
        if st.recorder is not None:
            st.recorder.event(
                event.time,
                "sim.sector_error",
                pool=pool_id,
                disk=int(disk),
                chunks=int(chunks),
            )

    def _on_scrub(self, st: _RunState, event: Event) -> None:
        st.n_scrubs += 1
        cleared = 0
        if st.latent:
            chunk = self.scheme.dc.chunk_size_bytes
            for chunks in st.latent.values():
                st.n_latent_detected += chunks
                st.scrub_repair_bytes += chunks * chunk
                cleared += chunks
            st.latent.clear()
        if st.recorder is not None:
            st.recorder.event(
                event.time, "sim.scrub", latent_detected=int(cleared)
            )

    def _on_bandwidth_change(self, st: _RunState, event: Event) -> None:
        net_factor, local_factor = event.payload
        for name, factor in (("network", net_factor), ("local", local_factor)):
            if math.isnan(factor) or not 0 < factor <= 1:
                raise ValueError(
                    f"{name} bandwidth factor must be in (0, 1], got {factor}"
                )
        # Bank progress at the old rate, then re-plan every in-flight
        # network repair against the new one.
        self._advance_net_repairs(st, event.time)
        replanned = 0
        if st.net_repairs and net_factor != st.net_factor:
            replanned = len(st.net_repairs)
            st.n_repair_replans += replanned
        st.net_factor = net_factor
        st.local_factor = local_factor
        st.n_bandwidth_changes += 1
        if st.recorder is not None:
            st.recorder.event(
                event.time,
                "sim.bandwidth_change",
                net_factor=float(net_factor),
                local_factor=float(local_factor),
                replanned=replanned,
            )

    # ------------------------------------------------------------------
    def run(
        self,
        mission_time: float = YEAR,
        seed: int = 0,
        observer: SimObserver | None = None,
        recorder: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> SystemSimResult:
        """Run the system for ``mission_time`` seconds.

        ``observer``, if given, is called as ``observer(event, state)``
        after every processed event (including END_OF_MISSION) -- the hook
        the chaos campaign uses to enforce simulator invariants.  Observers
        must treat the state as read-only.

        ``recorder`` collects typed trace records (``sim.disk_failure``,
        ``sim.catastrophe``, ``sim.net_repair_start``/``_complete``,
        ``sim.data_loss``, ...) and ``metrics`` accumulates run counters
        and the network-repair-time histogram; both are deterministic
        functions of (scheme, seed, mission_time).
        """
        if math.isnan(mission_time) or not mission_time > 0:
            raise ValueError(
                f"mission_time must be a positive number of seconds, "
                f"got {mission_time!r}"
            )
        if math.isinf(mission_time):
            raise ValueError("mission_time must be finite")
        rng = np.random.default_rng(seed)
        queue = EventQueue()
        queue.push(mission_time, EventType.END_OF_MISSION)

        # Correlated-fault injection hook (see repro.faults.FaultInjector).
        schedule = getattr(self.failure_model, "schedule", None)
        if callable(schedule):
            schedule(queue, mission_time)

        # Initial per-disk failure schedules.  Exponential models allow a
        # fast vectorized path; generic models fall back to the protocol.
        if isinstance(self.failure_model, ExponentialFailures):
            times = rng.exponential(
                1.0 / self.failure_model.rate, size=self.topo.total_disks
            )
            for disk in np.nonzero(times <= mission_time)[0]:
                queue.push(float(times[disk]), EventType.DISK_FAILURE, int(disk))
        else:
            for disk in range(self.topo.total_disks):
                t = self.failure_model.time_to_failure(rng, disk, 0.0)
                if t <= mission_time:
                    queue.push(t, EventType.DISK_FAILURE, disk)

        st = _RunState(rng, recorder=recorder, metrics=metrics)
        while True:
            event = queue.pop()
            if event is None or event.kind is EventType.END_OF_MISSION:
                # Bank the tail: repair progress and offline time up to
                # the end of the mission.
                self._advance_net_repairs(st, mission_time)
                for start in st.offline_since.values():
                    st.offline_disk_seconds += mission_time - start
                if observer is not None and event is not None:
                    observer(event, st)
                break

            kind = event.kind
            if kind is EventType.DISK_FAILURE:
                self._on_disk_failure(st, event, queue, mission_time)
            elif kind is EventType.REPAIR_COMPLETE:
                self._on_repair_complete(st, event)
            elif kind is EventType.TRANSIENT_OFFLINE:
                self._on_transient_offline(st, event)
            elif kind is EventType.TRANSIENT_ONLINE:
                self._on_transient_online(st, event)
            elif kind is EventType.SECTOR_ERROR:
                self._on_sector_error(st, event)
            elif kind is EventType.SCRUB:
                self._on_scrub(st, event)
            elif kind is EventType.BANDWIDTH_CHANGE:
                self._on_bandwidth_change(st, event)
            else:
                raise ValueError(f"simulator cannot handle event kind {kind}")
            if observer is not None:
                observer(event, st)

        if recorder is not None:
            recorder.event(
                mission_time,
                "sim.mission_end",
                disk_failures=st.n_failures,
                catastrophic_events=st.n_catastrophic,
                data_loss_events=len(st.losses),
                cross_rack_bytes=st.cross_rack_bytes,
                local_bytes=st.local_bytes,
                max_concurrent_catastrophic=st.max_concurrent,
            )
        if metrics is not None:
            metrics.counter("sim.trials").inc()
            metrics.counter("sim.disk_failures").inc(st.n_failures)
            metrics.counter("sim.catastrophic_events").inc(st.n_catastrophic)
            metrics.counter("sim.data_loss_events").inc(len(st.losses))
            metrics.counter("sim.cross_rack_repair_bytes").inc(st.cross_rack_bytes)
            metrics.counter("sim.local_repair_bytes").inc(st.local_bytes)
            metrics.counter("sim.transient_outages").inc(st.n_transient_outages)
            metrics.counter("sim.sector_errors").inc(st.n_sector_errors)
            metrics.counter("sim.scrubs").inc(st.n_scrubs)
            metrics.counter("sim.bandwidth_changes").inc(st.n_bandwidth_changes)
            metrics.counter("sim.net_repair_seconds").inc(st.net_repair_seconds)

        return SystemSimResult(
            mission_time=mission_time,
            n_disk_failures=st.n_failures,
            n_catastrophic_events=st.n_catastrophic,
            data_loss_events=st.losses,
            cross_rack_repair_bytes=st.cross_rack_bytes,
            local_repair_bytes=st.local_bytes,
            max_concurrent_catastrophic=st.max_concurrent,
            n_transient_outages=st.n_transient_outages,
            n_unavailability_events=st.n_unavail,
            offline_disk_seconds=st.offline_disk_seconds,
            n_sector_errors=st.n_sector_errors,
            n_latent_errors_detected=st.n_latent_detected,
            n_latent_induced_catastrophes=st.n_latent_induced,
            scrub_repair_bytes=st.scrub_repair_bytes,
            n_scrubs=st.n_scrubs,
            n_bandwidth_changes=st.n_bandwidth_changes,
            n_repair_replans=st.n_repair_replans,
            net_repair_seconds=st.net_repair_seconds,
            degraded_repair_seconds=st.degraded_repair_seconds,
        )
