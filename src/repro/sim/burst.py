"""Correlated failure-burst simulation (paper §4.1.1, §5.1.3, §5.2.3).

A *failure burst* is ``y`` simultaneous disk failures scattered across ``x``
racks.  The paper's heatmaps (Figures 5, 13, 16) sweep ``(x, y)`` and color
each cell with the probability of data loss (PDL).

The engine has two halves:

* :class:`BurstGenerator` samples concrete failed-disk sets: ``x`` racks
  chosen uniformly, one guaranteed failure per affected rack, the remaining
  ``y - x`` failures uniform over the affected racks' other disks.
* Evaluators turn one failed-disk set into a PDL.  Wherever placement is
  clustered the loss condition is deterministic (0/1); wherever placement
  is declustered the evaluator *integrates analytically over the
  pseudorandom stripe placement* (hypergeometric stripe damage, rack-
  selection DP, Poisson-binomial row losses) instead of sampling billions
  of stripes -- a Rao-Blackwellized estimate with far lower variance than
  the paper's direct simulation, at identical semantics.

Averaging evaluator outputs over generator samples gives the heatmap cell.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

from ..core.arrays import AnyArray
from ..analysis.combinatorics import (
    any_of_many,
    hypergeom_tail,
    poisson_binomial_tail,
    rack_selection_hits_pmf,
)
from ..core.config import DatacenterConfig
from ..core.scheme import LRCScheme, MLECScheme, SLECScheme
from ..core.types import Level, Placement
from ..obs import MetricsRegistry, TraceRecorder
from ..runtime import TrialAggregate, TrialContext, TrialRunner
from ..topology.datacenter import DatacenterTopology
from ..topology.pools import summarize_mlec_damage

__all__ = [
    "BurstEvaluator",
    "BurstGenerator",
    "MLECBurstEvaluator",
    "SLECBurstEvaluator",
    "LRCBurstEvaluator",
    "burst_pdl",
    "burst_pdl_stats",
    "burst_pdl_grid",
]


class BurstEvaluator(Protocol):
    """Structural type of the three burst evaluators (MLEC, SLEC, LRC)."""

    scheme: Any

    def pdl_of_burst(self, failed_disk_ids: AnyArray) -> float:
        """PDL of one concrete failed-disk set."""
        ...


class BurstGenerator:
    """Samples failure bursts: ``y`` failed disks across ``x`` racks."""

    def __init__(
        self,
        dc: DatacenterConfig | None = None,
        rng: np.random.Generator | None = None,
        seed: int = 0,
    ) -> None:
        self.dc = dc if dc is not None else DatacenterConfig()
        self.topo = DatacenterTopology(self.dc)
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def sample(self, failures: int, racks: int) -> AnyArray:
        """One burst: global disk ids of the failed disks.

        Every affected rack receives at least one failure (otherwise it
        would not be an affected rack); the remainder is uniform without
        replacement over the affected racks' remaining disks.
        """
        if racks < 1 or racks > self.dc.racks:
            raise ValueError(f"racks must be in [1, {self.dc.racks}]")
        if failures < racks:
            raise ValueError("need at least one failure per affected rack")
        dpr = self.dc.disks_per_rack
        if failures > racks * dpr:
            raise ValueError("more failures than disks in the affected racks")

        rng = self.rng
        chosen_racks = rng.choice(self.dc.racks, size=racks, replace=False)
        # One guaranteed failure per rack.
        first = chosen_racks * dpr + rng.integers(dpr, size=racks)
        extra_n = failures - racks
        if extra_n == 0:
            return np.sort(first)
        # Remaining failures: uniform w/o replacement over the affected
        # racks' disks, excluding the guaranteed ones.  Sample local indices
        # in [0, racks*(dpr-1)) and map around the exclusions.
        local = rng.choice(racks * (dpr - 1), size=extra_n, replace=False)
        rack_idx = local // (dpr - 1)
        slot = local % (dpr - 1)
        first_slot = first % dpr
        slot = slot + (slot >= first_slot[rack_idx])
        extra = chosen_racks[rack_idx] * dpr + slot
        return np.sort(np.concatenate([first, extra]))


# ----------------------------------------------------------------------
# MLEC evaluator
# ----------------------------------------------------------------------
class MLECBurstEvaluator:
    """PDL of one burst under an MLEC scheme (Figure 5's cell values)."""

    def __init__(self, scheme: MLECScheme) -> None:
        self.scheme = scheme
        self.topo = DatacenterTopology(scheme.dc)
        self._stripes_per_pool = scheme.local_stripes_per_pool()
        self._network_stripes = scheme.network_stripes_total()

    def _lost_stripe_prob(self, failed_in_pool: int) -> float:
        """P[a local stripe of a catastrophic pool is lost]."""
        s = self.scheme
        if s.local_placement is Placement.CLUSTERED:
            return 1.0  # a Cp pool *is* one stripe wide
        return hypergeom_tail(
            s.local_pool_disks, failed_in_pool, s.params.n_l, s.params.p_l
        )

    def pdl_of_burst(self, failed_disk_ids: AnyArray) -> float:
        """Probability this burst loses data, integrating over placement."""
        s = self.scheme
        damage = summarize_mlec_damage(s, failed_disk_ids, self.topo)
        if damage.n_catastrophic <= s.params.p_n:
            return 0.0  # cannot reach p_n+1 lost local stripes anywhere

        cat_racks = damage.catastrophic_racks
        cat_positions = damage.catastrophic_positions
        cat_counts = damage.catastrophic_counts
        loss_threshold = s.params.p_n + 1

        if s.network_placement is Placement.CLUSTERED:
            # Network pools are (rack group, pool position); only pools at
            # the same position within the same group share network stripes.
            groups = cat_racks // s.network_group_racks
            no_loss_log = 0.0
            keys = groups.astype(np.int64) * s.local_pools_per_rack + cat_positions
            for key in np.unique(keys):
                sel = keys == key
                if int(sel.sum()) < loss_threshold:
                    continue
                probs = [self._lost_stripe_prob(c) for c in cat_counts[sel]]
                q_net = poisson_binomial_tail(np.array(probs), loss_threshold)
                if q_net >= 1.0:
                    return 1.0
                no_loss_log += self._stripes_per_pool * np.log1p(-q_net)
            return float(-np.expm1(no_loss_log))

        # Network declustered: one big pool; a network stripe picks n_n
        # distinct racks, then a pool position uniformly in each rack.  A
        # "hit" is "this row landed on a catastrophic pool and its local
        # stripe is lost".
        hit = np.zeros(s.dc.racks)
        per_pool = 1.0 / s.local_pools_per_rack
        for rack, count in zip(cat_racks, cat_counts):
            hit[rack] += per_pool * self._lost_stripe_prob(int(count))
        pmf = rack_selection_hits_pmf(hit, s.params.n_n, loss_threshold)
        return any_of_many(float(pmf[-1]), self._network_stripes)


# ----------------------------------------------------------------------
# SLEC evaluator
# ----------------------------------------------------------------------
class SLECBurstEvaluator:
    """PDL of one burst under a SLEC placement (Figure 13's cell values)."""

    def __init__(self, scheme: SLECScheme) -> None:
        self.scheme = scheme
        self.topo = DatacenterTopology(scheme.dc)
        dc = scheme.dc
        self._total_stripes = dc.total_disks * dc.chunks_per_disk // scheme.params.n

    def pdl_of_burst(self, failed_disk_ids: AnyArray) -> float:
        s = self.scheme
        p = s.params.p
        failed = np.asarray(failed_disk_ids)
        if failed.size <= p:
            return 0.0

        if s.level is Level.LOCAL:
            if s.placement is Placement.CLUSTERED:
                pools = self.topo.clustered_pool_of(failed, s.params.n)
                counts = np.bincount(pools)
                return 1.0 if np.any(counts > p) else 0.0
            # Local-Dp: pool per enclosure, hypergeometric stripe damage.
            pools = self.topo.enclosure_of(failed)
            counts = np.bincount(pools)
            counts = counts[counts > p]
            if counts.size == 0:
                return 0.0
            pool_disks = s.dc.disks_per_enclosure
            stripes_per_pool = pool_disks * s.dc.chunks_per_disk // s.params.n
            log_no = 0.0
            for c in counts:
                q = hypergeom_tail(pool_disks, int(c), s.params.n, p)
                if q >= 1.0:
                    return 1.0
                log_no += stripes_per_pool * np.log1p(-q)
            return float(-np.expm1(log_no))

        if s.placement is Placement.CLUSTERED:
            # Network-Cp: a pool is the set of disks at the same in-rack
            # position across a group of k+p racks.
            racks = self.topo.rack_of(failed)
            groups = racks // s.params.n
            positions = self.topo.position_in_rack_of(failed)
            keys = groups * s.dc.disks_per_rack + positions
            counts = np.bincount(keys.astype(np.int64))
            return 1.0 if np.any(counts > p) else 0.0

        # Network-Dp: a stripe picks n distinct racks and one disk in each.
        racks = self.topo.rack_of(failed)
        per_rack = np.bincount(racks, minlength=s.dc.racks)
        hit = per_rack / s.dc.disks_per_rack
        pmf = rack_selection_hits_pmf(hit, s.params.n, p + 1)
        return any_of_many(float(pmf[-1]), self._total_stripes)


# ----------------------------------------------------------------------
# LRC evaluator
# ----------------------------------------------------------------------
class LRCBurstEvaluator:
    """PDL of one burst under a declustered LRC (Figure 16's cell values).

    Uses the peeling recoverability criterion: a pattern with ``f_g``
    erasures in each local group (data + its local parity) and ``f_free``
    erased global parities is unrecoverable iff
    ``sum_g max(0, f_g - 1) + f_free > r``.
    """

    def __init__(self, scheme: LRCScheme) -> None:
        self.scheme = scheme
        self.topo = DatacenterTopology(scheme.dc)
        dc = scheme.dc
        self._total_stripes = dc.total_disks * dc.chunks_per_disk // scheme.params.n
        self._unrec_fraction = self._unrecoverable_fraction_by_size()

    def _unrecoverable_fraction_by_size(self) -> AnyArray:
        """U[m] = fraction of m-subsets of stripe positions unrecoverable."""
        from math import comb

        p = self.scheme.params
        group_cells = p.group_size + 1  # data chunks + local parity
        n = p.n
        # ways[m] over all erasure patterns; bad[m] over unrecoverable ones.
        # Enumerate with a DP over groups then the global-parity cell.
        # State: (pattern size, peeling residual capped at r+1).
        cap = p.r + 1
        dp = np.zeros((n + 1, cap + 1))
        dp[0, 0] = 1.0
        for _g in range(p.l):
            new = np.zeros_like(dp)
            for f_g in range(group_cells + 1):
                w = comb(group_cells, f_g)
                resid = min(max(0, f_g - 1), cap)
                src = dp[: n + 1 - f_g]
                shifted = np.zeros_like(src)
                if resid == 0:
                    shifted = src * w
                else:
                    shifted[:, resid:] = src[:, :-resid] * w
                    shifted[:, -1:] += src[:, -resid:].sum(axis=1, keepdims=True) * w
                new[f_g:] += shifted
            dp = new
        # Global parities: each erased global parity adds 1 to the residual.
        new = np.zeros_like(dp)
        for f_free in range(p.r + 1):
            w = comb(p.r, f_free)
            resid = min(f_free, cap)
            src = dp[: n + 1 - f_free]
            shifted = np.zeros_like(src)
            if resid == 0:
                shifted = src * w
            else:
                shifted[:, resid:] = src[:, :-resid] * w
                shifted[:, -1:] += src[:, -resid:].sum(axis=1, keepdims=True) * w
            new[f_free:] += shifted
        dp = new
        bad = dp[:, cap]  # residual > r
        totals = np.array([comb(n, m) for m in range(n + 1)], dtype=float)
        return bad / totals

    def pdl_of_burst(self, failed_disk_ids: AnyArray) -> float:
        s = self.scheme
        failed = np.asarray(failed_disk_ids)
        racks = self.topo.rack_of(failed)
        per_rack = np.bincount(racks, minlength=s.dc.racks)
        hit = per_rack / s.dc.disks_per_rack
        n = s.params.n
        pmf = rack_selection_hits_pmf(hit, n, n)  # full pmf, no capping
        q = float(np.dot(pmf, self._unrec_fraction[: len(pmf)]))
        return any_of_many(q, self._total_stripes)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _burst_trial(
    ctx: TrialContext,
    evaluator: BurstEvaluator,
    failures: int,
    racks: int,
    dc: DatacenterConfig,
) -> float:
    """One Monte Carlo trial: sample a burst, evaluate its PDL."""
    gen = BurstGenerator(dc, ctx.rng())
    pdl = evaluator.pdl_of_burst(gen.sample(failures, racks))
    if ctx.metrics is not None:
        ctx.metrics.counter("burst.trials").inc()
        ctx.metrics.counter("burst.loss_trials").inc(int(pdl > 0.0))
    if ctx.trace is not None:
        ctx.trace.event(
            0.0, "burst.trial", failures=failures, racks=racks, pdl=float(pdl)
        )
    return pdl


def burst_pdl_stats(
    evaluator: BurstEvaluator,
    failures: int,
    racks: int,
    trials: int = 100,
    seed: int = 0,
    dc: DatacenterConfig | None = None,
    runner: TrialRunner | None = None,
    metrics: MetricsRegistry | None = None,
    trace: TraceRecorder | None = None,
    batch: str = "auto",
) -> TrialAggregate:
    """Monte-Carlo PDL with confidence interval, fanned out over a runner.

    Trial ``i`` draws from the ``i``-th spawned child of
    ``SeedSequence(seed)``, so the aggregate -- and any ``metrics``/
    ``trace`` telemetry -- is bitwise identical for any worker count.
    Passing a :class:`~repro.runtime.ResilientRunner` adds chunk-level
    checkpointing, retry, and resume with the same determinism guarantee.
    ``batch`` configures the vectorized batch engine when this function
    constructs its own runner (a speed knob only -- results are
    bit-identical in every mode); a caller-provided ``runner`` keeps its
    own setting.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    runner = runner if runner is not None else TrialRunner(batch=batch)
    dc = dc if dc is not None else evaluator.scheme.dc
    return runner.run(
        _burst_trial,
        trials,
        seed=seed,
        args=(evaluator, failures, racks, dc),
        metrics=metrics,
        trace=trace,
    )


def burst_pdl(
    evaluator: BurstEvaluator,
    failures: int,
    racks: int,
    trials: int = 100,
    rng: np.random.Generator | None = None,
    dc: DatacenterConfig | None = None,
    seed: int = 0,
    runner: TrialRunner | None = None,
) -> float:
    """Monte-Carlo PDL for one burst scenario (one heatmap cell).

    With ``rng`` the trials consume the caller's shared stream serially
    (the legacy path; lets one generator thread through a whole grid).
    Without it, trials run through ``runner`` on spawned per-trial streams
    -- deterministic for any worker count.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if rng is not None:
        gen = BurstGenerator(dc if dc is not None else evaluator.scheme.dc, rng)
        total = 0.0
        for _ in range(trials):
            total += evaluator.pdl_of_burst(gen.sample(failures, racks))
        return total / trials
    return burst_pdl_stats(
        evaluator, failures, racks, trials, seed=seed, dc=dc, runner=runner
    ).mean


def _grid_cell_trial(
    ctx: TrialContext,
    cells: tuple[tuple[int, int, int, int], ...],
    evaluator: BurstEvaluator,
    trials: int,
    dc: DatacenterConfig,
) -> float:
    """One heatmap cell: ``trials`` bursts on the cell's private stream."""
    _i, _j, failures, racks = cells[ctx.index]
    gen = BurstGenerator(dc, ctx.rng())
    total = 0.0
    for _ in range(trials):
        total += evaluator.pdl_of_burst(gen.sample(failures, racks))
    return total / trials


def burst_pdl_grid(
    evaluator: BurstEvaluator,
    failure_counts: AnyArray,
    rack_counts: AnyArray,
    trials: int = 100,
    seed: int = 0,
    runner: TrialRunner | None = None,
    workers: int = 1,
    batch: str = "auto",
) -> AnyArray:
    """A full heatmap: PDL[i, j] for failures[i] x racks[j].

    Cells with fewer failures than affected racks are impossible and
    reported as NaN (the paper's figures leave them blank).  With a
    ``runner`` (or ``workers > 1``, which constructs one) the feasible
    cells fan out in parallel, one spawned stream per cell; otherwise the
    legacy serial path threads a single generator through the grid
    (bitwise-stable with historical results).  ``batch`` configures the
    vectorized batch engine for a self-constructed runner (speed only;
    bit-identical results); a caller-provided ``runner`` keeps its own.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if workers < 1:
        raise ValueError(
            f"workers must be >= 1, got {workers}; use workers=1 for "
            "the serial in-process path"
        )
    if runner is None and workers > 1:
        runner = TrialRunner(workers=workers, batch=batch)
    failure_counts = np.asarray(failure_counts)
    rack_counts = np.asarray(rack_counts)
    grid = np.full((len(failure_counts), len(rack_counts)), np.nan)

    if runner is not None:
        cells = tuple(
            (i, j, int(y), int(x))
            for j, x in enumerate(rack_counts)
            for i, y in enumerate(failure_counts)
            if y >= x
        )
        if not cells:
            return grid
        values = runner.map(
            _grid_cell_trial,
            len(cells),
            seed=seed,
            args=(cells, evaluator, trials, evaluator.scheme.dc),
        )
        for (i, j, _y, _x), value in zip(cells, values):
            grid[i, j] = value
        return grid

    rng = np.random.default_rng(seed)
    for j, x in enumerate(rack_counts):
        for i, y in enumerate(failure_counts):
            if y < x:
                continue
            grid[i, j] = burst_pdl(evaluator, int(y), int(x), trials, rng)
    return grid
