"""Event-driven simulation of a single local pool with priority repair.

This is stage 1 of the paper's *splitting* methodology (§3): simulate one
local pool's durability and collect catastrophic-failure samples, which the
network-level stage then injects at MLEC scale.

Model granularity: failures are fully stochastic (any
:class:`repro.sim.failures.FailureModel`); repair progress is tracked at the
damage-class level rather than per stripe:

* **Clustered pools** -- every stripe spans every disk, so a failed disk is
  a failed stripe-column: disks rebuild one at a time onto spares, and any
  failure arriving while ``p_l`` disks are still unrebuilt is catastrophic.
  This is the exact classic-RAID model.

* **Declustered pools** -- priority reconstruction: the stripes with the
  most failed chunks are repaired first.  Outstanding work is kept per
  damage class, with the exact hypergeometric family sizes: a new failure
  with ``i-1`` disks already failed adds ``C(i-1, d-1) * N_d`` critical
  stripes at each damage level ``d`` (``N_d`` = expected stripes covering
  ``d`` specific disks).  Demoting a class costs one chunk per stripe --
  the demoted stripes already belong to the lower classes' families, so
  the accounting telescopes to one full disk per failure.  A failure that
  arrives while damage-``p_l`` stripes are outstanding is catastrophic
  with the hit probability ``outstanding * (w-p)/(D-p)`` -- the same
  expression the Markov model uses, making the two cross-validatable term
  by term.

Tracking expected class sizes instead of ~1e9 individual stripes keeps a
pool-year at a handful of events while preserving the dynamics that matter
for durability: how long the pool dwells one failure away from catastrophe.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.config import YEAR
from .events import EventQueue, EventType
from .failures import ExponentialFailures, FailureModel

__all__ = ["CatastrophicSample", "PoolSimResult", "LocalPoolSimulator"]


@dataclasses.dataclass(frozen=True)
class CatastrophicSample:
    """One catastrophic local-pool event observed by the simulator."""

    time: float
    failed_disks: int
    lost_stripes: float
    lost_fraction: float


@dataclasses.dataclass
class PoolSimResult:
    """Aggregate result of one pool simulation run."""

    mission_time: float
    n_failures: int
    n_catastrophic: int
    catastrophic_samples: list[CatastrophicSample]
    max_concurrent_failures: int

    @property
    def catastrophic_rate_per_year(self) -> float:
        return self.n_catastrophic / (self.mission_time / YEAR)


class LocalPoolSimulator:
    """Simulates one local pool under stochastic failures.

    Parameters mirror :class:`repro.analysis.markov.PoolReliabilityChain`
    so the two are directly comparable.
    """

    def __init__(
        self,
        pool_disks: int,
        stripe_width: int,
        parities: int,
        clustered: bool,
        disk_capacity_bytes: float,
        chunk_size_bytes: float,
        repair_rate: float,
        detection_time: float,
        failure_model: FailureModel | None = None,
    ) -> None:
        if pool_disks < stripe_width:
            raise ValueError("pool smaller than stripe width")
        if parities < 1:
            raise ValueError("need at least one parity")
        self.pool_disks = pool_disks
        self.stripe_width = stripe_width
        self.parities = parities
        self.clustered = clustered
        self.disk_capacity_bytes = disk_capacity_bytes
        self.chunk_size_bytes = chunk_size_bytes
        self.repair_rate = repair_rate
        self.detection_time = detection_time
        self.failure_model = (
            failure_model if failure_model is not None else ExponentialFailures()
        )
        chunks = pool_disks * disk_capacity_bytes / chunk_size_bytes
        self.stripes_in_pool = chunks / stripe_width
        self.chunks_per_disk = disk_capacity_bytes / chunk_size_bytes

    # ------------------------------------------------------------------
    def class_size(self, damage: int) -> float:
        """Expected stripes spanning ``damage`` specific failed disks."""
        if self.clustered:
            return self.stripes_in_pool
        frac = 1.0
        for j in range(damage):
            frac *= (self.stripe_width - j) / (self.pool_disks - j)
        return self.stripes_in_pool * frac

    def run(
        self,
        mission_time: float = YEAR,
        seed: int = 0,
        stop_at_first_catastrophe: bool = False,
    ) -> PoolSimResult:
        """Simulate the pool for ``mission_time`` seconds."""
        if self.clustered:
            return self._run_clustered(mission_time, seed, stop_at_first_catastrophe)
        return self._run_declustered(mission_time, seed, stop_at_first_catastrophe)

    # ------------------------------------------------------------------
    # Clustered: sequential per-disk rebuild onto spares.
    # ------------------------------------------------------------------
    def _run_clustered(
        self, mission_time: float, seed: int, stop_early: bool
    ) -> PoolSimResult:
        rng = np.random.default_rng(seed)
        queue = EventQueue()
        queue.push(mission_time, EventType.END_OF_MISSION)
        for disk in range(self.pool_disks):
            t = self.failure_model.time_to_failure(rng, disk, 0.0)
            if t <= mission_time:
                queue.push(t, EventType.DISK_FAILURE, disk)

        failed = 0
        repairing = False
        n_failures = 0
        max_concurrent = 0
        samples: list[CatastrophicSample] = []
        disk_time = self.disk_capacity_bytes / self.repair_rate

        while True:
            event = queue.pop()
            if event is None or event.kind is EventType.END_OF_MISSION:
                break
            if event.kind is EventType.DISK_FAILURE:
                n_failures += 1
                if failed >= self.parities:
                    # Every stripe spans every disk: certain data loss.
                    samples.append(
                        CatastrophicSample(
                            time=event.time,
                            failed_disks=failed + 1,
                            lost_stripes=self.stripes_in_pool,
                            lost_fraction=1.0,
                        )
                    )
                    if stop_early:
                        failed += 1
                        max_concurrent = max(max_concurrent, failed)
                        break
                failed = min(failed + 1, self.parities)  # clamp post-loss
                max_concurrent = max(max_concurrent, failed)
                if not repairing:
                    repairing = True
                    queue.push(
                        event.time + self.detection_time + disk_time,
                        EventType.REPAIR_COMPLETE,
                    )
            elif event.kind is EventType.REPAIR_COMPLETE:
                failed -= 1
                disk = int(rng.integers(self.pool_disks))
                t = self.failure_model.time_to_failure(rng, disk, event.time)
                if t <= mission_time:
                    queue.push(t, EventType.DISK_FAILURE, disk)
                if failed > 0:
                    queue.push(
                        event.time + disk_time, EventType.REPAIR_COMPLETE
                    )
                else:
                    repairing = False

        return PoolSimResult(
            mission_time=mission_time,
            n_failures=n_failures,
            n_catastrophic=len(samples),
            catastrophic_samples=samples,
            max_concurrent_failures=max_concurrent,
        )

    # ------------------------------------------------------------------
    # Declustered: priority repair over damage classes.
    # ------------------------------------------------------------------
    def _run_declustered(
        self, mission_time: float, seed: int, stop_early: bool
    ) -> PoolSimResult:
        rng = np.random.default_rng(seed)
        queue = EventQueue()
        queue.push(mission_time, EventType.END_OF_MISSION)
        for disk in range(self.pool_disks):
            t = self.failure_model.time_to_failure(rng, disk, 0.0)
            if t <= mission_time:
                queue.push(t, EventType.DISK_FAILURE, disk)

        failed = 0
        # Outstanding demote work (stripes needing one chunk) per class.
        work = np.zeros(self.parities + 1)
        repair_handle: int | None = None
        repair_started = 0.0
        repair_class: int | None = None

        n_failures = 0
        max_concurrent = 0
        samples: list[CatastrophicSample] = []
        chunks_per_second = self.repair_rate / self.chunk_size_bytes

        def settle_progress(now: float) -> None:
            """Credit the in-flight repair's progress and cancel it."""
            nonlocal repair_handle
            if repair_handle is None:
                return
            done = (now - repair_started) * chunks_per_second
            work[repair_class] = max(0.0, work[repair_class] - done)
            queue.cancel(repair_handle)
            repair_handle = None

        def schedule(now: float) -> None:
            nonlocal repair_handle, repair_started, repair_class
            nz = np.nonzero(work > 1e-6)[0]
            if nz.size == 0:
                repair_class = None
                return
            target = int(nz[-1])
            repair_class = target
            repair_started = now
            duration = work[target] / chunks_per_second
            repair_handle = queue.push(
                now + duration, EventType.REPAIR_COMPLETE, target
            )

        while True:
            event = queue.pop()
            if event is None or event.kind is EventType.END_OF_MISSION:
                break

            if event.kind is EventType.DISK_FAILURE:
                n_failures += 1
                settle_progress(event.time)

                if work[self.parities] > 1e-6:
                    # The new disk is fatal if it intersects an outstanding
                    # damage-p_l stripe.
                    hits = work[self.parities] * (
                        (self.stripe_width - self.parities)
                        / (self.pool_disks - self.parities)
                    )
                    if rng.random() < min(1.0, hits):
                        lost = max(1.0, hits)
                        samples.append(
                            CatastrophicSample(
                                time=event.time,
                                failed_disks=failed + 1,
                                lost_stripes=lost,
                                lost_fraction=lost / self.stripes_in_pool,
                            )
                        )
                        if stop_early:
                            break

                failed += 1
                max_concurrent = max(max_concurrent, failed)
                # The new disk promotes a hypergeometric share of each
                # outstanding damage class by one level (only *unrepaired*
                # damage compounds) and contributes its own chunks at
                # damage 1.
                for d in range(self.parities - 1, 0, -1):
                    share = (self.stripe_width - d) / (self.pool_disks - d)
                    promoted = work[d] * share
                    work[d + 1] += promoted
                    work[d] -= promoted
                work[1] += self.chunks_per_disk
                if repair_class is None:
                    # Idle repairer: the new damage waits out detection.
                    queue.push(
                        event.time + self.detection_time,
                        EventType.FAILURE_DETECTED,
                    )
                else:
                    # Busy repairer: keep going, retargeting to the (possibly
                    # higher) critical class; its own detection lag is
                    # absorbed by the in-progress work.
                    schedule(event.time)

            elif event.kind is EventType.FAILURE_DETECTED:
                settle_progress(event.time)
                schedule(event.time)

            elif event.kind is EventType.REPAIR_COMPLETE:
                done_class = event.payload
                repair_handle = None
                if done_class > 1:
                    # Each repaired chunk demotes its stripe by one level;
                    # the stripes' remaining damage re-queues below.
                    work[done_class - 1] += work[done_class]
                work[done_class] = 0.0
                if done_class == 1:
                    # All single-damage chunks rebuilt: every failed disk's
                    # data is restored; replacements enter service.
                    replaced = failed
                    failed = 0
                    for _ in range(replaced):
                        disk = int(rng.integers(self.pool_disks))
                        t = self.failure_model.time_to_failure(
                            rng, disk, event.time
                        )
                        if t <= mission_time:
                            queue.push(t, EventType.DISK_FAILURE, disk)
                schedule(event.time)

        return PoolSimResult(
            mission_time=mission_time,
            n_failures=n_failures,
            n_catastrophic=len(samples),
            catastrophic_samples=samples,
            max_concurrent_failures=max_concurrent,
        )
