"""Full-system event-driven simulation of SLEC and LRC deployments.

The MLEC simulator's counterpart for the paper's §5 baselines: the same
disk-level failure stream, but single-level pools:

* **Local-Cp** -- ``k+p``-disk pools, sequential spare rebuilds; data loss
  as soon as a pool holds more than ``p`` concurrently-unrepaired disks.
* **Local-Dp** -- enclosure pools with priority reconstruction (the
  damage-class work queue of :mod:`repro.sim.local_pool`); loss when a new
  failure hits an outstanding damage-``p`` stripe.
* **Network-Cp / Network-Dp / LRC-Dp** -- network-wide pools; repairs
  consume cross-rack bandwidth and every rebuilt byte is accounted as
  ``(reads + 1)`` cross-rack transfers, which lets the simulator's traffic
  be reconciled against the closed forms in
  :mod:`repro.repair.traffic_comparison`.

Network-declustered (and LRC) data-loss detection uses the same critical-
stripe hit probability as the analytic chain: a failure is fatal only if
it intersects a not-yet-repaired maximum-damage stripe, which for a
system-wide pool includes the stripe-alignment factor automatically.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.arrays import AnyArray
from ..core.config import BandwidthConfig, FailureConfig, YEAR
from ..core.scheme import LRCScheme, SLECScheme
from ..core.types import Level, Placement
from ..obs import MetricsRegistry, TraceRecorder
from .events import EventQueue, EventType
from .failures import ExponentialFailures, FailureModel

__all__ = ["SingleLevelSimResult", "SLECSystemSimulator"]


@dataclasses.dataclass
class SingleLevelSimResult:
    """Aggregate outcome of one SLEC/LRC system run."""

    mission_time: float
    n_disk_failures: int
    data_loss_events: int
    first_loss_time: float | None
    cross_rack_repair_bytes: float
    intra_rack_repair_bytes: float

    @property
    def lost_data(self) -> bool:
        return self.data_loss_events > 0

    @property
    def cross_rack_tb_per_day(self) -> float:
        days = self.mission_time / 86_400.0
        return self.cross_rack_repair_bytes / 1e12 / days if days else 0.0


class SLECSystemSimulator:
    """Event-driven simulation of a single-level EC deployment.

    Parameters
    ----------
    scheme:
        A :class:`repro.core.scheme.SLECScheme` or
        :class:`repro.core.scheme.LRCScheme`.
    bw, failures, failure_model:
        As for :class:`repro.sim.simulator.MLECSystemSimulator`.
    """

    def __init__(
        self,
        scheme: SLECScheme | LRCScheme,
        bw: BandwidthConfig | None = None,
        failures: FailureConfig | None = None,
        failure_model: FailureModel | None = None,
    ) -> None:
        self.scheme = scheme
        self.bw = bw if bw is not None else BandwidthConfig()
        self.failures = failures if failures is not None else FailureConfig()
        self.failure_model = (
            failure_model
            if failure_model is not None
            else ExponentialFailures(self.failures.annual_failure_rate)
        )
        self._is_lrc = isinstance(scheme, LRCScheme)
        dc = scheme.dc
        if self._is_lrc:
            self.width = scheme.params.n
            self.tolerance = scheme.params.r + 1  # guaranteed erasures
            self.local = False
            self.clustered = False
            # single-failure repairs read the local group across racks
            self.read_amp = scheme.params.group_size
            self.cross_rack = True
        else:
            self.width = scheme.params.n
            self.tolerance = scheme.params.p
            self.local = scheme.level is Level.LOCAL
            self.clustered = scheme.placement is Placement.CLUSTERED
            self.read_amp = scheme.params.k
            self.cross_rack = not self.local
        self.pool_disks = (
            scheme.pool_disks if not self._is_lrc else dc.total_disks
        )
        self.chunks_per_disk = dc.disk_capacity_bytes / dc.chunk_size_bytes
        chunks = self.pool_disks * self.chunks_per_disk
        self.stripes_per_pool = chunks / self.width
        self._repair_rate = self._compute_repair_rate()

    # ------------------------------------------------------------------
    def _compute_repair_rate(self) -> float:
        """Rebuild bytes/second inside one pool (Figure 12's models)."""
        d = self.bw.disk_repair_bandwidth
        r = self.bw.rack_repair_bandwidth
        dc = self.scheme.dc
        k = self.read_amp
        if self.local:
            if self.clustered:
                return min((self.pool_disks - 1) * d / k, d)
            return (self.pool_disks - 1) * d / (k + 1)
        if self.clustered:  # network-Cp: spare-disk write bound
            return min((self.width - 1) * r / k, d)
        return dc.racks * r / (k + 1)  # network-wide declustered

    def _pool_of_disk(self, disk: int) -> int:
        dc = self.scheme.dc
        if self._is_lrc or not self.local:
            if self.clustered:
                # network-Cp: pool = (rack group, in-rack position)
                rack = disk // dc.disks_per_rack
                return (rack // self.width) * dc.disks_per_rack + (
                    disk % dc.disks_per_rack
                )
            return 0  # one system-wide pool
        if self.clustered:
            return disk // self.width
        return disk // dc.disks_per_enclosure

    def _class_size(self, damage: int) -> float:
        if self.clustered:
            return self.stripes_per_pool
        frac = 1.0
        for j in range(damage):
            frac *= (self.width - j) / (self.pool_disks - j)
        return self.stripes_per_pool * frac

    # ------------------------------------------------------------------
    def run(
        self,
        mission_time: float = YEAR,
        seed: int = 0,
        recorder: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> SingleLevelSimResult:
        """Simulate the deployment for ``mission_time`` seconds.

        ``recorder`` collects ``slec.disk_failure`` / ``slec.data_loss`` /
        ``slec.mission_end`` trace records; ``metrics`` accumulates run
        counters.  Both are deterministic functions of the seed.
        """
        dc = self.scheme.dc
        rng = np.random.default_rng(seed)
        queue = EventQueue()
        queue.push(mission_time, EventType.END_OF_MISSION)

        if isinstance(self.failure_model, ExponentialFailures):
            times = rng.exponential(
                1.0 / self.failure_model.rate, size=dc.total_disks
            )
            for disk in np.nonzero(times <= mission_time)[0]:
                queue.push(float(times[disk]), EventType.DISK_FAILURE, int(disk))
        else:
            for disk in range(dc.total_disks):
                t = self.failure_model.time_to_failure(rng, disk, 0.0)
                if t <= mission_time:
                    queue.push(t, EventType.DISK_FAILURE, disk)

        # Per-pool state: clustered -> count of unrepaired disks;
        # declustered -> damage-class work vector.
        counts: dict[int, int] = {}
        work: dict[int, AnyArray] = {}
        t_cap = self.tolerance
        n_failures = 0
        losses = 0
        first_loss: float | None = None
        cross_bytes = 0.0
        intra_bytes = 0.0
        disk_bytes = dc.disk_capacity_bytes
        repair_latency = (
            self.failures.detection_time + disk_bytes / self._repair_rate
        )
        # For LRC, not every tolerance-exceeding pattern loses: scale the
        # fatal-hit probability by the unrecoverable fraction at r+2.
        if self._is_lrc:
            from .burst import LRCBurstEvaluator

            u = LRCBurstEvaluator(self.scheme)._unrecoverable_fraction_by_size()
            fatal_fraction = float(u[min(self.tolerance + 1, len(u) - 1)])
        else:
            fatal_fraction = 1.0

        while True:
            event = queue.pop()
            if event is None or event.kind is EventType.END_OF_MISSION:
                break
            now = event.time

            if event.kind is EventType.DISK_FAILURE:
                n_failures += 1
                disk = event.payload
                pool = self._pool_of_disk(disk)
                lost_here = False

                if self.clustered:
                    current = counts.get(pool, 0)
                    if current >= t_cap:
                        losses += 1
                        lost_here = True
                        first_loss = first_loss if first_loss is not None else now
                    else:
                        counts[pool] = current + 1
                else:
                    w = work.setdefault(pool, np.zeros(t_cap + 1))
                    if w[t_cap] > 1e-6:
                        hits = w[t_cap] * (
                            (self.width - t_cap) / (self.pool_disks - t_cap)
                        )
                        if rng.random() < min(1.0, hits) * fatal_fraction:
                            losses += 1
                            lost_here = True
                            first_loss = (
                                first_loss if first_loss is not None else now
                            )
                    for d in range(t_cap - 1, 0, -1):
                        share = (self.width - d) / (self.pool_disks - d)
                        promoted = w[d] * share
                        w[d + 1] += promoted
                        w[d] -= promoted
                    w[1] += self.chunks_per_disk

                # Repair traffic: rebuilt disk + its read amplification.
                moved = disk_bytes * (self.read_amp + 1)
                if self.cross_rack:
                    cross_bytes += moved
                else:
                    intra_bytes += moved
                queue.push(now + repair_latency, EventType.REPAIR_COMPLETE, pool)
                if recorder is not None:
                    recorder.event(
                        now,
                        "slec.disk_failure",
                        pool=pool,
                        disk=int(disk),
                        cross_rack=self.cross_rack,
                    )
                    if lost_here:
                        recorder.event(now, "slec.data_loss", pool=pool)
                t = self.failure_model.time_to_failure(rng, disk, now)
                if t <= mission_time:
                    queue.push(t, EventType.DISK_FAILURE, disk)

            elif event.kind is EventType.REPAIR_COMPLETE:
                pool = event.payload
                if self.clustered:
                    if counts.get(pool, 0) > 0:
                        counts[pool] -= 1
                        if counts[pool] == 0:
                            counts.pop(pool, None)
                else:
                    w = work.get(pool)
                    if w is not None:
                        budget = self.chunks_per_disk
                        for d in range(t_cap, 0, -1):
                            take = min(w[d], budget)
                            w[d] -= take
                            budget -= take
                            if budget <= 0:
                                break
                        if not w.any():
                            work.pop(pool, None)

        if recorder is not None:
            recorder.event(
                mission_time,
                "slec.mission_end",
                disk_failures=n_failures,
                data_loss_events=losses,
                cross_rack_bytes=cross_bytes,
                intra_rack_bytes=intra_bytes,
            )
        if metrics is not None:
            metrics.counter("slec.trials").inc()
            metrics.counter("slec.disk_failures").inc(n_failures)
            metrics.counter("slec.data_loss_events").inc(losses)
            metrics.counter("slec.cross_rack_repair_bytes").inc(cross_bytes)
            metrics.counter("slec.intra_rack_repair_bytes").inc(intra_bytes)

        return SingleLevelSimResult(
            mission_time=mission_time,
            n_disk_failures=n_failures,
            data_loss_events=losses,
            first_loss_time=first_loss,
            cross_rack_repair_bytes=cross_bytes,
            intra_rack_repair_bytes=intra_bytes,
        )
