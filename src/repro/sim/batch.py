"""Struct-of-arrays batch-trial engine for the Monte Carlo hot path.

The trial runners execute sweeps one trial at a time: build a context,
call the trial function, collect the value.  That shape is what makes the
determinism contract simple -- trial ``i`` always consumes the ``i``-th
spawned seed stream -- but it leaves easy vector wins on the table: most
trials of the paper's sweeps are *simple* (no catastrophe, no overlapping
repairs, a guaranteed-zero PDL) and their outcome can be computed for a
whole chunk at once with numpy.

This module is that fast path.  A *batch implementation* takes every
:class:`~repro.runtime.TrialContext` of a chunk plus the sweep's ``args``
and returns the same values the scalar loop would have produced,
**bit-identically**:

* Per-trial random draws are never vectorized *across* trials -- each
  trial's generator is private (``ctx.rng()``), so draws that must happen
  replay the scalar call sequence on the trial's own stream.  What gets
  vectorized is everything *around* the draws: damage classification,
  zero-PDL detection, failure-chain advancement, closed-form accounting.
* Trials that enter rare complex states -- a catastrophic pool, failures
  overlapping inside one pool's repair window, an evaluator with no
  vector form -- are **demoted**: the original scalar trial function (or
  scalar evaluator) runs for exactly that trial, on the same context.
  Because ``ctx.rng()`` restarts the trial's private stream, a demotion
  reproduces the scalar path verbatim.
* Telemetry is reproduced exactly: counters are incremented with the same
  exact-integer / same-fold-order arithmetic the scalar loop uses, and
  per-trial trace records are written through each context's own
  recorder.  Trials that would trace complex event interleavings are
  demoted instead of approximated.

The engine is wired in as a per-chunk implementation detail of
:func:`repro.runtime.executors.run_chunk` (the ``batch=auto|on|off``
knob on :class:`~repro.runtime.TrialRunner` /
:class:`~repro.runtime.ResilientRunner`): a chunk first tries its
registered batch implementation and falls back to the scalar loop on any
error, so a batch bug can cost time but never correctness.  How many
trials ran batched vs. demoted is surfaced through the runner's
operational metrics (``sim.batch_trials`` / ``sim.batch_demotions``).
"""

from __future__ import annotations

import dataclasses
import heapq
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..core.arrays import AnyArray
from ..core.scheme import MLECScheme, SLECScheme
from ..core.types import Level, Placement
from ..runtime.runner import TrialContext
from .burst import (
    BurstGenerator,
    MLECBurstEvaluator,
    SLECBurstEvaluator,
    _burst_trial,
    _grid_cell_trial,
)
from .failures import ExponentialFailures
from .simulator import MLECSystemSimulator, SystemSimResult

__all__ = [
    "BATCH_MIN_TRIALS",
    "BatchStats",
    "batch_impl_for",
    "register_batch_impl",
    "resolve_batch_mode",
    "simulate_batch_impl",
]

#: ``batch="auto"`` engages the batch engine only for chunks at least
#: this large; below it the array setup costs more than it saves.
BATCH_MIN_TRIALS = 8

#: Valid values of the ``batch`` knob.
BATCH_MODES = ("auto", "on", "off")


@dataclasses.dataclass(frozen=True)
class BatchStats:
    """How a batched chunk split: trials vectorized vs. demoted to scalar."""

    batched: int = 0
    demoted: int = 0


#: A batch implementation: ``impl(scalar_fn, contexts, args)`` returns the
#: values the scalar loop would produce for these contexts, plus stats.
BatchImpl = Callable[
    [Callable[..., Any], Sequence[TrialContext], tuple[Any, ...]],
    tuple[list[Any], BatchStats],
]

_IMPLS: dict[Callable[..., Any], BatchImpl] = {}


def register_batch_impl(
    scalar_fn: Callable[..., Any],
) -> Callable[[BatchImpl], BatchImpl]:
    """Register a batch implementation for a scalar trial function.

    Used as a decorator::

        @register_batch_impl(_burst_trial)
        def _burst_trial_batch(fn, contexts, args): ...

    The registry is keyed by the function object itself, so a worker that
    unpickled ``scalar_fn`` by reference resolves the same entry.
    """

    def decorate(impl: BatchImpl) -> BatchImpl:
        _IMPLS[scalar_fn] = impl
        return impl

    return decorate


def batch_impl_for(fn: Callable[..., Any]) -> BatchImpl | None:
    """The registered batch implementation for ``fn``, if any."""
    return _IMPLS.get(fn)


def resolve_batch_mode(mode: str, fn: Callable[..., Any], n_trials: int) -> bool:
    """Decide whether a chunk of ``n_trials`` trials of ``fn`` runs batched.

    ``"off"`` never batches; ``"on"`` batches whenever ``fn`` has a
    registered implementation; ``"auto"`` additionally requires the chunk
    to reach :data:`BATCH_MIN_TRIALS` so tiny chunks skip the setup cost.
    The decision affects speed only -- results are bit-identical either
    way.
    """
    if mode not in BATCH_MODES:
        raise ValueError(
            f"batch mode must be one of {BATCH_MODES}, got {mode!r}"
        )
    if mode == "off" or batch_impl_for(fn) is None:
        return False
    if mode == "on":
        return True
    return n_trials >= BATCH_MIN_TRIALS


# ----------------------------------------------------------------------
# Exact float accumulation helpers
# ----------------------------------------------------------------------
#: Cached left-fold partial sums of repeated ``value + c`` additions, per
#: addend.  ``_fold_repeated_add(c, n)`` must reproduce the scalar loop's
#: ``total += c`` (n times) bit-for-bit, which a single ``n * c`` multiply
#: does not once partial sums exceed 2**53.
_FOLD_CACHE: dict[float, list[float]] = {}


def _fold_repeated_add(addend: float, count: int) -> float:
    sums = _FOLD_CACHE.setdefault(addend, [0.0])
    while len(sums) <= count:
        sums.append(sums[-1] + addend)
    return sums[count]


# ----------------------------------------------------------------------
# Burst-trial batching (sim.burst drivers)
# ----------------------------------------------------------------------
def _pool_damage_counts(
    samples: AnyArray, divisor: int, n_pools: int
) -> AnyArray:
    """Per-trial per-pool failed-disk counts for stacked burst samples.

    ``samples`` is ``(trials, failures)`` of global disk ids; pools are
    ``id // divisor`` (both local placements and SLEC pools have this
    shape).  Pure integer arithmetic: exact by construction.
    """
    trials = samples.shape[0]
    keys = samples // divisor + np.arange(trials)[:, None] * n_pools
    counts = np.bincount(keys.ravel(), minlength=trials * n_pools)
    return counts.reshape(trials, n_pools)


def _classify_burst_pdls(evaluator: Any, samples: AnyArray) -> AnyArray | None:
    """Vectorized PDL classification of stacked burst samples.

    Returns a float array aligned with ``samples`` rows: an exact PDL
    where the evaluator's scalar result is known without integration
    (``0.0`` below the loss threshold, ``1.0``/``0.0`` for the fully
    deterministic clustered SLEC placements) and ``NaN`` where the trial
    must be demoted to the scalar evaluator.  ``None`` means the
    evaluator has no vector form at all (e.g. LRC): demote everything.
    """
    scheme = evaluator.scheme
    if isinstance(evaluator, MLECBurstEvaluator) and isinstance(
        scheme, MLECScheme
    ):
        if scheme.local_placement is Placement.CLUSTERED:
            divisor = scheme.params.n_l
        else:
            divisor = scheme.dc.disks_per_enclosure
        n_pools = scheme.dc.total_disks // divisor
        counts = _pool_damage_counts(samples, divisor, n_pools)
        n_catastrophic = (counts > scheme.params.p_l).sum(axis=1)
        values = np.full(samples.shape[0], np.nan)
        values[n_catastrophic <= scheme.params.p_n] = 0.0
        return values

    if isinstance(evaluator, SLECBurstEvaluator) and isinstance(
        scheme, SLECScheme
    ):
        p = scheme.params.p
        if samples.shape[1] <= p:
            return np.zeros(samples.shape[0])
        if scheme.level is Level.LOCAL:
            if scheme.placement is Placement.CLUSTERED:
                divisor = scheme.params.n
                n_pools = scheme.dc.total_disks // divisor
                counts = _pool_damage_counts(samples, divisor, n_pools)
                return np.where((counts > p).any(axis=1), 1.0, 0.0)
            divisor = scheme.dc.disks_per_enclosure
            n_pools = scheme.dc.total_disks // divisor
            counts = _pool_damage_counts(samples, divisor, n_pools)
            values = np.full(samples.shape[0], np.nan)
            values[~(counts > p).any(axis=1)] = 0.0
            return values
        if scheme.placement is Placement.CLUSTERED:
            dpr = scheme.dc.disks_per_rack
            racks = samples // dpr
            keys = (racks // scheme.params.n) * dpr + samples % dpr
            n_keys = (scheme.dc.racks // scheme.params.n + 1) * dpr
            counts = _pool_damage_counts(keys, 1, n_keys)
            return np.where((counts > p).any(axis=1), 1.0, 0.0)
        return None  # network-Dp integrates over placement: no vector form

    return None  # LRC (and unknown evaluators): scalar only


def _slec_trivial_zero(evaluator: Any, failures: int) -> bool:
    """True when every burst of this size is a guaranteed-zero PDL.

    The SLEC evaluator returns ``0.0`` whenever the burst has at most
    ``p`` failures -- independent of *which* disks failed -- so the
    sample itself is never needed.  The trial's generator is private and
    the sample is observed nowhere else, so skipping the draw entirely is
    exact.
    """
    return (
        isinstance(evaluator, SLECBurstEvaluator)
        and failures <= evaluator.scheme.params.p
    )


@register_batch_impl(_burst_trial)
def _burst_trial_batch(
    fn: Callable[..., Any],
    contexts: Sequence[TrialContext],
    args: tuple[Any, ...],
) -> tuple[list[Any], BatchStats]:
    """Batch form of :func:`repro.sim.burst._burst_trial`.

    Samples every trial's burst on its private stream through one shared
    generator (one topology construction per chunk instead of one per
    trial), classifies guaranteed PDLs for the whole chunk at once, and
    demotes only the undecided trials back to ``fn``.
    """
    evaluator, failures, racks, dc = args
    values: list[Any] = []
    batched = demoted = 0

    if _slec_trivial_zero(evaluator, failures):
        classified: AnyArray | None = np.zeros(len(contexts))
    else:
        gen = BurstGenerator(dc)
        samples = np.empty((len(contexts), failures), dtype=np.int64)
        # Sampling replays each trial's private stream: the draws are
        # inherently per-trial and stay scalar by design.
        for i, ctx in enumerate(contexts):  # simlint: disable=SL010
            gen.rng = ctx.rng()
            samples[i] = gen.sample(failures, racks)
        classified = _classify_burst_pdls(evaluator, samples)
        if classified is None:
            classified = np.full(len(contexts), np.nan)

    for i, ctx in enumerate(contexts):  # simlint: disable=SL010
        pdl = float(classified[i])
        if pdl != pdl:  # NaN: demote; ctx.rng() re-derives the same burst
            values.append(fn(ctx, *args))
            demoted += 1
            continue
        if ctx.metrics is not None:
            ctx.metrics.counter("burst.trials").inc()
            ctx.metrics.counter("burst.loss_trials").inc(int(pdl > 0.0))
        if ctx.trace is not None:
            ctx.trace.event(
                0.0, "burst.trial", failures=failures, racks=racks, pdl=pdl
            )
        values.append(pdl)
        batched += 1
    return values, BatchStats(batched=batched, demoted=demoted)


@register_batch_impl(_grid_cell_trial)
def _grid_cell_trial_batch(
    fn: Callable[..., Any],
    contexts: Sequence[TrialContext],
    args: tuple[Any, ...],
) -> tuple[list[Any], BatchStats]:
    """Batch form of :func:`repro.sim.burst._grid_cell_trial`.

    Each context is one heatmap cell; its bursts are classified as a
    block and only bursts the classifier cannot decide go through the
    scalar evaluator.  The per-cell mean reproduces the scalar fold:
    adding a guaranteed ``0.0`` is an exact identity, so folding the
    nonzero PDLs in burst order matches ``total += pdl`` bit-for-bit.
    """
    cells, evaluator, trials, dc = args
    gen = BurstGenerator(dc)
    values: list[Any] = []
    batched = demoted = 0

    for ctx in contexts:  # simlint: disable=SL010 -- per-cell private streams
        _i, _j, failures, racks = cells[ctx.index]
        if _slec_trivial_zero(evaluator, failures):
            values.append(0.0)
            batched += 1
            continue
        gen.rng = ctx.rng()
        samples = np.empty((trials, failures), dtype=np.int64)
        for k in range(trials):  # simlint: disable=SL010 -- sequential draws
            samples[k] = gen.sample(failures, racks)
        classified = _classify_burst_pdls(evaluator, samples)
        if classified is None:
            classified = np.full(trials, np.nan)
        cell_demoted = False
        total = 0.0
        for k in range(trials):  # simlint: disable=SL010 -- scalar fold order
            pdl = float(classified[k])
            if pdl != pdl:  # NaN: this burst needs the scalar evaluator
                pdl = float(evaluator.pdl_of_burst(samples[k]))
                cell_demoted = True
            total += pdl
        values.append(total / trials)
        if cell_demoted:
            demoted += 1
        else:
            batched += 1
    return values, BatchStats(batched=batched, demoted=demoted)


# ----------------------------------------------------------------------
# Full-system simulator batching (cli._simulate_trial)
# ----------------------------------------------------------------------
def _simple_trial_result(
    mission_time: float, n_failures: int, disk_capacity_bytes: float
) -> SystemSimResult:
    """The scalar simulator's result for a run with only isolated failures.

    ``local_repair_bytes`` replays the event loop's ``+= capacity`` fold
    (exact for any capacity); every catastrophe/fault field keeps its
    zero default, exactly as the scalar run would leave it.
    """
    return SystemSimResult(
        mission_time=mission_time,
        n_disk_failures=n_failures,
        n_catastrophic_events=0,
        data_loss_events=[],
        cross_rack_repair_bytes=0.0,
        local_repair_bytes=_fold_repeated_add(disk_capacity_bytes, n_failures),
        max_concurrent_catastrophic=0,
    )


def _record_simple_trial_metrics(
    ctx: TrialContext, result: SystemSimResult
) -> None:
    """Replay ``MLECSystemSimulator.run``'s end-of-run counter block."""
    if ctx.metrics is None:
        return
    m = ctx.metrics
    m.counter("sim.trials").inc()
    m.counter("sim.disk_failures").inc(result.n_disk_failures)
    m.counter("sim.catastrophic_events").inc(0)
    m.counter("sim.data_loss_events").inc(0)
    m.counter("sim.cross_rack_repair_bytes").inc(0.0)
    m.counter("sim.local_repair_bytes").inc(result.local_repair_bytes)
    m.counter("sim.transient_outages").inc(0)
    m.counter("sim.sector_errors").inc(0)
    m.counter("sim.scrubs").inc(0)
    m.counter("sim.bandwidth_changes").inc(0)
    m.counter("sim.net_repair_seconds").inc(0.0)


def simulate_batch_impl(
    fn: Callable[..., Any],
    contexts: Sequence[TrialContext],
    args: tuple[Any, ...],
) -> tuple[list[Any], BatchStats]:
    """Batch form of the CLI's full-system simulation trial.

    Replays each trial's disk-failure chain -- the only part of a plain
    run that consumes random draws -- as a lean heap walk: the initial
    per-disk failure times are one vectorized draw (the same call the
    simulator makes) and each processed failure draws its replacement's
    failure time through the same ``FailureModel`` call, so the stream
    is consumed in the scalar order.  Failures overlapping below the
    parity budget are harmless -- they consume no extra draws and touch
    no result field -- so a trial stays on this fast path until a local
    pool would reach ``p_l`` *concurrent* failures (counting repair
    windows inclusively, so boundary ties demote rather than gamble on
    event order).  That is the gate to every complex state: clustered
    catastrophes need ``failed >= p_l``, and declustered data-loss draws
    need ``work[p_l] > 0``, which provably requires ``p_l``
    window-overlapping failures.  Demoted trials re-run through ``fn``
    on the full event loop; traced trials are always demoted -- the
    scalar event interleaving is the trace contract.
    """
    scheme, method, afr, mission_time, base_seed = args
    sim = MLECSystemSimulator(
        scheme, method, failure_model=ExponentialFailures(afr)
    )
    model = sim.failure_model
    assert isinstance(model, ExponentialFailures)
    scale = 1.0 / model.rate
    total_disks = sim.topo.total_disks
    capacity = scheme.dc.disk_capacity_bytes
    # The scalar run's local drain window with the nominal bandwidth
    # factor (1.0): same expression, hence the same float.
    repair_window = sim.failures.detection_time + capacity / (
        sim._local_rate * 1.0
    )
    p_l = scheme.params.p_l
    if scheme.local_placement is Placement.CLUSTERED:
        pool_divisor = scheme.params.n_l
    else:
        pool_divisor = scheme.dc.disks_per_enclosure

    values: list[Any] = []
    batched = demoted = 0
    # Trials advance in lockstep over their private streams; the chain
    # walk below is the irreducible sequential part of each stream.
    for ctx in contexts:  # simlint: disable=SL010
        if ctx.trace is not None:
            values.append(fn(ctx, *args))
            demoted += 1
            continue
        # Same derivation the scalar trial feeds `sim.run(seed=...)`:
        # replaying its stream verbatim is the whole point here.
        rng = np.random.default_rng(base_seed + ctx.index)  # simlint: disable=SL002
        times = rng.exponential(scale, size=total_disks)  # simlint: disable=SL002
        heap = [
            (float(times[d]), int(d))
            for d in np.nonzero(times <= mission_time)[0]
        ]
        heapq.heapify(heap)
        n_failures = 0
        repair_ends: dict[int, list[float]] = {}
        prev_time = -1.0
        complex_trial = False
        while heap:
            t, disk = heapq.heappop(heap)
            if t >= mission_time:
                break  # END_OF_MISSION outranks an equal-time failure
            if t == prev_time:
                complex_trial = True  # exact tie: event order is seq-driven
                break
            prev_time = t
            pool = disk // pool_divisor
            active = [e for e in repair_ends.get(pool, ()) if e >= t]
            if len(active) >= p_l:
                complex_trial = True  # pool at its parity budget
                break
            n_failures += 1
            active.append(t + repair_window)
            repair_ends[pool] = active
            t_next = model.time_to_failure(rng, disk, t)
            if t_next <= mission_time:
                heapq.heappush(heap, (t_next, disk))
        if complex_trial:
            values.append(fn(ctx, *args))
            demoted += 1
            continue
        result = _simple_trial_result(mission_time, n_failures, capacity)
        _record_simple_trial_metrics(ctx, result)
        values.append(result)
        batched += 1
    return values, BatchStats(batched=batched, demoted=demoted)
