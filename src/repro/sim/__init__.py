"""Simulation: event queue, failure models, traces, bursts, pool & system."""

from .burst import (
    BurstGenerator,
    LRCBurstEvaluator,
    MLECBurstEvaluator,
    SLECBurstEvaluator,
    burst_pdl,
    burst_pdl_grid,
)
from .events import Event, EventQueue, EventType
from .failures import (
    BathtubFailures,
    ExponentialFailures,
    TraceFailures,
    WeibullFailures,
)
from .local_pool import CatastrophicSample, LocalPoolSimulator, PoolSimResult
from .simulator import DataLossEvent, MLECSystemSimulator, SystemSimResult
from .slec_sim import SingleLevelSimResult, SLECSystemSimulator
from .traces import FailureTrace, SyntheticTraceGenerator

__all__ = [
    "BurstGenerator",
    "LRCBurstEvaluator",
    "MLECBurstEvaluator",
    "SLECBurstEvaluator",
    "burst_pdl",
    "burst_pdl_grid",
    "Event",
    "EventQueue",
    "EventType",
    "BathtubFailures",
    "ExponentialFailures",
    "TraceFailures",
    "WeibullFailures",
    "CatastrophicSample",
    "LocalPoolSimulator",
    "PoolSimResult",
    "DataLossEvent",
    "MLECSystemSimulator",
    "SystemSimResult",
    "SingleLevelSimResult",
    "SLECSystemSimulator",
    "FailureTrace",
    "SyntheticTraceGenerator",
]
