"""Discrete-event core: a deterministic priority event queue.

Small, dependency-free, and deterministic: events at equal timestamps pop
in insertion order (a monotonically increasing sequence number breaks
ties), so simulations are exactly reproducible given a seed.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import math
from typing import Any

__all__ = ["EventType", "Event", "EventQueue"]


class EventType(enum.Enum):
    """Event kinds used by the pool and system simulators."""

    DISK_FAILURE = "disk-failure"
    FAILURE_DETECTED = "failure-detected"
    REPAIR_COMPLETE = "repair-complete"
    TRANSIENT_OFFLINE = "transient-offline"
    TRANSIENT_ONLINE = "transient-online"
    SECTOR_ERROR = "sector-error"
    BANDWIDTH_CHANGE = "bandwidth-change"
    SCRUB = "scrub"
    END_OF_MISSION = "end-of-mission"


@dataclasses.dataclass(frozen=True, order=True)
class Event:
    """One scheduled event.  Ordering is (time, seq); payload is free-form."""

    time: float
    seq: int
    kind: EventType = dataclasses.field(compare=False)
    payload: Any = dataclasses.field(compare=False, default=None)


class EventQueue:
    """A heap-backed event queue with cancellation.

    Cancellation is lazy: :meth:`cancel` marks the sequence number dead and
    :meth:`pop` skips corpses -- O(log n) per operation either way.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._dead: set[int] = set()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap) - len(self._dead)

    def push(self, time: float, kind: EventType, payload: Any = None) -> int:
        """Schedule an event; returns a handle usable with :meth:`cancel`.

        Rejects corrupt timestamps outright: NaN (undefined ordering),
        negative times, and infinite times for anything other than an
        :attr:`EventType.END_OF_MISSION` sentinel.
        """
        if math.isnan(time):
            raise ValueError(f"event time must not be NaN ({kind})")
        if time < 0:
            raise ValueError(f"event time must be non-negative: {time}")
        if math.isinf(time) and kind is not EventType.END_OF_MISSION:
            raise ValueError(
                f"only END_OF_MISSION may be scheduled at infinity, not {kind}"
            )
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, Event(time, self._seq, kind, payload))
        return self._seq

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already popped)."""
        self._dead.add(handle)

    def pop(self) -> Event | None:
        """Pop the earliest live event, advancing the clock; None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.seq in self._dead:
                self._dead.discard(event.seq)
                continue
            self.now = event.time
            return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without popping it."""
        while self._heap and self._heap[0].seq in self._dead:
            self._dead.discard(self._heap[0].seq)
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
