"""Event queue: ordering, determinism, cancellation, time validation."""

import math

import pytest

from repro.sim.events import EventQueue, EventType


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, EventType.DISK_FAILURE, "b")
        q.push(1.0, EventType.DISK_FAILURE, "a")
        q.push(3.0, EventType.DISK_FAILURE, "c")
        order = [q.pop().payload for _ in range(3)]
        assert order == ["a", "c", "b"]

    def test_fifo_at_equal_time(self):
        q = EventQueue()
        for name in "abc":
            q.push(2.0, EventType.DISK_FAILURE, name)
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_clock_advances(self):
        q = EventQueue()
        q.push(4.0, EventType.DISK_FAILURE)
        assert q.now == 0.0
        q.pop()
        assert q.now == 4.0

    def test_no_scheduling_into_the_past(self):
        q = EventQueue()
        q.push(4.0, EventType.DISK_FAILURE)
        q.pop()
        with pytest.raises(ValueError):
            q.push(1.0, EventType.DISK_FAILURE)

    def test_cancellation(self):
        q = EventQueue()
        keep = q.push(1.0, EventType.DISK_FAILURE, "keep")
        kill = q.push(2.0, EventType.DISK_FAILURE, "kill")
        q.cancel(kill)
        assert len(q) == 1
        assert q.pop().payload == "keep"
        assert q.pop() is None

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, EventType.DISK_FAILURE)
        q.cancel(h)
        q.cancel(h)
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, EventType.DISK_FAILURE)
        q.push(2.0, EventType.REPAIR_COMPLETE)
        q.cancel(h)
        assert q.peek_time() == 2.0

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert len(q) == 0


class TestTimeValidation:
    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError, match="NaN"):
            q.push(math.nan, EventType.DISK_FAILURE)

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError, match="non-negative"):
            q.push(-1.0, EventType.DISK_FAILURE)

    def test_infinite_time_rejected_for_ordinary_events(self):
        q = EventQueue()
        with pytest.raises(ValueError, match="END_OF_MISSION"):
            q.push(math.inf, EventType.REPAIR_COMPLETE)

    def test_infinite_end_of_mission_sentinel_allowed(self):
        q = EventQueue()
        q.push(math.inf, EventType.END_OF_MISSION)
        assert q.pop().kind is EventType.END_OF_MISSION

    def test_rejected_events_leave_queue_untouched(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(math.nan, EventType.DISK_FAILURE)
        assert len(q) == 0
