"""Exact burst DP: paper anchors, consistency with Monte Carlo."""

import numpy as np
import pytest

from repro.analysis.burst_dp import CellCollisionDP, mlec_burst_pdl, slec_burst_pdl
from repro.core.config import MLECParams, SLECParams
from repro.core.scheme import SLECScheme, mlec_scheme_from_name
from repro.core.types import Level, Placement
from repro.sim.burst import MLECBurstEvaluator, burst_pdl

PARAMS = MLECParams(10, 2, 17, 3)
FLOAT_FLOOR = 1e-12  # documented numeric floor of the linear-space DP


def scheme(name):
    return mlec_scheme_from_name(name, PARAMS)


class TestCellCollisionDP:
    def test_no_marks_survives(self):
        dp = CellCollisionDP(n_cells=10, threshold=3)
        dp.add_rack(np.array([1.0]))
        assert dp.survive_probability() == pytest.approx(1.0)

    def test_single_rack_cannot_collide(self):
        dp = CellCollisionDP(n_cells=10, threshold=2)
        dp.add_rack(np.array([0.0, 0.0, 0.0, 1.0]))  # 3 marks, distinct cells
        assert dp.survive_probability() == pytest.approx(1.0)

    def test_guaranteed_collision(self):
        """2 racks each marking every cell must collide at threshold 2."""
        dp = CellCollisionDP(n_cells=4, threshold=2)
        full = np.zeros(5)
        full[4] = 1.0
        dp.add_rack(full)
        dp.add_rack(full)
        assert dp.survive_probability() == pytest.approx(0.0)

    def test_birthday_collision_probability(self):
        """2 racks, 1 mark each, C cells: collision probability 1/C."""
        c = 7
        dp = CellCollisionDP(n_cells=c, threshold=2)
        one = np.array([0.0, 1.0])
        dp.add_rack(one)
        dp.add_rack(one)
        assert dp.survive_probability() == pytest.approx(1 - 1 / c)

    def test_validation(self):
        with pytest.raises(ValueError):
            CellCollisionDP(0, 3)


class TestMLECDPAnchors:
    def test_zero_regions_finding3(self):
        """PDL = 0 (up to float floor) for <= p_n racks and y <= x+8."""
        for name in ("C/C", "C/D", "D/C", "D/D"):
            s = scheme(name)
            assert mlec_burst_pdl(s, 60, 1) <= FLOAT_FLOOR
            assert mlec_burst_pdl(s, 60, 2) <= FLOAT_FLOOR
            assert mlec_burst_pdl(s, 11, 3) <= FLOAT_FLOOR

    def test_just_above_boundary_nonzero(self):
        """y = x+9 failures in 3 racks can build 3 lost stripes."""
        assert mlec_burst_pdl(scheme("D/D"), 12, 3) > FLOAT_FLOOR

    def test_scheme_ordering_at_worst_cell(self):
        """Findings 4-7: at y=60, x=3 the PDL orders D/D > C/D > D/C > C/C."""
        pdl = {name: mlec_burst_pdl(scheme(name), 60, 3)
               for name in ("C/C", "C/D", "D/C", "D/D")}
        assert pdl["D/D"] > pdl["C/D"] > pdl["D/C"] > pdl["C/C"]

    def test_scattering_monotonicity(self):
        """Finding 2: spreading 60 failures over more racks lowers PDL."""
        s = scheme("D/D")
        values = [mlec_burst_pdl(s, 60, x) for x in (3, 6, 12, 30)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            mlec_burst_pdl(scheme("C/C"), 2, 5)
        with pytest.raises(ValueError):
            mlec_burst_pdl(scheme("C/C"), 10, 0)


class TestDPvsMonteCarlo:
    def test_dd_upper_bounds_monte_carlo(self):
        """The worst-case-declustering DP must upper-bound the placement-
        averaged MC estimate (it assumes any p_n+1 catastrophic pools in
        distinct racks are co-striped, which the MC refines away)."""
        s = scheme("D/D")
        dp = mlec_burst_pdl(s, 60, 3)
        rng = np.random.default_rng(0)
        mc = burst_pdl(MLECBurstEvaluator(s), 60, 3, trials=150, rng=rng)
        assert dp >= mc - 0.05  # upper bound modulo MC noise
        assert mc > 0.0  # both see the hot cell

    def test_cc_exactness_against_dedicated_mc(self):
        """C/C is fully clustered: DP is exact, MC agrees within noise."""
        s = scheme("C/C")
        rng = np.random.default_rng(1)
        y, x = 40, 2  # a guaranteed-zero cell
        assert mlec_burst_pdl(s, y, x) <= FLOAT_FLOOR
        assert burst_pdl(MLECBurstEvaluator(s), y, x, trials=50, rng=rng) == 0.0


class TestSLECDP:
    def _s(self, level, placement, k=7, p=3):
        return SLECScheme(SLECParams(k, p), level, placement)

    def test_loc_cp_burst_pdl_positive_when_localized(self):
        v = slec_burst_pdl(self._s(Level.LOCAL, Placement.CLUSTERED), 60, 1)
        assert 0.05 < v < 0.6

    def test_loc_dp_worse_than_cp_localized(self):
        cp = slec_burst_pdl(self._s(Level.LOCAL, Placement.CLUSTERED), 60, 1)
        dp = slec_burst_pdl(self._s(Level.LOCAL, Placement.DECLUSTERED), 60, 1)
        assert dp > cp

    def test_loc_cp_safe_below_p_plus_1(self):
        assert slec_burst_pdl(self._s(Level.LOCAL, Placement.CLUSTERED), 3, 1) == 0.0

    def test_net_dp_worst_case_rule(self):
        s = self._s(Level.NETWORK, Placement.DECLUSTERED)
        assert slec_burst_pdl(s, 60, 3) == 0.0
        assert slec_burst_pdl(s, 60, 4) == 1.0

    def test_net_cp_zero_within_p_racks(self):
        s = self._s(Level.NETWORK, Placement.CLUSTERED)
        assert slec_burst_pdl(s, 60, 3) <= FLOAT_FLOOR

    def test_net_cp_collision_probability_plausible(self):
        """Scattered failures: position collisions are rare but non-zero."""
        s = self._s(Level.NETWORK, Placement.CLUSTERED)
        v = slec_burst_pdl(s, 60, 60)
        assert 0.0 <= v < 1e-3
